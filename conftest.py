"""Repository-root pytest configuration.

Registers the DetSan plugin (``pytest --detsan`` runs every test inside
the runtime determinism sanitizer — see ``repro.lint.detsan``).  The
plugin lives in the package so it is importable wherever ``repro`` is;
registering it here (the rootdir conftest) keeps ``pytest`` invocations
from any subdirectory consistent.
"""

pytest_plugins = ["repro.lint.detsan_pytest"]
