"""Repository-root pytest configuration.

Registers the runtime-sanitizer plugins: ``pytest --detsan`` runs every
test inside the determinism sanitizer (``repro.lint.detsan``),
``pytest --shardsan`` inside the shared-world write sanitizer
(``repro.lint.shardsan``), and ``pytest --faultsan`` enables the
fault-injection chaos suite (``repro.lint.faultsan``; the marked tests
skip without the flag), and ``pytest --allocsan`` enables the
allocation-budget suite (``repro.lint.allocsan``; campaigns under
tracemalloc, also marker-gated).  The plugins live in the package so
they are importable wherever ``repro`` is; registering them here (the
rootdir conftest) keeps ``pytest`` invocations from any subdirectory
consistent.
"""

pytest_plugins = [
    "repro.lint.detsan_pytest",
    "repro.lint.shardsan_pytest",
    "repro.lint.faultsan_pytest",
    "repro.lint.allocsan_pytest",
]
