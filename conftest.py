"""Repository-root pytest configuration.

Registers the runtime-sanitizer plugins: ``pytest --detsan`` runs every
test inside the determinism sanitizer (``repro.lint.detsan``) and
``pytest --shardsan`` inside the shared-world write sanitizer
(``repro.lint.shardsan``).  The plugins live in the package so they are
importable wherever ``repro`` is; registering them here (the rootdir
conftest) keeps ``pytest`` invocations from any subdirectory
consistent.
"""

pytest_plugins = [
    "repro.lint.detsan_pytest",
    "repro.lint.shardsan_pytest",
]
