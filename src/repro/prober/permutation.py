"""Keyed random permutation of the probe space.

Yarrp's central idea is to walk the (target × TTL) space in a pseudo-
random order so that no router sees a burst of TTL-limited probes —
spreading the ICMPv6 rate-limiter load across the whole network while
keeping the prober stateless: the permutation is a *bijection*, so every
pair is probed exactly once, and the walk needs only a counter.

The original Yarrp uses an RC5-based cipher; we implement the same
construction generically: a balanced Feistel network over the smallest
even-bit-width domain covering ``n``, with cycle-walking to restrict the
bijection to ``[0, n)``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Iterator, List, Tuple

try:  # numpy is optional: the scalar path below is the full reference.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None  # type: ignore[assignment]

#: Feistel rounds; four suffice for statistical mixing (this is not a
#: security boundary, just burst-avoidance).
ROUNDS = 4

#: Below this block size the numpy dispatch overhead exceeds the win.
_VECTOR_MIN = 16


class KeyedPermutation:
    """A keyed bijection over ``[0, n)``.

    ``perm[i]`` maps index i to a unique value in [0, n); iteration in
    index order therefore visits every value exactly once in a key-
    dependent pseudorandom order.
    """

    def __init__(self, n: int, key: int) -> None:
        if n < 1:
            raise ValueError("domain must be positive: %r" % n)
        self.n = n
        self.key = key
        # Smallest even bit width whose 2^bits >= n.
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._bits = bits
        self._half = bits // 2
        self._mask = (1 << self._half) - 1
        self._round_keys = [
            int.from_bytes(
                hashlib.blake2b(
                    b"yarrp6-perm" + key.to_bytes(16, "big") + bytes([round_index]),
                    digest_size=8,
                ).digest(),
                "big",
            )
            for round_index in range(ROUNDS)
        ]

    def _round(self, value: int, round_key: int) -> int:
        """Feistel round function: a cheap 64-bit mixer."""
        value = (value ^ round_key) & 0xFFFFFFFFFFFFFFFF
        value = (value * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 29
        value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 32
        return value & self._mask

    def _encrypt(self, value: int) -> int:
        left = value >> self._half
        right = value & self._mask
        for round_key in self._round_keys:
            left, right = right, left ^ self._round(right, round_key)
        return (left << self._half) | right

    def __getitem__(self, index: int) -> int:
        """Image of ``index``; cycle-walks until it lands inside [0, n)."""
        if not 0 <= index < self.n:
            raise IndexError("index %d out of range [0, %d)" % (index, self.n))
        value = self._encrypt(index)
        while value >= self.n:
            value = self._encrypt(value)
        return value

    def images(self, indices: Iterable[int]) -> List[int]:  # repro-lint: hot-loop
        """Batched ``[self[i] for i in indices]``.

        Contiguous/strided index ranges over domains that fit 64 bits are
        encrypted as whole numpy ``uint64`` columns — every Feistel round
        runs once per *block* instead of once per index, with cycle-
        walking applied lane-wise to the stragglers.  Everything else
        (tiny blocks, arbitrary iterables, missing numpy, oversized
        domains) takes :meth:`images_scalar`.  Both paths are exact
        integer arithmetic and produce identical values; the equivalence
        suite (``tests/prober/test_batched_equivalence.py``) pins that.
        """
        if (
            _np is not None
            and self._bits < 64
            and isinstance(indices, range)
            and len(indices) >= _VECTOR_MIN
        ):
            first, last = indices[0], indices[-1]
            if 0 <= first < self.n and 0 <= last < self.n:
                return self._images_vector(indices)
        return self.images_scalar(indices)

    def _images_vector(self, indices: range) -> List[int]:
        """Columnar Feistel over a uint64 lane per index (bit-exact)."""
        domain = _np.uint64(self.n)
        half = _np.uint64(self._half)
        mask = _np.uint64(self._mask)
        round_keys = [_np.uint64(key) for key in self._round_keys]
        mult1 = _np.uint64(0x9E3779B97F4A7C15)
        mult2 = _np.uint64(0xBF58476D1CE4E5B9)
        shift29 = _np.uint64(29)
        shift32 = _np.uint64(32)

        def encrypt(block: Any) -> Any:
            left = block >> half
            right = block & mask
            for round_key in round_keys:
                mixed = (right ^ round_key) * mult1
                mixed ^= mixed >> shift29
                mixed *= mult2
                mixed ^= mixed >> shift32
                left, right = right, left ^ (mixed & mask)
            return (left << half) | right

        values = encrypt(
            _np.arange(indices.start, indices.stop, indices.step, dtype=_np.uint64)
        )
        # Cycle-walking, lane-wise: re-encrypt only the lanes still
        # outside [0, n) — the same walk the scalar loop performs.
        walking = values >= domain
        while walking.any():
            values[walking] = encrypt(values[walking])
            walking = values >= domain
        result: List[int] = values.tolist()
        return result

    def images_scalar(self, indices: Iterable[int]) -> List[int]:  # repro-lint: hot-loop
        """The pure-Python reference for :meth:`images`.

        The Feistel network is inlined with round keys, shift amounts and
        masks hoisted into locals, so a block costs one attribute-lookup
        preamble instead of one per index — the hot-path amortization the
        pull loop and the parallel shard workers rely on.
        """
        n = self.n
        half = self._half
        mask = self._mask
        round_keys = self._round_keys
        out: List[int] = []
        append = out.append
        for index in indices:
            if not 0 <= index < n:
                raise IndexError("index %d out of range [0, %d)" % (index, n))
            value = index
            while True:
                left = value >> half
                right = value & mask
                for round_key in round_keys:
                    mixed = (right ^ round_key) & 0xFFFFFFFFFFFFFFFF
                    mixed = (mixed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
                    mixed ^= mixed >> 29
                    mixed = (mixed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
                    mixed ^= mixed >> 32
                    left, right = right, left ^ (mixed & mask)
                value = (left << half) | right
                if value < n:
                    break
            append(value)
        return out

    def block(self, start: int, count: int) -> List[int]:
        """Images of the contiguous index range ``[start, start+count)``.

        Equivalent to ``[self[i] for i in range(start, start + count)]``
        but encrypted in one batched call.
        """
        if count < 0:
            raise ValueError("negative count: %r" % count)
        if not (0 <= start and start + count <= self.n):
            raise IndexError(
                "block [%d, %d) out of range [0, %d)" % (start, start + count, self.n)
            )
        return self.images(range(start, start + count))

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        for start in range(0, self.n, _ITER_BLOCK):
            for value in self.block(start, min(_ITER_BLOCK, self.n - start)):
                yield value


#: Chunk size used when iterating a whole permutation or schedule.
_ITER_BLOCK = 1024


class ProbeSchedule:
    """The permuted (target, TTL) walk Yarrp6 emits.

    Indexes the flat target×TTL space through a :class:`KeyedPermutation`
    so consecutive emissions hit unrelated (destination, hop) pairs.

    **Sharding** (real Yarrp's multi-worker mode): worker ``shard`` of
    ``shards`` walks the permutation positions congruent to its id, so N
    cooperating instances cover every pair exactly once with no shared
    state and no coordination beyond agreeing on the key.
    """

    def __init__(
        self,
        n_targets: int,
        ttl_min: int,
        ttl_max: int,
        key: int,
        shard: int = 0,
        shards: int = 1,
    ) -> None:
        if not 1 <= ttl_min <= ttl_max <= 255:
            raise ValueError("bad TTL range [%d, %d]" % (ttl_min, ttl_max))
        if n_targets < 1:
            raise ValueError("no targets")
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError("bad shard %d of %d" % (shard, shards))
        self.n_targets = n_targets
        self.ttl_min = ttl_min
        self.ttl_max = ttl_max
        self.n_ttls = ttl_max - ttl_min + 1
        self.shard = shard
        self.shards = shards
        space = n_targets * self.n_ttls
        #: Emissions this shard owns.
        self.total = (space - shard + shards - 1) // shards
        self._space = space
        self._perm = KeyedPermutation(space, key)

    def __len__(self) -> int:
        return self.total

    def position(self, index: int) -> int:
        """Global permutation position of this shard's emission ``index``:
        cooperating shards interleave, so shard ``s`` owns the positions
        congruent to ``s`` modulo ``shards``."""
        if not 0 <= index < self.total:
            raise IndexError("emission %d out of range" % index)
        return self.shard + index * self.shards

    def pair(self, index: int) -> Tuple[int, int]:
        """(target index, TTL) for this shard's emission number ``index``."""
        value = self._perm[self.position(index)]
        return value // self.n_ttls, self.ttl_min + (value % self.n_ttls)

    def block(self, index: int, count: int) -> List[Tuple[int, int]]:
        """(target index, TTL) pairs for emissions ``[index, index+count)``
        in one batched permutation call — the fast path of the pull loop."""
        if count < 0:
            raise ValueError("negative count: %r" % count)
        if not (0 <= index and index + count <= self.total):
            raise IndexError(
                "block [%d, %d) out of range [0, %d)"
                % (index, index + count, self.total)
            )
        positions = range(
            self.shard + index * self.shards,
            self.shard + (index + count) * self.shards,
            self.shards,
        )
        n_ttls = self.n_ttls
        ttl_min = self.ttl_min
        return [
            (value // n_ttls, ttl_min + value % n_ttls)
            for value in self._perm.images(positions)
        ]

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for start in range(0, self.total, _ITER_BLOCK):
            for pair in self.block(start, min(_ITER_BLOCK, self.total - start)):
                yield pair
