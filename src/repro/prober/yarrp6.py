"""Yarrp6: the stateless randomized high-rate IPv6 topology prober.

The prober's entire mutable state is a walk counter into a keyed
permutation of the (target × TTL) space, a fill queue, and the result
stream — no per-destination bookkeeping.  Matching responses to probes
happens purely by decoding the state each probe carries in its own
payload (Section 4.1, Figure 4 of the paper).

Optional behaviours from the paper:

* **fill mode** (Section 4.1): a Time Exceeded for a probe sent with hop
  limit h >= max TTL immediately triggers a probe at h+1, up to a
  ceiling — recovering long paths without permuting a large TTL range;
* **neighborhood mode** (Section 4.2, described as future work): probes
  for TTLs within the local neighborhood are skipped once no new
  interface has been discovered at that TTL within a time window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from .encoding import ProbeTemplate, encode_probe
from .permutation import ProbeSchedule
from .records import ProbeRecord, ResponseProcessor


@dataclass
class Yarrp6Config:
    """Prober parameters (command-line flags of the real tool)."""

    min_ttl: int = 1
    max_ttl: int = 16
    protocol: str = "icmp6"
    instance: int = 1
    #: Permutation key; vary between campaigns to change probe order.
    key: int = 0x59415252
    fill: bool = False
    #: Hop-limit ceiling for fill probes.
    fill_ceiling: int = 32
    #: Multi-worker sharding: this instance's shard id and the total
    #: number of cooperating instances (all must share the same key).
    shard: int = 0
    shards: int = 1
    #: When set, TTLs <= this value participate in neighborhood skipping.
    neighborhood_ttl: Optional[int] = None
    #: Neighborhood window: skip a TTL once no *new* interface has been
    #: seen at it for this many microseconds.
    neighborhood_window_us: int = 5_000_000


class Yarrp6:
    """The prober: hand it targets, pull packets, feed it responses."""

    def __init__(
        self,
        source: int,
        targets: Sequence[int],
        config: Optional[Yarrp6Config] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.source = source
        self.targets = list(targets)
        self.config = config or Yarrp6Config()
        if not self.targets:
            raise ValueError("no targets")
        self.schedule = ProbeSchedule(
            len(self.targets),
            self.config.min_ttl,
            self.config.max_ttl,
            self.config.key,
            shard=self.config.shard,
            shards=self.config.shards,
        )
        self.processor = ResponseProcessor(self.config.instance)
        self._cursor = 0
        #: Walk pairs prefetched via the schedule's batched fast path;
        #: ``_fetched`` counts pairs pulled from the schedule so far.
        self._buffer: Deque[Tuple[int, int]] = deque()
        self._fetched = 0
        #: Batched-encode state, created on first :meth:`next_probes`.
        self._template: Optional[ProbeTemplate] = None
        self._template_buffer: Optional[bytearray] = None
        self._fill_queue: Deque[Tuple[int, int]] = deque()
        self.sent = 0
        self.fills = 0
        self.skipped = 0
        # Neighborhood state: per-TTL timestamp of the last new interface.
        self._last_new_at: Dict[int, int] = {}
        self._neighborhood_known: Dict[int, set] = {}
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_sent = registry.counter("prober.sent")
        self._m_fills = registry.counter("prober.fills")
        self._m_skipped = registry.counter("prober.skipped")
        self._m_responses = registry.counter("prober.responses")
        self._m_ttl_yield = registry.counter_map("prober.ttl_yield")

    # -- emission --------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True when the permutation walk and fill queue are both done."""
        return self._cursor >= len(self.schedule) and not self._fill_queue

    #: Pairs pulled per batched schedule call; amortizes the permutation's
    #: per-index overhead without meaningfully front-running the walk.
    BATCH = 256

    def next_probe(self, now: int) -> Optional[bytes]:  # repro-lint: program-root
        """The next probe packet to emit at virtual time ``now``."""
        if self._fill_queue:
            target, ttl = self._fill_queue.popleft()
            self.fills += 1
            self._m_fills.inc()
            return self._encode(target, ttl, now)
        total = len(self.schedule)
        while self._cursor < total:
            if not self._buffer:
                count = min(self.BATCH, total - self._fetched)
                self._buffer.extend(self.schedule.block(self._fetched, count))
                self._fetched += count
            target_index, ttl = self._buffer.popleft()
            self._cursor += 1
            if self._skip_neighborhood(ttl, now):
                self.skipped += 1
                self._m_skipped.inc()
                continue
            return self._encode(self.targets[target_index], ttl, now)
        return None

    @property
    def pure_walk(self) -> bool:
        """True when the emission stream is a pure permutation walk —
        no fill probes and no neighborhood skipping — i.e. every probe's
        position and send time are known in advance.  This is the
        precondition for :meth:`next_probes` (and for the campaign
        runner's columnar fast path)."""
        return not self.config.fill and self.config.neighborhood_ttl is None

    # repro-lint: hot-loop
    def next_probes(self, times: Sequence[int]) -> List[Tuple[int, bytes]]:  # repro-lint: program-root
        """The batched pull loop: up to ``len(times)`` walk probes, the
        k-th crafted for virtual send time ``times[k]``.

        Returns ``[(send_time, packet), ...]``, shorter than ``times``
        only when the walk exhausts.  Packets are crafted into one
        preallocated buffer via :class:`~repro.prober.encoding.
        ProbeTemplate` with in-place field patching — byte-identical to
        what :meth:`next_probe` would emit at the same virtual times, but
        without per-probe byte assembly or per-probe schedule calls.

        Only valid for pure walks (:attr:`pure_walk`): fill and
        neighborhood modes react to responses, which would reorder the
        stream mid-block.
        """
        if not self.pure_walk:
            raise ValueError(
                "next_probes requires a pure walk (fill and neighborhood off)"
            )
        total = len(self.schedule)
        count = min(len(times), total - self._cursor)
        if count <= 0:
            return []
        template, buffer = self._ensure_template()
        targets = self.targets
        buffered = len(self._buffer)
        if buffered < count:
            # Top the prefetch deque up to a full block, then consume
            # pairs straight off it below — no intermediate pairs list
            # (PERF101), same (target, ttl) stream in the same order.
            fetch = count - buffered
            self._buffer.extend(self.schedule.block(self._fetched, fetch))
            self._fetched += fetch
        self._cursor += count
        out: List[Tuple[int, bytes]] = []
        append = out.append
        popleft = self._buffer.popleft
        encode_into = template.encode_into
        for position in range(count):
            target_index, ttl = popleft()
            when = times[position]
            encode_into(buffer, targets[target_index], ttl, when & 0xFFFFFFFF)
            append((when, bytes(buffer)))
        self.sent += count
        self._m_sent.inc(count)
        return out

    def _ensure_template(self) -> Tuple[ProbeTemplate, bytearray]:
        """The shared probe template + scratch buffer, built lazily.

        One-time setup hoisted out of :meth:`next_probes` so the hot
        block body stays allocation-free.
        """
        if self._template is None:
            self._template = ProbeTemplate(
                self.source,
                instance=self.config.instance,
                protocol=self.config.protocol,
            )
            self._template_buffer = self._template.new_buffer()
        buffer = self._template_buffer
        assert buffer is not None
        return self._template, buffer

    def _encode(self, target: int, ttl: int, now: int) -> bytes:
        self.sent += 1
        self._m_sent.inc()
        return encode_probe(
            self.source,
            target,
            ttl,
            elapsed=now & 0xFFFFFFFF,
            instance=self.config.instance,
            protocol=self.config.protocol,
        )

    def _skip_neighborhood(self, ttl: int, now: int) -> bool:
        limit = self.config.neighborhood_ttl
        if limit is None or ttl > limit:
            return False
        last = self._last_new_at.get(ttl)
        if last is None:
            # Nothing seen yet at this TTL: keep probing until the first
            # discovery or until the window elapses from campaign start.
            return now > self.config.neighborhood_window_us and ttl in self._neighborhood_known
        return now - last > self.config.neighborhood_window_us

    # -- reception -------------------------------------------------------
    # repro-lint: hot-loop
    def receive(
        self, data: bytes, now: int, sent: Optional[int] = None
    ) -> Optional[ProbeRecord]:  # repro-lint: program-root
        """Feed a response packet; may enqueue fill probes.

        ``sent`` overrides the probes-sent count attributed to this
        response (the discovery-curve x coordinate).  The batched
        campaign loop crafts emissions ahead of the virtual clock, so it
        passes the analytically reconstructed "probes sent when this
        response arrived" — the same number the per-event loop's live
        counter would hold.  Per-event callers leave it ``None``.
        """
        record = self.processor.process(
            data, now, self.sent if sent is None else sent
        )
        if record is None:
            return None
        self._m_responses.inc()
        if record.is_time_exceeded:
            self._m_ttl_yield.inc(record.ttl)
        if (
            self.config.neighborhood_ttl is not None
            and record.is_time_exceeded
            and record.ttl <= self.config.neighborhood_ttl
        ):
            known = self._neighborhood_known.setdefault(record.ttl, set())
            if record.hop not in known:
                known.add(record.hop)
                self._last_new_at[record.ttl] = now
        if (
            self.config.fill
            and record.is_time_exceeded
            and record.ttl >= self.config.max_ttl
            and record.ttl < self.config.fill_ceiling
        ):
            self._fill_queue.append((record.target, record.ttl + 1))
        return record

    # -- results ---------------------------------------------------------
    @property
    def records(self) -> List[ProbeRecord]:
        return self.processor.records

    @property
    def interfaces(self) -> set:
        return self.processor.interfaces

    def summary(self) -> Dict[str, int]:
        """Counters for reporting."""
        return {
            "sent": self.sent,
            "fills": self.fills,
            "skipped": self.skipped,
            "received": self.processor.received,
            "interfaces": len(self.processor.interfaces),
            "decode_failures": self.processor.decode_failures,
            "mangled_targets": self.processor.mangled_targets,
            "tcp_responses": self.processor.tcp_responses,
        }
