"""Yarrp6 stateless probe encoding (Figure 4 of the paper).

Everything the prober will later need to interpret a response is carried
*inside the probe itself* and recovered from the ICMPv6 error quotation:

=========  ====  =====================================================
field      size  purpose
=========  ====  =====================================================
magic      4 B   discriminates Yarrp6 probes from stray ICMPv6
instance   1 B   discriminates concurrent prober instances
TTL        1 B   originating hop limit (the hop index of the response)
elapsed    4 B   µs send timestamp (truncated) for RTT computation
fudge      2 B   keeps the transport checksum constant per target
=========  ====  =====================================================

The TCP/UDP source port (or ICMPv6 identifier) carries an Internet
checksum of the target address, detecting en-route rewrites of the
destination; the destination port (or ICMPv6 sequence) is 80.  Keeping
every header byte — including the checksum, which deployed load
balancers hash for ICMPv6 — constant per target keeps all probes for a
target on a single ECMP path (Paris-traceroute behaviour for free).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..addrs import address
from ..packet import icmpv6, ipv6, tcp, udp
from ..packet.checksum import (
    address_checksum,
    address_sum,
    checksum_fudge,
    fold_sum,
    ones_complement_sum,
    pseudo_header,
)
from ..packet.ipv6 import PROTO_ICMPV6, PROTO_TCP, PROTO_UDP, IPv6Header, PacketError

#: "yp6\0" — the Yarrp6 payload magic.
MAGIC = 0x79503600

#: Fixed destination port / ICMPv6 sequence number (Figure 4).
DEST_PORT = 80

#: Payload length: magic + instance + TTL + elapsed + fudge.
PAYLOAD_LENGTH = 12

#: The constant one's-complement sum every probe's checksummed region is
#: steered to via the fudge field; the emitted checksum is its complement.
TARGET_SUM = 0xBEEF

#: Protocol name -> next-header value.
PROTOCOLS = {"icmp6": PROTO_ICMPV6, "udp": PROTO_UDP, "tcp": PROTO_TCP}


class DecodeError(ValueError):
    """Raised when a quotation cannot be interpreted as a Yarrp6 probe."""


class DecodedProbe:
    """State recovered from a quoted probe."""

    __slots__ = ("target", "ttl", "elapsed", "instance", "protocol", "target_modified")

    def __init__(
        self,
        target: int,
        ttl: int,
        elapsed: int,
        instance: int,
        protocol: int,
        target_modified: bool,
    ) -> None:
        self.target = target
        self.ttl = ttl
        self.elapsed = elapsed
        self.instance = instance
        self.protocol = protocol
        #: True when the quoted destination fails its checksum — some
        #: middlebox rewrote the address en route.
        self.target_modified = target_modified

    def __repr__(self) -> str:
        return "DecodedProbe(%s, ttl=%d%s)" % (
            address.format_address(self.target),
            self.ttl,
            ", MODIFIED" if self.target_modified else "",
        )


def _payload_with_fudge(
    src: int,
    target: int,
    proto: int,
    fixed_header: bytes,
    instance: int,
    ttl: int,
    elapsed: int,
    desired_sum: int = TARGET_SUM,
) -> bytes:
    """The 12-byte Yarrp6 payload, fudged so that the transport checksum
    over (pseudo-header + fixed transport header + payload) lands on the
    chosen constant (``TARGET_SUM`` shifted by the flow id)."""
    head = struct.pack("!IBBI", MAGIC, instance & 0xFF, ttl & 0xFF, elapsed & 0xFFFFFFFF)
    length = len(fixed_header) + PAYLOAD_LENGTH
    base = ones_complement_sum(pseudo_header(src, target, length, proto))
    base = ones_complement_sum(fixed_header + head, base)
    fudge = checksum_fudge(base, desired_sum)
    return head + fudge.to_bytes(2, "big")


def encode_probe(
    src: int,
    target: int,
    ttl: int,
    elapsed: int,
    instance: int = 1,
    protocol: str = "icmp6",
    flow_id: int = 0,
) -> bytes:
    """Build complete probe packet bytes for (target, TTL).

    ``flow_id`` shifts the constant the checksum is fudged to: flow 0 is
    the Paris-stable default; nonzero flows present a *different but
    still per-flow-constant* checksum, steering ECMP hashes onto other
    paths — the Multipath Detection (MDA) technique for enumerating
    load-balanced siblings.
    """
    proto = PROTOCOLS.get(protocol)
    if proto is None:
        raise ValueError("unknown protocol %r" % protocol)
    sport = address_checksum(target)
    desired_sum = (TARGET_SUM + flow_id) & 0xFFFF

    if proto == PROTO_ICMPV6:
        # type, code, zero checksum, id, seq — checksum inserted below.
        fixed = struct.pack(
            "!BBHHH", icmpv6.TYPE_ECHO_REQUEST, 0, 0, sport, DEST_PORT
        )
        payload = _payload_with_fudge(
            src, target, proto, fixed, instance, ttl, elapsed, desired_sum
        )
        segment = fixed + payload
        checksum = (~desired_sum) & 0xFFFF
        segment = segment[:2] + checksum.to_bytes(2, "big") + segment[4:]
    elif proto == PROTO_UDP:
        length = udp.HEADER_LENGTH + PAYLOAD_LENGTH
        fixed = struct.pack("!HHHH", sport, DEST_PORT, length, 0)
        payload = _payload_with_fudge(
            src, target, proto, fixed, instance, ttl, elapsed, desired_sum
        )
        segment = fixed + payload
        checksum = (~desired_sum) & 0xFFFF
        segment = segment[:6] + checksum.to_bytes(2, "big") + segment[8:]
    else:  # TCP SYN
        header = tcp.TCPHeader(sport, DEST_PORT, seq=0, flags=tcp.FLAG_SYN)
        fixed = header.pack()
        payload = _payload_with_fudge(
            src, target, proto, fixed, instance, ttl, elapsed, desired_sum
        )
        segment = fixed + payload
        checksum = (~desired_sum) & 0xFFFF
        segment = segment[:16] + checksum.to_bytes(2, "big") + segment[18:]

    header = IPv6Header(src, target, 0, proto, hop_limit=ttl)
    return ipv6.build_packet(header, segment)


#: Transport header lengths by next-header value.
_TRANSPORT_LENGTH = {PROTO_ICMPV6: 8, PROTO_UDP: 8, PROTO_TCP: 20}

#: Byte offset of the transport checksum field within the transport
#: header, per protocol.
_CHECKSUM_OFFSET = {PROTO_ICMPV6: 2, PROTO_UDP: 6, PROTO_TCP: 16}

#: Byte offset of the field carrying the target checksum (TCP/UDP source
#: port, ICMPv6 identifier) within the transport header.
_SPORT_OFFSET = {PROTO_ICMPV6: 4, PROTO_UDP: 0, PROTO_TCP: 0}

#: IPv6 fixed-header size; the transport header starts here.
_IPV6_HEADER = 40


class ProbeTemplate:
    """Preallocated probe packet with in-place per-probe field patching.

    Everything that is constant across one prober's emissions — the IPv6
    header scaffold, transport header, magic, instance, *and the final
    transport checksum* (which Yarrp6's fudge field keeps constant by
    construction) — is rendered once.  Per probe, :meth:`encode_into`
    rewrites only the six variable field groups of a reusable
    ``bytearray``: hop limit, destination address, target-checksum port,
    payload TTL, elapsed timestamp, and the fudge word, recomputed
    incrementally from a precomputed one's-complement base sum instead of
    re-summing the packet.  Output bytes are identical to
    :func:`encode_probe`; the equivalence suite pins this per protocol.
    """

    __slots__ = (
        "src",
        "instance",
        "protocol",
        "flow_id",
        "size",
        "_template",
        "_base_sum",
        "_desired",
        "_sport_at",
        "_payload_at",
    )

    def __init__(
        self,
        src: int,
        instance: int = 1,
        protocol: str = "icmp6",
        flow_id: int = 0,
    ) -> None:
        proto = PROTOCOLS.get(protocol)
        if proto is None:
            raise ValueError("unknown protocol %r" % protocol)
        self.src = src
        self.instance = instance
        self.protocol = protocol
        self.flow_id = flow_id
        self._desired = (TARGET_SUM + flow_id) & 0xFFFF
        transport_length = _TRANSPORT_LENGTH[proto]
        payload_at = _IPV6_HEADER + transport_length
        self._sport_at = _IPV6_HEADER + _SPORT_OFFSET[proto]
        self._payload_at = payload_at

        # Render the scaffold from the reference encoder with every
        # variable field at zero (target 0 ⇒ dst bytes and address words
        # all zero; ttl/elapsed 0), then zero the two fields encode_probe
        # derived *from* the target (sport, fudge) so the template is
        # canonical and correctness never depends on its initial values.
        scaffold = bytearray(
            encode_probe(
                src, 0, 0, 0, instance=instance, protocol=protocol, flow_id=flow_id
            )
        )
        scaffold[self._sport_at : self._sport_at + 2] = b"\x00\x00"
        scaffold[payload_at + 10 : payload_at + 12] = b"\x00\x00"
        self._template = bytes(scaffold)
        self.size = len(scaffold)

        # One's-complement base over the checksummed region with variable
        # fields zeroed: pseudo-header (dst=0) + transport header (sport
        # and checksum zeroed) + payload head (ttl/elapsed zeroed).
        fixed = bytearray(scaffold[_IPV6_HEADER:payload_at])
        checksum_at = _CHECKSUM_OFFSET[proto]
        fixed[checksum_at : checksum_at + 2] = b"\x00\x00"
        base = ones_complement_sum(
            pseudo_header(src, 0, transport_length + PAYLOAD_LENGTH, proto)
        )
        self._base_sum = ones_complement_sum(
            bytes(fixed) + scaffold[payload_at : payload_at + 10], base
        )

    def new_buffer(self) -> bytearray:
        """A fresh mutable packet buffer initialized from the template."""
        return bytearray(self._template)

    # repro-lint: hot-loop
    def encode_into(
        self, buffer: bytearray, target: int, ttl: int, elapsed: int
    ) -> None:
        """Patch ``buffer`` in place into the probe for (target, TTL).

        ``buffer`` must come from :meth:`new_buffer` (or a previous call
        on the same template); only the variable fields are written, so
        reusing one buffer across a whole block amortizes allocation.
        """
        elapsed &= 0xFFFFFFFF
        buffer[7] = ttl
        buffer[24:40] = target.to_bytes(16, "big")
        target_sum = address_sum(target)
        sport = ~fold_sum(target_sum) & 0xFFFF
        if sport == 0:
            sport = 0xFFFF
        sport_at = self._sport_at
        buffer[sport_at] = sport >> 8
        buffer[sport_at + 1] = sport & 0xFF
        payload_at = self._payload_at
        buffer[payload_at + 5] = ttl & 0xFF
        buffer[payload_at + 6 : payload_at + 10] = elapsed.to_bytes(4, "big")
        total = fold_sum(
            self._base_sum
            + target_sum
            + sport
            + (ttl & 0xFF)
            + (elapsed >> 16)
            + (elapsed & 0xFFFF)
        )
        fudge = checksum_fudge(total, self._desired)
        buffer[payload_at + 10] = fudge >> 8
        buffer[payload_at + 11] = fudge & 0xFF


# repro-lint: hot-loop
def encode_probe_into(
    template: ProbeTemplate,
    buffer: bytearray,
    target: int,
    ttl: int,
    elapsed: int,
) -> None:
    """In-place batched twin of :func:`encode_probe`.

    Patches ``buffer`` (from ``template.new_buffer()``) into the complete
    probe packet for (target, TTL) at send time ``elapsed`` — byte-
    identical to ``encode_probe(template.src, target, ttl, elapsed, ...)``
    with the template's instance, protocol and flow id.
    """
    template.encode_into(buffer, target, ttl, elapsed)


def decode_quotation(quotation: bytes, instance: Optional[int] = None) -> DecodedProbe:
    """Recover Yarrp6 probe state from an ICMPv6 error quotation.

    Raises :class:`DecodeError` for non-Yarrp6 or hopelessly truncated
    quotations (distinguishing "someone else's packet" from "our packet,
    mangled" via the magic and the target checksum respectively).
    """
    try:
        header, rest = ipv6.split_packet(quotation)
    except PacketError as error:
        raise DecodeError("unparseable quotation: %s" % error) from None
    transport_length = _TRANSPORT_LENGTH.get(header.next_header)
    if transport_length is None:
        raise DecodeError("unexpected protocol %d in quotation" % header.next_header)
    if len(rest) < transport_length + PAYLOAD_LENGTH - 2:
        # The fudge bytes are expendable; everything before them is not.
        raise DecodeError(
            "quotation truncated to %d bytes of transport" % len(rest)
        )
    payload = rest[transport_length:]
    try:
        magic, probe_instance, ttl, elapsed = struct.unpack(
            "!IBBI", payload[:10]
        )
    except struct.error:
        raise DecodeError("quotation payload too short") from None
    if magic != MAGIC:
        raise DecodeError("bad magic %08x" % magic)
    if instance is not None and probe_instance != instance:
        raise DecodeError(
            "instance mismatch: probe %d, ours %d" % (probe_instance, instance)
        )
    # Source port / ICMPv6 identifier carries the target checksum.
    if header.next_header == PROTO_ICMPV6:
        sport = struct.unpack("!H", rest[4:6])[0]
    else:
        sport = struct.unpack("!H", rest[0:2])[0]
    modified = sport != address_checksum(header.dst)
    return DecodedProbe(
        target=header.dst,
        ttl=ttl,
        elapsed=elapsed,
        instance=probe_instance,
        protocol=header.next_header,
        target_modified=modified,
    )


def rtt_from(elapsed: int, now: int) -> int:
    """Round-trip time from a 32-bit truncated send timestamp."""
    return (now - elapsed) & 0xFFFFFFFF
