"""Sequential (scamper-style) traceroute baseline.

Production systems trace each destination with sequentially increasing
TTLs, running a window of traces concurrently.  Because traces start
together and advance in lockstep, the wire exhibits *per-TTL waves*: a
burst of TTL=1 probes (all absorbed by the handful of near-vantage
routers), then a burst of TTL=2 probes, and so on — precisely the packet
timing the paper's captures show ("per-TTL bursty behavior ... as traces
remain synchronized", Section 4.2), and the behaviour that drains ICMPv6
token buckets at high probing rates (Figure 5).

Paris-traceroute semantics come for free: probes reuse Yarrp6's
per-target-constant header encoding, so flows stay on one ECMP path.

Per-trace early termination mirrors scamper: a trace stops once the
destination answers, a terminal ICMPv6 error arrives, or ``gap_limit``
consecutive hops have gone unanswered (evaluated with a two-wave lag so
in-flight responses get counted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from .encoding import encode_probe
from .records import ProbeRecord, ResponseProcessor


@dataclass
class SequentialConfig:
    max_ttl: int = 16
    protocol: str = "icmp6"
    instance: int = 2
    #: Concurrent traces per block (scamper's window).
    window: int = 500
    #: Consecutive unresponsive hops after which a trace is abandoned.
    gap_limit: int = 5
    #: Waves of lag before counting a hop as unresponsive (covers RTT).
    response_lag_waves: int = 2


class _TraceState:
    __slots__ = ("target", "alive", "responded_ttls", "terminal")

    def __init__(self, target: int) -> None:
        self.target = target
        self.alive = True
        self.responded_ttls: Set[int] = set()
        self.terminal = False


class SequentialProber:
    """Lockstep-windowed sequential tracer."""

    def __init__(
        self,
        source: int,
        targets: Sequence[int],
        config: Optional[SequentialConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.source = source
        self.targets = list(targets)
        self.config = config or SequentialConfig()
        if not self.targets:
            raise ValueError("no targets")
        self.processor = ResponseProcessor(self.config.instance)
        self.sent = 0
        self._traces: Dict[int, _TraceState] = {}
        self._emitter = self._emission_order()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_sent = registry.counter("prober.sent")
        self._m_responses = registry.counter("prober.responses")
        self._m_ttl_yield = registry.counter_map("prober.ttl_yield")
        self._m_completed = registry.counter("prober.completed_traces")

    def _emission_order(self) -> Iterator[Tuple[int, int]]:
        """Generate (target, ttl) in windowed per-TTL waves."""
        config = self.config
        for start in range(0, len(self.targets), config.window):
            block = [
                _TraceState(target)
                for target in self.targets[start : start + config.window]
            ]
            for trace in block:
                self._traces[trace.target] = trace
            for ttl in range(1, config.max_ttl + 1):
                for trace in block:
                    if not trace.alive:
                        continue
                    self._maybe_gap_out(trace, ttl)
                    if trace.alive:
                        yield trace.target, ttl

    def _maybe_gap_out(self, trace: _TraceState, next_ttl: int) -> None:
        """Abandon the trace after gap_limit consecutive silent hops,
        discounting the most recent waves whose responses are in flight."""
        config = self.config
        horizon = next_ttl - 1 - config.response_lag_waves
        if horizon < config.gap_limit:
            return
        last_response = max(
            (ttl for ttl in trace.responded_ttls if ttl <= horizon), default=0
        )
        if horizon - last_response >= config.gap_limit:
            trace.alive = False

    @property
    def exhausted(self) -> bool:
        return self._emitter is None

    def next_probe(self, now: int) -> Optional[bytes]:  # repro-lint: program-root
        if self._emitter is None:
            return None
        try:
            target, ttl = next(self._emitter)
        except StopIteration:
            self._emitter = None
            return None
        self.sent += 1
        self._m_sent.inc()
        return encode_probe(
            self.source,
            target,
            ttl,
            elapsed=now & 0xFFFFFFFF,
            instance=self.config.instance,
            protocol=self.config.protocol,
        )

    def receive(self, data: bytes, now: int) -> Optional[ProbeRecord]:  # repro-lint: program-root
        record = self.processor.process(data, now, self.sent)
        if record is None:
            return None
        self._m_responses.inc()
        if record.is_time_exceeded:
            self._m_ttl_yield.inc(record.ttl)
        trace = self._traces.get(record.target)
        if trace is not None:
            trace.responded_ttls.add(record.ttl)
            if record.is_terminal:
                # Destination (or a terminal error source) reached: stop.
                if not trace.terminal:
                    self._m_completed.inc()
                trace.terminal = True
                trace.alive = False
        return record

    @property
    def records(self) -> List[ProbeRecord]:
        return self.processor.records

    @property
    def interfaces(self) -> set:
        return self.processor.interfaces

    def summary(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "received": self.processor.received,
            "interfaces": len(self.processor.interfaces),
            "decode_failures": self.processor.decode_failures,
            "completed_traces": sum(
                1 for trace in self._traces.values() if trace.terminal
            ),
        }
