"""Wall-clock deadlines for the supervised parallel runner.

This module is the supervisor's *only* doorway to host time — an
allowlisted wall-clock boundary in the same sense as
:mod:`repro.obs.wallclock` (it appears in the DET001
``WALLCLOCK_EXEMPT_MODULES`` and DetSan ``WALLCLOCK_MODULES``
allowlists).  The narrow surface keeps the determinism argument easy to
audit: host time read here is used exclusively for *supervision* —
deciding that a worker is late or dead and must be replaced — never for
anything that reaches probe bytes, records, metrics, or the merged
result.  A retried shard re-runs ``run_shard(spec, shard, shards)``
from the spec, so whatever the wall clock said, the payload it produces
is byte-identical (see ``docs/robustness.md``).

Everything else in :mod:`repro.prober` stays on the virtual clock.
"""

from __future__ import annotations

import time
from typing import Optional


def now() -> float:
    """Monotonic host seconds; only comparable to other :func:`now` calls."""
    return time.perf_counter()


def sleep(seconds: float) -> None:
    """Host sleep used for supervision pacing (poll slices, backoff)."""
    if seconds > 0:
        time.sleep(seconds)


class Deadline:
    """A point on the host clock by which something must have happened.

    ``Deadline(None)`` never expires — the supervisor uses it when no
    per-shard timeout is configured, so call sites stay branch-free.
    """

    def __init__(
        self, timeout_s: Optional[float], start_s: Optional[float] = None
    ) -> None:
        self.timeout_s = timeout_s
        self.start_s = now() if start_s is None else start_s

    def expired(self) -> bool:
        if self.timeout_s is None:
            return False
        return now() - self.start_s >= self.timeout_s

    def remaining_s(self) -> Optional[float]:
        """Seconds left, ``None`` when the deadline never expires."""
        if self.timeout_s is None:
            return None
        return max(0.0, self.timeout_s - (now() - self.start_s))
