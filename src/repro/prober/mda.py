"""Multipath (ECMP) enumeration: an MDA-style flow sweep.

Yarrp6 deliberately pins each target onto one ECMP path (constant
headers).  The complementary question — *how many* parallel paths exist,
and through which routers — is what Paris traceroute's Multipath
Detection Algorithm answers by re-probing each hop under varied flow
identifiers.  Almeida et al. (PAM 2017) found load balancing prevalent
on IPv6 paths; the paper leans on that to justify the checksum fudge.

This prober varies the *fudged checksum constant* per flow (the same
field IPv6 load balancers hash for ICMPv6) and enumerates, per (target,
TTL), the set of responding interfaces across flows.  Responses are
matched statelessly as ever — the flow leaves the quotation's decoded
state untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netsim.engine import Engine, pps_interval
from ..netsim.internet import Internet
from .encoding import encode_probe
from .records import ResponseProcessor


@dataclass
class MDAConfig:
    """Enumeration parameters."""

    max_ttl: int = 16
    #: Distinct flow identifiers swept per (target, TTL).
    flows: int = 8
    pps: float = 1000.0
    protocol: str = "icmp6"
    instance: int = 4


class MDAResult:
    """Per-hop interface sets discovered across flows."""

    def __init__(self, targets: Sequence[int], config: MDAConfig) -> None:
        self.targets = list(targets)
        self.config = config
        #: (target, ttl) -> set of responding interface addresses.
        self.hop_sets: Dict[Tuple[int, int], Set[int]] = {}
        self.sent = 0
        self.responses = 0

    def record(self, target: int, ttl: int, hop: int) -> None:
        self.hop_sets.setdefault((target, ttl), set()).add(hop)
        self.responses += 1

    def divergent_hops(self) -> Dict[Tuple[int, int], Set[int]]:
        """The (target, ttl) positions where flows saw different routers
        — the load-balanced portions of the paths."""
        return {
            key: hops for key, hops in self.hop_sets.items() if len(hops) > 1
        }

    def width(self, target: int) -> int:
        """Maximum parallel-interface width observed along one target's
        path (1 = no load balancing seen)."""
        widths = [
            len(hops)
            for (probed, _), hops in self.hop_sets.items()
            if probed == target
        ]
        return max(widths, default=0)


def run_mda(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    config: Optional[MDAConfig] = None,
) -> MDAResult:
    """Sweep flows over every (target, TTL) and collect per-hop sets."""
    config = config or MDAConfig()
    if not targets:
        raise ValueError("no targets")
    vantage = internet.vantage(vantage_name)
    result = MDAResult(targets, config)
    processor = ResponseProcessor(config.instance)
    engine = Engine()
    interval = pps_interval(config.pps)

    def deliver(data: bytes) -> None:
        record = processor.process(data, engine.now, result.sent)
        if record is not None and record.is_time_exceeded:
            result.record(record.target, record.ttl, record.hop)

    when = 0
    for flow_id in range(config.flows):
        for target in targets:
            for ttl in range(1, config.max_ttl + 1):
                def send(target: int = target, ttl: int = ttl, flow_id: int = flow_id) -> None:
                    packet = encode_probe(
                        vantage.address,
                        target,
                        ttl,
                        elapsed=engine.now & 0xFFFFFFFF,
                        instance=config.instance,
                        protocol=config.protocol,
                        flow_id=flow_id * 7,  # spread the checksum constants
                    )
                    result.sent += 1
                    response = internet.probe(packet, engine.now)
                    if response is not None:
                        data = response.data
                        engine.schedule(response.delay_us, lambda data=data: deliver(data))

                engine.schedule_at(when, send)
                when += interval
    engine.run()
    return result
