"""Speedtrap-style IPv6 alias resolution probing (Luckie et al. 2013).

The paper's stated next step (Section 7.2): feed discovered interface
addresses into Internet-scale alias resolution to build *router-level*
topology.  Speedtrap's insight is that IPv6 nodes keep one fragment
Identification counter per router, shared across interfaces.  The
prober:

1. sends each candidate a Packet Too Big reporting an MTU below 1280,
   putting the node into RFC 6946 *atomic fragment* mode toward us;
2. samples each candidate's counter over several interleaved rounds by
   sending Echo Requests and reading the Identification from the atomic
   Fragment header on the replies.

The samples — (address, virtual time, identification) — go to
:mod:`repro.analysis.alias` for monotonic-sequence clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.engine import Engine, pps_interval
from ..netsim.internet import Internet
from ..packet import fragment, icmpv6, ipv6
from ..packet.checksum import address_checksum
from ..packet.ipv6 import PROTO_ICMPV6, IPv6Header

#: The under-minimum MTU reported to force atomic fragments.
LURE_MTU = 1000


@dataclass
class SpeedtrapConfig:
    """Sampling parameters."""

    rounds: int = 5
    #: Probe rate; alias sampling is low-volume, politeness is cheap.
    pps: float = 500.0
    #: Virtual pause between rounds — interleaving across time is what
    #: gives the monotonic-sequence test its power.
    round_gap_us: int = 200_000


class IdSample:
    """One fragment-Identification observation."""

    __slots__ = ("address", "time_us", "identification", "round_index")

    def __init__(self, address: int, time_us: int, identification: int, round_index: int) -> None:
        self.address = address
        self.time_us = time_us
        self.identification = identification
        self.round_index = round_index

    def __repr__(self) -> str:
        return "IdSample(%x @%dus id=%d)" % (
            self.address,
            self.time_us,
            self.identification,
        )


class Speedtrap:
    """The sampling state machine (drive it with :func:`run_speedtrap`)."""

    def __init__(self, source: int, candidates: Sequence[int], config: Optional[SpeedtrapConfig] = None) -> None:
        self.source = source
        self.candidates = sorted(set(candidates))
        self.config = config or SpeedtrapConfig()
        if not self.candidates:
            raise ValueError("no candidate addresses")
        self.samples: Dict[int, List[IdSample]] = {}
        self.sent = 0
        self.unresponsive: Dict[int, int] = {}

    # -- packet builders -------------------------------------------------
    def lure_packet(self, candidate: int) -> bytes:
        """The Packet Too Big that plants atomic-fragment state."""
        quoted = ipv6.build_packet(
            IPv6Header(candidate, self.source, 0, PROTO_ICMPV6),
            icmpv6.echo_reply(1, 1).pack(candidate, self.source),
        )
        message = icmpv6.ICMPv6Message(
            icmpv6.TYPE_PACKET_TOO_BIG, 0, LURE_MTU, quoted[: icmpv6.MAX_QUOTATION]
        )
        self.sent += 1
        return ipv6.build_packet(
            IPv6Header(self.source, candidate, 0, PROTO_ICMPV6, hop_limit=64),
            message.pack(self.source, candidate),
        )

    def sample_packet(self, candidate: int, round_index: int) -> bytes:
        echo = icmpv6.echo_request(
            address_checksum(candidate), round_index, b"speedtrap"
        )
        self.sent += 1
        return ipv6.build_packet(
            IPv6Header(self.source, candidate, 0, PROTO_ICMPV6, hop_limit=64),
            echo.pack(self.source, candidate),
        )

    # -- reception --------------------------------------------------------
    def receive(self, data: bytes, now: int, round_index: int) -> Optional[IdSample]:
        try:
            header, payload = ipv6.split_packet(data)
        except ipv6.PacketError:
            return None
        extracted = fragment.extract_identification(header.next_header, payload)
        if extracted is None:
            return None
        identification, inner_proto, inner = extracted
        if inner_proto != PROTO_ICMPV6:
            return None
        try:
            message = icmpv6.ICMPv6Message.unpack(inner)
        except ipv6.PacketError:
            return None
        if not message.is_echo_reply:
            return None
        sample = IdSample(header.src, now, identification, round_index)
        self.samples.setdefault(header.src, []).append(sample)
        return sample


def run_speedtrap(
    internet: Internet,
    vantage_name: str,
    candidates: Sequence[int],
    config: Optional[SpeedtrapConfig] = None,
) -> Speedtrap:
    """Run the full lure + sampling schedule in virtual time."""
    config = config or SpeedtrapConfig()
    vantage = internet.vantage(vantage_name)
    machine = Speedtrap(vantage.address, candidates, config)
    engine = Engine()
    interval = pps_interval(config.pps)

    def send(packet: bytes, round_index: int) -> None:
        response = internet.probe(packet, engine.now)
        if response is not None:
            data = response.data
            engine.schedule(
                response.delay_us,
                lambda data=data, round_index=round_index: machine.receive(
                    data, engine.now, round_index
                ),
            )

    when = 0
    for candidate in machine.candidates:
        engine.schedule_at(when, lambda c=candidate: send(machine.lure_packet(c), -1))
        when += interval
    when += config.round_gap_us
    for round_index in range(config.rounds):
        for candidate in machine.candidates:
            engine.schedule_at(
                when,
                lambda c=candidate, r=round_index: send(machine.sample_packet(c, r), r),
            )
            when += interval
        when += config.round_gap_us
    engine.run()

    for candidate in machine.candidates:
        if candidate not in machine.samples:
            machine.unresponsive[candidate] = config.rounds
    return machine
