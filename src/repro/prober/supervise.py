"""Supervised shard execution: deadlines, dead-worker detection,
deterministic retry, graceful degradation.

:func:`repro.prober.parallel.run_parallel` hands the actual execution
of its shards to this module.  The contract it relies on — and the
reason supervision can exist at all without threatening the bit-identity
guarantees — is that **a shard is a pure function of** ``(spec, shard,
shards)``: ``run_shard`` rebuilds (or rewinds) the world from the spec
and replays the permutation walk on the virtual clock, so running a
shard a second time produces byte-identical records, metrics, and
summary counters.  Retrying a lost shard is therefore *invisible* in
the merged result; only the :class:`~repro.obs.failures.FailureReport`
(and the host's wall clock) can tell a faulted run from a clean one.
FaultSan (:mod:`repro.lint.faultsan`) proves this differentially.

What the supervisor defends against, and how:

- **Worker crash** — the worker entry point catches everything and
  returns an ``("error", shard, traceback)`` outcome; the supervisor
  counts it as a ``crash`` fault and retries.
- **Silent worker death** (SIGKILL, OOM killer) — every attempt
  announces ``(shard, attempt, pid)`` on a start queue the moment a
  worker picks it up; the supervisor polls worker liveness and treats a
  vanished pid as a ``worker-died`` fault instead of hanging forever on
  a result that will never arrive.  The pool replaces the dead process
  on its own; the retry is dispatched like any other task.
- **Hang / runaway shard** — with ``shard_timeout_s`` set, an attempt
  that outlives its deadline (measured from its start announcement on
  the host clock, via the :mod:`repro.prober.deadline` boundary) has
  its worker SIGKILLed and is counted as a ``timeout`` fault.
- **Corrupt result** — a result that fails to cross the pool pipe
  (pickling error) surfaces through the pool's error callback and is
  counted as a ``corrupt-result`` fault; the retry re-runs the shard
  rather than trusting broken bytes.

Retries are bounded (``max_retries``) with deterministic seeded backoff
— the delay is a pure function of ``(seed, shard, attempt)``, so two
runs facing the same faults pace their retries identically.  A shard
that exhausts its attempts either fails the campaign with a structured
:class:`ShardFailure` carrying *every* exhausted shard's history
(``degrade="fail"``), or falls back to running serially in the parent
process (``degrade="serial"``) — the slowest but most isolated path,
and byte-identical by the same purity argument.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import queue
import signal
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..obs.failures import (
    CAUSE_CORRUPT,
    CAUSE_CRASH,
    CAUSE_TIMEOUT,
    CAUSE_WORKER_DIED,
    FailureReport,
)
from ..obs.profiler import NULL_PROFILER, WallProfiler, pickled_bytes
from . import deadline
from .campaign import CampaignResult

if TYPE_CHECKING:  # pure type cycle: parallel imports supervise at runtime
    from ..lint.faultsan import FaultPlan
    from .parallel import CampaignSpec


class ShardFailure(RuntimeError):
    """One or more shards failed permanently.

    The message names every exhausted shard with its attempt count,
    last cause, and last traceback; ``failures`` carries the same
    history structured: a tuple of ``{"shard", "attempts", "faults"}``
    dicts, where each fault is ``{"attempt", "cause", "detail"}``.
    """

    def __init__(
        self, message: str, failures: Sequence[Dict[str, Any]] = ()
    ) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


DEGRADE_FAIL = "fail"
DEGRADE_SERIAL = "serial"


@dataclass(frozen=True)
class SuperviseConfig:
    """How hard :func:`run_parallel` fights to finish a campaign.

    The default is the strictest setting: no timeout, no retries, fail
    on the first permanently-lost shard — byte-for-byte the semantics
    an unsupervised pool would have, minus the hangs.
    """

    #: Per-attempt wall-clock deadline, measured from the moment a
    #: worker announces the attempt.  ``None`` disables deadlines.
    #: Ignored on the in-process serial path (``processes=1``), where
    #: there is no worker to preempt.
    shard_timeout_s: Optional[float] = None
    #: Extra attempts after the first, per shard.
    max_retries: int = 0
    #: Base of the deterministic exponential backoff between attempts;
    #: attempt ``n``'s retry waits ``base * 2**(n-1) * (1 + jitter)``
    #: where jitter in ``[0, 1)`` is a pure function of
    #: ``(seed, shard, n)``.  Zero disables backoff.
    backoff_base_s: float = 0.05
    #: What to do with a shard that exhausts its attempts: ``"fail"``
    #: raises one :class:`ShardFailure` naming every exhausted shard;
    #: ``"serial"`` re-runs each exhausted shard in the parent process
    #: after the pool shuts down.
    degrade: str = DEGRADE_FAIL
    #: Supervision loop tick: upper bound on how long deadline and
    #: liveness checks can lag behind events.
    poll_interval_s: float = 0.02

    def attempts(self) -> int:
        return 1 + self.max_retries


DEFAULT_SUPERVISE = SuperviseConfig()


def validate_supervise(config: SuperviseConfig) -> None:
    """Raise ``ValueError`` before any worker forks, like
    :func:`repro.prober.parallel.validate_spec`."""
    if config.shard_timeout_s is not None and config.shard_timeout_s <= 0:
        raise ValueError(
            "shard_timeout_s must be positive or None: %r"
            % config.shard_timeout_s
        )
    if config.max_retries < 0:
        raise ValueError("max_retries must be >= 0: %r" % config.max_retries)
    if config.backoff_base_s < 0:
        raise ValueError(
            "backoff_base_s must be >= 0: %r" % config.backoff_base_s
        )
    if config.degrade not in (DEGRADE_FAIL, DEGRADE_SERIAL):
        raise ValueError(
            "degrade must be %r or %r: %r"
            % (DEGRADE_FAIL, DEGRADE_SERIAL, config.degrade)
        )
    if config.poll_interval_s <= 0:
        raise ValueError(
            "poll_interval_s must be positive: %r" % config.poll_interval_s
        )


# -- deterministic backoff --------------------------------------------------

_MASK64 = (1 << 64) - 1


def _mix64(*values: int) -> int:
    """splitmix64-style avalanche over the inputs: a pure integer hash
    (the builtin ``hash`` is PYTHONHASHSEED-dependent and DET001-banned)."""
    acc = 0
    for value in values:
        acc = (acc + (value & _MASK64) + 0x9E3779B97F4A7C15) & _MASK64
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK64
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc


def backoff_delay_s(
    config: SuperviseConfig, seed: int, shard: int, attempt: int
) -> float:
    """Seconds to wait before re-dispatching ``shard`` after failed
    attempt ``attempt``: exponential in the attempt, jittered by a pure
    function of ``(seed, shard, attempt)`` — deterministic across runs."""
    if config.backoff_base_s <= 0:
        return 0.0
    jitter = _mix64(seed, shard, attempt) / float(1 << 64)
    return config.backoff_base_s * (2.0 ** (attempt - 1)) * (1.0 + jitter)


# -- worker side ------------------------------------------------------------

#: The start-report queue inherited by pool workers (set by
#: :func:`_init_worker` via the pool initializer): workers announce
#: ``(shard, attempt, pid)`` the instant they pick up a task, giving the
#: parent the pid to watch (liveness) and the deadline's start time.
_START_QUEUE: Optional[Any] = None


def _init_worker(start_queue: Any) -> None:
    global _START_QUEUE
    _START_QUEUE = start_queue


#: ``(spec, shard, shards, attempt, fault_plan)``.
WorkerPayload = Tuple["CampaignSpec", int, int, int, Optional["FaultPlan"]]


def _inject(
    plan: Optional["FaultPlan"], shard: int, attempt: int, site: str, value: Any = None
) -> Any:
    """FaultSan hook: a no-op returning ``value`` unless a fault plan
    names this exact ``(shard, attempt, site)``.  The import is lazy so
    the prober package only touches the lint package under injection."""
    if plan is None:
        return value
    from ..lint.faultsan import inject

    return inject(plan, shard, attempt, site, value)


def _supervised_worker(payload: WorkerPayload) -> Tuple[str, int, Any]:  # repro-lint: program-root
    """Pool entry point: announce, run the shard, never raise.

    Failures come back as ``("error", shard, traceback)`` values; the
    supervisor turns them into retries or one clean
    :class:`ShardFailure` instead of a pool hang.
    """
    spec, shard, shards, attempt, plan = payload
    if _START_QUEUE is not None:
        _START_QUEUE.put((shard, attempt, os.getpid()))
    try:
        _inject(plan, shard, attempt, "worker.start")
        from .parallel import run_shard

        result: Any = run_shard(spec, shard, shards)
        result = _inject(plan, shard, attempt, "worker.result", result)
        return ("ok", shard, result)
    except BaseException:
        return ("error", shard, traceback.format_exc())


# -- supervisor bookkeeping -------------------------------------------------


@dataclass
class _ShardState:
    """Everything the supervisor knows about one shard."""

    shard: int
    attempt: int = 0  # attempts dispatched so far (1-based once running)
    dispatched: bool = False  # an attempt is in flight
    handle: Optional[Any] = None  # the in-flight attempt's AsyncResult
    pid: Optional[int] = None  # worker running the attempt, once announced
    started_s: Optional[float] = None  # host time of the announcement
    ready_at_s: float = 0.0  # backoff gate for the next dispatch
    faults: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[CampaignResult] = None
    exhausted: bool = False


def _shard_failure(failed: Sequence[_ShardState], attempts: int) -> ShardFailure:
    blocks = []
    entries = []
    for state in failed:
        last = state.faults[-1] if state.faults else {"cause": "unknown", "detail": ""}
        blocks.append(
            "shard %d worker failed permanently (%s on attempt %d of %d):\n%s"
            % (
                state.shard,
                last["cause"],
                len(state.faults),
                attempts,
                last["detail"] or last["cause"],
            )
        )
        entries.append(
            {
                "shard": state.shard,
                "attempts": len(state.faults),
                "faults": [dict(fault) for fault in state.faults],
            }
        )
    message = "%d shard(s) failed permanently:\n%s" % (
        len(failed),
        "\n".join(blocks),
    )
    return ShardFailure(message, failures=entries)


def _fault(
    state: _ShardState,
    cause: str,
    detail: str,
    config: SuperviseConfig,
    seed: int,
    report: FailureReport,
    prof: WallProfiler,
) -> None:
    """Record one failed attempt and decide: retry (arming the backoff
    gate) or mark the shard exhausted."""
    attempt = state.attempt
    state.dispatched = False
    state.pid = None
    state.started_s = None
    state.faults.append({"attempt": attempt, "cause": cause, "detail": detail})
    report.record_fault(state.shard, attempt, cause, detail)
    if attempt >= config.attempts():
        state.exhausted = True
        return
    state.ready_at_s = deadline.now() + backoff_delay_s(
        config, seed, state.shard, attempt
    )
    report.record_retry(state.shard)
    with prof.phase(
        "shard.retry", shard=state.shard, attempt=attempt + 1, cause=cause
    ):
        pass  # marker span: retries show up in the wall profile


def _finish(
    spec: "CampaignSpec",
    shards: int,
    states: Sequence[_ShardState],
    config: SuperviseConfig,
    prof: WallProfiler,
    report: FailureReport,
) -> None:
    """Resolve exhausted shards: degrade serially in-parent or raise."""
    exhausted = [state for state in states if state.exhausted]
    if not exhausted:
        return
    if config.degrade != DEGRADE_SERIAL:
        raise _shard_failure(exhausted, config.attempts())
    from .parallel import run_shard

    for state in exhausted:
        # The most isolated retry there is: no pool, no pipe, no fault
        # injection — and byte-identical, because a shard is a pure
        # function of (spec, shard, shards).  A shard that fails even
        # here has a real bug; let it raise.
        with prof.phase("shard.degrade", shard=state.shard):
            state.result = run_shard(spec, state.shard, shards, profiler=prof)
        state.exhausted = False
        report.record_degraded(state.shard)


# -- serial path ------------------------------------------------------------


def run_serial_supervised(
    spec: "CampaignSpec",
    shards: int,
    config: SuperviseConfig,
    plan: Optional["FaultPlan"],
    prof: WallProfiler,
    report: FailureReport,
) -> List[Optional[CampaignResult]]:
    """All shards in this process, with the same retry/degrade semantics
    as the pool path (deadlines excepted: in-process work can't be
    preempted).  Shards share the process world via ``_world_for`` and
    profile straight into the parent's profiler, exactly like the
    unsupervised serial path did."""
    from .parallel import run_shard

    states = [_ShardState(shard=shard) for shard in range(shards)]
    seed = spec.internet.seed
    for state in states:
        while state.result is None and not state.exhausted:
            state.attempt += 1
            try:
                _inject(plan, state.shard, state.attempt, "worker.start")
                value: Any = run_shard(spec, state.shard, shards, profiler=prof)
                value = _inject(
                    plan, state.shard, state.attempt, "worker.result", value
                )
            except BaseException:
                _fault(
                    state,
                    CAUSE_CRASH,
                    traceback.format_exc(),
                    config,
                    seed,
                    report,
                    prof,
                )
            else:
                if isinstance(value, CampaignResult):
                    state.result = value
                else:
                    _fault(
                        state,
                        CAUSE_CORRUPT,
                        "shard %d attempt %d returned %r instead of a "
                        "CampaignResult" % (state.shard, state.attempt, value),
                        config,
                        seed,
                        report,
                        prof,
                    )
            if state.result is None and not state.exhausted:
                deadline.sleep(state.ready_at_s - deadline.now())
    _finish(spec, shards, states, config, prof, report)
    return [state.result for state in states]


# -- pool path --------------------------------------------------------------


def _kill(pid: Optional[int]) -> None:
    if pid is None:
        return
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):  # already gone / not ours
        pass


def _discard(pool: multiprocessing.pool.Pool, state: _ShardState) -> None:
    """Write off ``state``'s in-flight job in the pool's bookkeeping.

    A job whose worker died never completes, so its entry would sit in
    ``pool._cache`` forever — and ``close()``/``join()`` only finishes
    once the cache drains.  Dropping the entry ourselves keeps the
    clean-shutdown path reachable after a worker loss.  (The pool's
    result handler tolerates a late result for a dropped job: it looks
    the job up by id and ignores misses.)
    """
    handle, state.handle = state.handle, None
    if handle is None:
        return
    job = getattr(handle, "_job", None)
    cache = getattr(pool, "_cache", None)
    if job is not None and isinstance(cache, dict):
        cache.pop(job, None)


def _live_pids(pool: multiprocessing.pool.Pool) -> Optional[Any]:
    """Pids of the pool's currently-alive workers, or ``None`` when the
    pool implementation doesn't expose them (liveness checks degrade to
    deadline-only supervision)."""
    workers = getattr(pool, "_pool", None)
    if workers is None:
        return None
    return {
        worker.pid
        for worker in workers
        if worker.pid is not None and worker.is_alive()
    }


def _drain_start_reports(start_queue: Any, states: Sequence[_ShardState]) -> None:
    while not start_queue.empty():
        shard, attempt, pid = start_queue.get()
        state = states[shard]
        if state.dispatched and attempt == state.attempt:
            state.pid = pid
            state.started_s = deadline.now()
        # else: a stale announcement from a killed/raced attempt


def _poll_slice(
    states: Sequence[_ShardState], config: SuperviseConfig, now_s: float
) -> float:
    """How long the event wait may block without missing a deadline, a
    backoff gate opening, or a liveness tick."""
    slice_s = config.poll_interval_s
    for state in states:
        if state.result is not None or state.exhausted:
            continue
        if state.dispatched:
            if config.shard_timeout_s is not None and state.started_s is not None:
                slice_s = min(
                    slice_s,
                    state.started_s + config.shard_timeout_s - now_s,
                )
        else:
            slice_s = min(slice_s, state.ready_at_s - now_s)
    return max(0.001, slice_s)


def run_pool_supervised(
    spec: "CampaignSpec",
    shards: int,
    processes: int,
    start_method: Optional[str],
    config: SuperviseConfig,
    plan: Optional["FaultPlan"],
    prof: WallProfiler,
    report: FailureReport,
) -> Tuple[List[Optional[CampaignResult]], Dict[int, int]]:
    """Run every shard through a supervised worker pool.

    Results and pool errors arrive through ``apply_async`` callbacks on
    an event queue (so a vanished worker can't hang the parent the way
    a bare ``imap_unordered`` iterator would); the supervision loop
    alternates between waiting for events and sweeping deadlines and
    worker liveness.  Returns the per-shard results plus the pickled
    result size per shard for the profiler.

    Pool shutdown is ``close()``/``join()`` whenever the supervision
    loop ran to completion — workers exit cleanly and run their
    exit finalizers — and ``terminate()`` only when the loop itself
    died (unexpected error, KeyboardInterrupt) and abandoned dispatched
    work.
    """
    from .parallel import _make_pool

    states = [_ShardState(shard=shard) for shard in range(shards)]
    bytes_by_shard: Dict[int, int] = {}
    seed = spec.internet.seed
    events: "queue.Queue[Tuple[str, int, int, Any]]" = queue.Queue()
    start_queue = multiprocessing.get_context(
        _resolve_method(start_method)
    ).SimpleQueue()

    with prof.phase("pool.start", processes=processes):
        pool = _make_pool(
            processes, start_method, initializer=_init_worker,
            initargs=(start_queue,),
        )
    completed = False
    try:
        with prof.phase("shards"):
            _pump(
                pool, spec, shards, states, config, plan, prof, report,
                seed, start_queue, events, bytes_by_shard,
            )
        completed = True
    finally:
        with prof.phase("pool.stop"):
            if completed:
                pool.close()
            else:
                pool.terminate()
            pool.join()
    _finish(spec, shards, states, config, prof, report)
    return [state.result for state in states], bytes_by_shard


def _resolve_method(start_method: Optional[str]) -> str:
    from .parallel import _resolve_start_method

    return _resolve_start_method(start_method)


def _dispatch(
    pool: multiprocessing.pool.Pool,
    spec: "CampaignSpec",
    shards: int,
    state: _ShardState,
    plan: Optional["FaultPlan"],
    events: "queue.Queue[Tuple[str, int, int, Any]]",
) -> None:
    state.attempt += 1
    state.dispatched = True
    state.pid = None
    state.started_s = None
    shard, attempt = state.shard, state.attempt
    payload: WorkerPayload = (spec, shard, shards, attempt, plan)

    def on_result(outcome: Any, shard: int = shard, attempt: int = attempt) -> None:
        events.put(("result", shard, attempt, outcome))

    def on_error(
        error: BaseException, shard: int = shard, attempt: int = attempt
    ) -> None:
        # The pool failed to move the result across the pipe (e.g. a
        # MaybeEncodingError from an unpicklable result): the shard ran,
        # but its bytes are untrustworthy.
        events.put(("error", shard, attempt, "%s: %s" % (type(error).__name__, error)))

    state.handle = pool.apply_async(
        _supervised_worker, (payload,), callback=on_result,
        error_callback=on_error,
    )


def _absorb_event(
    event: Tuple[str, int, int, Any],
    states: Sequence[_ShardState],
    config: SuperviseConfig,
    seed: int,
    report: FailureReport,
    prof: WallProfiler,
    bytes_by_shard: Dict[int, int],
) -> None:
    kind, shard, attempt, payload = event
    state = states[shard]
    if not state.dispatched or attempt != state.attempt or state.result is not None:
        return  # stale: a late event from an attempt already written off
    state.handle = None  # the job completed; the pool dropped it itself
    if kind == "error":
        _fault(state, CAUSE_CORRUPT, payload, config, seed, report, prof)
        return
    status, _shard, value = payload  # a ShardOutcome tuple
    if status == "ok" and isinstance(value, CampaignResult):
        if prof.enabled:
            # Re-pickle the outcome through a counting sink: the same
            # bytes the pool just moved over the pipe, per shard.
            with prof.phase("pickle", shard=shard):
                count = pickled_bytes(payload)
                prof.add_bytes(count)
                bytes_by_shard[shard] = count
        state.result = value
        state.dispatched = False
        state.pid = None
        return
    detail = value if isinstance(value, str) else repr(value)
    _fault(state, CAUSE_CRASH, detail, config, seed, report, prof)


def _check_deadlines(
    pool: multiprocessing.pool.Pool,
    states: Sequence[_ShardState],
    config: SuperviseConfig,
    seed: int,
    report: FailureReport,
    prof: WallProfiler,
) -> None:
    if config.shard_timeout_s is None:
        return
    now_s = deadline.now()
    for state in states:
        if not state.dispatched or state.started_s is None:
            continue
        if now_s - state.started_s < config.shard_timeout_s:
            continue
        pid = state.pid
        _kill(pid)  # the pool replaces the worker on its own
        _discard(pool, state)
        _fault(
            state,
            CAUSE_TIMEOUT,
            "shard %d attempt %d exceeded the %.3fs deadline; "
            "worker pid %s killed"
            % (state.shard, state.attempt, config.shard_timeout_s, pid),
            config,
            seed,
            report,
            prof,
        )


def _check_liveness(
    pool: multiprocessing.pool.Pool,
    states: Sequence[_ShardState],
    config: SuperviseConfig,
    seed: int,
    report: FailureReport,
    prof: WallProfiler,
) -> None:
    live = _live_pids(pool)
    if live is None:
        return
    for state in states:
        if not state.dispatched or state.pid is None:
            continue
        if state.pid in live:
            continue
        _discard(pool, state)
        _fault(
            state,
            CAUSE_WORKER_DIED,
            "shard %d attempt %d: worker pid %d vanished without a result "
            "(killed or out-of-memory)" % (state.shard, state.attempt, state.pid),
            config,
            seed,
            report,
            prof,
        )


def _pump(
    pool: multiprocessing.pool.Pool,
    spec: "CampaignSpec",
    shards: int,
    states: Sequence[_ShardState],
    config: SuperviseConfig,
    plan: Optional["FaultPlan"],
    prof: WallProfiler,
    report: FailureReport,
    seed: int,
    start_queue: Any,
    events: "queue.Queue[Tuple[str, int, int, Any]]",
    bytes_by_shard: Dict[int, int],
) -> None:
    """The supervision loop: dispatch, wait, absorb, sweep — until every
    shard has a result or is exhausted."""
    while True:
        pending = [
            state
            for state in states
            if state.result is None and not state.exhausted
        ]
        if not pending:
            return
        now_s = deadline.now()
        for state in pending:
            if not state.dispatched and now_s >= state.ready_at_s:
                _dispatch(pool, spec, shards, state, plan, events)
        with prof.phase("ipc.wait"):
            _drain_start_reports(start_queue, states)
            try:
                event: Optional[Tuple[str, int, int, Any]] = events.get(
                    timeout=_poll_slice(states, config, deadline.now())
                )
            except queue.Empty:
                event = None
        while event is not None:
            _absorb_event(
                event, states, config, seed, report, prof, bytes_by_shard
            )
            try:
                event = events.get_nowait()
            except queue.Empty:
                event = None
        _drain_start_reports(start_queue, states)
        _check_deadlines(pool, states, config, seed, report, prof)
        _check_liveness(pool, states, config, seed, report, prof)
