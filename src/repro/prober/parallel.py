"""Parallel campaign execution: one Yarrp6 permutation shard per worker
process, merged deterministically.

Yarrp6's keyed permutation was designed so cooperating instances can
split the probe space with no shared state (Section 4.1): shard ``s`` of
``N`` walks the permutation positions congruent to ``s`` modulo ``N``.
This module runs those shards in a :mod:`multiprocessing` pool and glues
the results back together so that::

    run_parallel(spec, shards=N) == single-process campaign of ``spec``

holds bit for bit, for any ``N``, whenever the campaign is *decomposable*
(see below).  Three mechanisms make that true:

**Spec pickling, not object pickling.**  Workers never receive a live
:class:`~repro.netsim.internet.Internet` over a pipe — a
:class:`CampaignSpec` holds only the :class:`~repro.netsim.build.
InternetConfig` (a dataclass of numbers), the vantage name, the target
list and the prober config.  On fork platforms the parent builds the
world ONCE before the pool starts and every worker inherits it
copy-on-write; workers rewind its run-scoped state
(:meth:`Internet.fresh_run_state`) instead of rebuilding, so sharding
cost is per-campaign, not per-shard-times-build.  Spawn platforms (and
any worker whose inherited world doesn't match the spec) fall back to
rebuilding the identical world from the config's seed via
:meth:`Internet.from_config` — worlds are pure functions of their
config, so both routes produce the same bytes.

**Stride pacing.**  The single-process walk emits permutation position
``p`` at virtual time ``p * interval``.  Shard ``s`` therefore runs with
its first emission at ``s * interval`` and one emission every ``N *
interval`` — its emissions land on exactly the virtual-clock slots the
single process would give its positions, so every probe carries the same
bytes (including the embedded send timestamp) at the same time.

**Deterministic merge.**  Records are sorted by arrival time, then by
send time (the event order the single-process engine produces), then by
shard id; interface sets are unioned; the discovery curve is replayed on
the virtual-time axis with the global sent-counter reconstructed from
the shards' emission clocks; summary counters and rate-limiter drop
tallies are summed; duration is the maximum over shards.

The contract is exact when the simulated internet's dynamics are
*decoupled* — responses are a pure function of each probe — which
:func:`repro.netsim.build.decoupled_dynamics` guarantees, and when the
prober config keeps the emission stream a pure permutation walk (no fill
probes, no neighborhood skipping: both react to responses, which a shard
only partially sees).  Outside the contract ``run_parallel`` is still
deterministic and still covers every (target, TTL) pair exactly once;
the merged result is then the union of N cooperating instances rather
than a bit-replay of one instance, exactly as with real cooperating
yarrp processes.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import traceback
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..netsim.build import InternetConfig
from ..netsim.engine import pps_interval
from ..netsim.internet import Internet
from ..obs.failures import FailureReport
from ..obs.metrics import (
    DEFAULT_BUCKET_US,
    MetricDump,
    MetricsRegistry,
    merge_dumps,
)
from ..obs.profiler import NULL_PROFILER, WallProfiler
from .campaign import CampaignResult, run_campaign
from .permutation import ProbeSchedule
from .records import ProbeRecord
from .supervise import (
    DEFAULT_SUPERVISE,
    ShardFailure,
    SuperviseConfig,
    run_pool_supervised,
    run_serial_supervised,
    validate_supervise,
)
from .yarrp6 import Yarrp6Config

if TYPE_CHECKING:  # only for annotations: the import stays lazy at runtime
    from ..lint.faultsan import FaultPlan


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to run one campaign, compactly picklable.

    ``config`` must describe an *unsharded* prober (``shard=0, shards=1``);
    :func:`run_parallel` assigns shard identities itself.
    """

    internet: InternetConfig
    vantage: str
    targets: Tuple[int, ...]
    pps: float = 1000.0
    config: Optional[Yarrp6Config] = None
    name: Optional[str] = None
    #: Run every shard with a metrics registry; the merged result carries
    #: the shard dumps combined by :func:`repro.obs.metrics.merge_dumps`.
    metrics: bool = False
    metrics_bucket_us: int = DEFAULT_BUCKET_US
    #: Run every shard with its own wall-clock profiler; the worker's
    #: exported phase data rides home on ``CampaignResult.wall_profile``.
    #: Reporting only — the probe bytes and records are identical either
    #: way (set by :func:`run_parallel` when the parent profiles).
    profile: bool = False

    def prober_config(self) -> Yarrp6Config:
        return self.config or Yarrp6Config()

    def default_name(self) -> str:
        return self.name or "%s/yarrp6" % self.vantage


def validate_spec(spec: CampaignSpec, shards: int) -> None:
    """Raise ``ValueError`` for any spec the workers would choke on.

    Runs in the parent, *before* any worker forks: a bad shard count, TTL
    range or empty target list must fail immediately with a clean error,
    not N times inside a pool.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1: %r" % shards)
    if not spec.targets:
        raise ValueError("no targets")
    config = spec.prober_config()
    if config.shard != 0 or config.shards != 1:
        raise ValueError(
            "spec config must be unsharded (shard=0, shards=1); "
            "run_parallel assigns shard identities: got shard=%r shards=%r"
            % (config.shard, config.shards)
        )
    # Constructing the widest shard's schedule exercises every validation
    # the workers would hit: TTL range, domain size, shard arithmetic.
    ProbeSchedule(
        len(spec.targets),
        config.min_ttl,
        config.max_ttl,
        config.key,
        shard=shards - 1,
        shards=shards,
    )
    pps_interval(spec.pps)


#: This process's shared world: ``(config, world)``.  Set by
#: :func:`_world_for`; under a fork start method the parent populates it
#: before the pool exists, so every worker inherits the built world
#: copy-on-write and only rewinds run state per shard.
_SHARED_WORLD: Optional[Tuple[InternetConfig, Internet]] = None


def _world_for(
    config: InternetConfig, profiler: Optional[WallProfiler] = None
) -> Internet:
    """The process-wide world for ``config``, rewound to run-fresh state.

    Reuses the cached world when its config matches — the fork-inherited
    parent build in pool workers, or the previous call's build when
    shards run serially in one process.  A mismatch (first use, spawn
    start method, different campaign) rebuilds from the config; builds
    are pure functions of the config, so either route yields an
    identical world.

    ``profiler`` splits the host cost into ``world.build`` (cache miss
    only — a fork-inherited or cached world costs nothing) and
    ``world.rewind`` (every call) phases.
    """
    global _SHARED_WORLD
    prof = profiler if profiler is not None else NULL_PROFILER
    if _SHARED_WORLD is None or _SHARED_WORLD[0] != config:
        _SHARED_WORLD = (config, Internet.from_config(config, profiler=prof))
    world = _SHARED_WORLD[1]
    with prof.phase("world.rewind"):
        world.fresh_run_state()
    return world


def run_shard(
    spec: CampaignSpec,
    shard: int,
    shards: int,
    internet: Optional[Internet] = None,
    profiler: Optional[WallProfiler] = None,
) -> CampaignResult:  # repro-lint: program-root
    """Run one permutation shard of ``spec`` to completion in-process.

    ``internet`` lets a caller supply a prebuilt world (it must already be
    in run-fresh state); by default the process-shared world for the
    spec's config is used, rewound via :meth:`Internet.fresh_run_state`.

    Profiling: an explicit ``profiler`` records phases in place; with
    ``spec.profile`` set and no profiler given (the worker-process case),
    the shard builds its own and ships its export home on the result's
    ``wall_profile`` field.
    """
    own_profiler = profiler is None and spec.profile
    prof: WallProfiler
    if profiler is not None:
        prof = profiler
    elif spec.profile:
        prof = WallProfiler()
    else:
        prof = NULL_PROFILER
    with prof.phase("shard.run", shard=shard, shards=shards):
        config = replace(spec.prober_config(), shard=shard, shards=shards)
        if internet is None:
            internet = _world_for(spec.internet, profiler=prof)
        base = pps_interval(spec.pps)
        result = run_campaign(
            internet,
            spec.vantage,
            list(spec.targets),
            "yarrp6",
            spec.pps,
            config,
            name="%s[%d/%d]" % (spec.default_name(), shard, shards),
            pace_offset_us=shard * base,
            pace_stride=shards,
            metrics=MetricsRegistry() if spec.metrics else None,
            metrics_bucket_us=spec.metrics_bucket_us,
            profiler=prof,
        )
    if own_profiler:
        prof.validate()
        result = replace(result, wall_profile=prof.export())
    return result


def run_single(
    spec: CampaignSpec, profiler: Optional[WallProfiler] = None
) -> CampaignResult:  # repro-lint: program-root
    """The single-process reference campaign for ``spec``."""
    internet = _world_for(spec.internet, profiler=profiler)
    return run_campaign(
        internet,
        spec.vantage,
        list(spec.targets),
        "yarrp6",
        spec.pps,
        spec.prober_config(),
        name=spec.name,
        metrics=MetricsRegistry() if spec.metrics else None,
        metrics_bucket_us=spec.metrics_bucket_us,
        profiler=profiler,
    )


#: ("ok", shard, result) or ("error", shard, traceback text).
ShardOutcome = Tuple[str, int, Union[CampaignResult, str]]


def _shard_worker(payload: Tuple[CampaignSpec, int, int]) -> ShardOutcome:  # repro-lint: program-root
    """Unsupervised pool entry point: never raises, so a failure is a
    value, not a pool hang.

    :func:`run_parallel` now dispatches through
    :func:`repro.prober.supervise._supervised_worker` (same contract
    plus start announcements and fault-injection sites); this one is
    kept as the minimal reference worker — the spawn-rebuild tests
    drive it directly to prove a bare ``(spec, shard, shards)`` payload
    reproduces a shard byte-identically in a fresh process.
    """
    spec, shard, shards = payload
    try:
        return ("ok", shard, run_shard(spec, shard, shards))
    except BaseException:
        return ("error", shard, traceback.format_exc())


def _resolve_start_method(start_method: Optional[str]) -> str:
    """The pool start method actually used: fork when available (workers
    inherit the parent's built world), the platform default otherwise."""
    if start_method is not None:
        return start_method
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _make_pool(
    processes: int,
    start_method: Optional[str],
    initializer: Optional[Any] = None,
    initargs: Tuple[Any, ...] = (),
) -> multiprocessing.pool.Pool:
    """Build the worker pool (separate hook so tests can assert that
    validation failures never reach it).  ``initializer``/``initargs``
    let the supervisor hand workers the start-report queue."""
    method = _resolve_start_method(start_method)
    return multiprocessing.get_context(method).Pool(
        processes, initializer=initializer, initargs=initargs
    )


def run_parallel(
    spec: CampaignSpec,
    shards: int,
    processes: Optional[int] = None,
    start_method: Optional[str] = None,
    profiler: Optional[WallProfiler] = None,
    supervise: Optional[SuperviseConfig] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> CampaignResult:
    """Run ``spec`` as ``shards`` cooperating Yarrp6 instances and merge.

    ``processes`` caps the worker pool (default: one per shard, bounded
    by the CPU count); with one process the shards run serially in this
    process, which produces the identical result — the merge is a pure
    function of the shard results.

    Execution is *supervised* (see :mod:`repro.prober.supervise`):
    ``supervise`` configures per-shard deadlines, bounded deterministic
    retries and graceful degradation; the default retries nothing and
    fails on the first permanently-lost shard, but — unlike a bare pool
    — a crashed, killed, or hung worker is always a detected event, and
    every failed shard is reported in one structured
    :class:`ShardFailure`.  What the supervisor had to do rides home on
    the merged result's ``failures`` field (a
    :class:`~repro.obs.failures.FailureReport` dump); because a shard
    is a pure function of ``(spec, shard, shards)``, a retried or
    degraded run stays byte-identical to a clean one.  ``fault_plan``
    is FaultSan's hook (:mod:`repro.lint.faultsan`): deterministic
    injected faults for testing the recovery paths.

    With a ``profiler`` the parent records the pipeline phases (world
    build/rewind, pool startup, per-shard IPC wait and result pickle
    size, retries, merge), each worker runs its own
    :class:`WallProfiler` (the spec is re-sent with ``profile=True``),
    and the worker exports plus per-shard pickled byte counts are
    folded into the profiler and attached to the merged result's
    ``wall_profile``.  Profiling is observe-only: probe bytes, records
    and metric dumps are identical with and without it.
    """
    prof = profiler if profiler is not None else NULL_PROFILER
    config = supervise if supervise is not None else DEFAULT_SUPERVISE
    with prof.phase("parallel", shards=shards):
        with prof.phase("validate"):
            validate_spec(spec, shards)
            validate_supervise(config)
        if processes is None:
            processes = min(shards, os.cpu_count() or 1)
        processes = max(1, min(processes, shards))

        report = FailureReport()
        bytes_by_shard: Dict[int, int] = {}
        if processes == 1:
            # Serial shards share the process's world via _world_for;
            # run_shard profiles each one in place (no IPC, no pickling),
            # so the parent passes its own profiler straight through.
            results = run_serial_supervised(
                spec, shards, config, fault_plan, prof, report
            )
        else:
            worker_spec = replace(spec, profile=True) if prof.enabled else spec
            if _resolve_start_method(start_method) == "fork":
                # Build (or rewind) the shared world BEFORE the pool forks:
                # every worker inherits the compiled topology copy-on-write
                # and skips its own build entirely.  Spawn workers start with
                # an empty module and rebuild from the spec's config instead.
                _world_for(spec.internet, profiler=prof)
            results, bytes_by_shard = run_pool_supervised(
                worker_spec, shards, processes, start_method, config,
                fault_plan, prof, report,
            )
        with prof.phase("merge"):
            merged = merge_results(
                [result for result in results if result is not None],
                spec.pps,
                name=spec.default_name(),
                targets=len(spec.targets),
            )
        merged = replace(merged, failures=report.to_dict())
    if prof.enabled:
        for shard, result in enumerate(results):
            if result is not None and result.wall_profile is not None:
                prof.add_worker(
                    shard, result.wall_profile, bytes_by_shard.get(shard, 0)
                )
        if prof.complete():
            # Only when the "parallel" phase was the outermost one: a
            # caller still inside its own phase snapshots later itself.
            merged = replace(merged, wall_profile=prof.to_profile_dict())
    return merged


def _record_send_time(record: ProbeRecord) -> int:
    """Virtual send time recovered from the record's own timestamps."""
    return record.received_at - record.rtt_us


def _global_sent_at(
    when: int, rtt_us: int, base: int, shards: int, shard_sent: Sequence[int]
) -> int:
    """Probes sent across all shards when a response arriving at ``when``
    is processed, replicating the single-process engine's event order.

    Shard ``s`` emits its ``k``-th probe at ``s*base + k*shards*base``
    (stride pacing, one emission per tick until exhaustion), so counting
    emissions before ``when`` is arithmetic.  A response arriving exactly
    on an emission slot is processed *after* that emission only when its
    round trip was shorter than one interval — the same tiebreak the
    engine's (time, sequence) heap produces, because a response is
    scheduled at its probe's send time and the tick at ``when`` was
    scheduled one interval earlier.
    """
    stride = base * shards
    total = 0
    for shard, cap in enumerate(shard_sent):
        offset = shard * base
        if when < offset:
            continue
        delta = when - offset
        before, remainder = divmod(delta, stride)
        if remainder:
            before += 1  # emissions strictly before ``when``
        elif before < cap and rtt_us < base:
            before += 1  # the emission exactly at ``when`` went first
        total += min(before, cap)
    return total


def merge_results(
    shard_results: Sequence[CampaignResult],
    pps: float,
    name: Optional[str] = None,
    targets: Optional[int] = None,
) -> CampaignResult:
    """Deterministically merge per-shard results into one campaign.

    Pure and order-insensitive: shard results may arrive from the pool in
    any order; everything is re-sorted on the virtual clock.
    """
    if not shard_results:
        raise ValueError("no shard results to merge")
    shards = len(shard_results)
    base = pps_interval(pps)
    first = shard_results[0]

    tagged: List[Tuple[int, int, int, ProbeRecord]] = []
    for shard, result in enumerate(shard_results):
        for record in result.records:
            tagged.append((record.received_at, _record_send_time(record), shard, record))
    tagged.sort(key=lambda item: item[:3])

    shard_sent = [result.sent for result in shard_results]
    interfaces = set()
    records: List[ProbeRecord] = []
    curve: List[Tuple[int, int]] = []
    discovery_times: List[int] = []
    for received_at, send_time, shard, record in tagged:
        records.append(record)
        if record.is_time_exceeded and record.hop not in interfaces:
            interfaces.add(record.hop)
            discovery_times.append(received_at)
            curve.append(
                (
                    _global_sent_at(
                        received_at, record.rtt_us, base, shards, shard_sent
                    ),
                    len(interfaces),
                )
            )

    summary = {}
    for result in shard_results:
        for key, value in result.summary.items():
            summary[key] = summary.get(key, 0) + value
    summary["interfaces"] = len(interfaces)

    response_labels = {}
    for result in shard_results:
        for label, count in result.response_labels.items():
            response_labels[label] = response_labels.get(label, 0) + count

    dumps = [result.metrics for result in shard_results]
    merged_metrics: Optional[MetricDump] = None
    if all(dump is not None for dump in dumps):
        merged_metrics = merge_dumps([dump for dump in dumps if dump is not None])
        _rebuild_discovery(merged_metrics, discovery_times)

    return CampaignResult(
        name=name or first.name,
        vantage=first.vantage,
        prober=first.prober,
        pps=pps,
        targets=targets if targets is not None else first.targets,
        sent=sum(shard_sent),
        records=records,
        interfaces=interfaces,
        curve=curve,
        response_labels=response_labels,
        summary=summary,
        duration_us=max(result.duration_us for result in shard_results),
        traces=targets if targets is not None else first.traces,
        metrics=merged_metrics,
    )


def _rebuild_discovery(merged: MetricDump, discovery_times: Sequence[int]) -> None:
    """Recompute ``campaign.discovery`` from the merged record replay.

    The summed per-shard series overcounts: an interface two shards each
    saw first is "novel" twice.  Global novelty is decided above during
    the merged replay, so the series is rebuilt from those timestamps —
    making the dump identical for every shard count, including 1.
    """
    entry = merged.get("campaign.discovery")
    if entry is None:
        return
    bucket_us = int(entry["bucket_us"])
    buckets: Dict[int, int] = {}
    for when in discovery_times:
        bucket = (when // bucket_us) * bucket_us
        buckets[bucket] = buckets.get(bucket, 0) + 1
    entry["points"] = [[bucket, buckets[bucket]] for bucket in sorted(buckets)]
