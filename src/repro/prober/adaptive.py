"""Adaptive-rate probing: detect rate limiting, back off, recover.

Alvarez, Oprea and Rula (IETF 99 MAPRG; cited as the paper's [3])
mitigate ICMPv6 rate limiting in a stateful prober by adjusting
transmission behaviour.  This module grafts the same idea onto Yarrp6:
an AIMD controller watches the response rate of the near hops (the ones
every trace shares, and the first to collapse) over sliding windows,
halves the probing rate when responsiveness sags below a low-water mark,
and creeps back up additively while the near hops stay healthy.

The result trades completion time for responsiveness — useful when the
operator cannot know the path's token-bucket provisioning in advance
(which is always).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.engine import Engine, US_PER_SECOND, pps_interval
from ..netsim.internet import Internet
from .campaign import CampaignResult
from .yarrp6 import Yarrp6, Yarrp6Config


@dataclass
class AdaptiveConfig:
    """AIMD controller parameters."""

    initial_pps: float = 2000.0
    min_pps: float = 50.0
    max_pps: float = 10_000.0
    #: Controller evaluation window.
    window_us: int = 250_000
    #: TTLs counted as the "near neighborhood" whose health is watched.
    near_ttl: int = 3
    #: Below this near-hop response fraction, halve the rate.
    low_water: float = 0.7
    #: Above this, increase the rate additively.
    high_water: float = 0.9
    #: Additive increase per healthy window (pps).
    increase: float = 200.0


class RateController:
    """AIMD over windowed near-hop responsiveness."""

    def __init__(self, config: AdaptiveConfig) -> None:
        self.config = config
        self.pps = config.initial_pps
        self.near_sent = 0
        self.near_answered = 0
        #: (virtual time, pps, observed fraction) per adjustment window.
        self.history: List[Tuple[int, float, float]] = []

    def on_probe(self, ttl: int) -> None:
        if ttl <= self.config.near_ttl:
            self.near_sent += 1

    def on_response(self, ttl: int) -> None:
        if ttl <= self.config.near_ttl:
            self.near_answered += 1

    def evaluate(self, now: int) -> float:
        """Close the current window and return the (new) rate."""
        config = self.config
        if self.near_sent >= 5:
            fraction = self.near_answered / self.near_sent
            if fraction < config.low_water:
                self.pps = max(config.min_pps, self.pps / 2)
            elif fraction > config.high_water:
                self.pps = min(config.max_pps, self.pps + config.increase)
            self.history.append((now, self.pps, fraction))
        self.near_sent = 0
        self.near_answered = 0
        return self.pps


def run_adaptive_yarrp6(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    config: Optional[AdaptiveConfig] = None,
    yarrp_config: Optional[Yarrp6Config] = None,
    reset: bool = True,
) -> Tuple[CampaignResult, RateController]:
    """Yarrp6 campaign under AIMD rate control.

    Returns the campaign result plus the controller (whose ``history``
    records the rate trajectory).
    """
    config = config or AdaptiveConfig()
    if reset:
        internet.reset_dynamics()
    vantage = internet.vantage(vantage_name)
    machine = Yarrp6(vantage.address, targets, yarrp_config)
    controller = RateController(config)
    engine = Engine()

    state = {"interval": pps_interval(controller.pps), "window_end": config.window_us}

    def tick() -> None:
        if engine.now >= state["window_end"]:
            rate = controller.evaluate(engine.now)
            state["interval"] = pps_interval(rate)
            state["window_end"] = engine.now + config.window_us
        packet = machine.next_probe(engine.now)
        if packet is None:
            if not machine.exhausted:
                engine.schedule(state["interval"], tick)
            return
        # Hop limit byte of the IPv6 header drives the near-hop counter.
        controller.on_probe(packet[7])
        response = internet.probe(packet, engine.now)
        if response is not None:
            data = response.data
            def deliver(data: bytes = data) -> None:
                record = machine.receive(data, engine.now)
                if record is not None and record.is_time_exceeded:
                    controller.on_response(record.ttl)
            engine.schedule(response.delay_us, deliver)
        engine.schedule(state["interval"], tick)

    engine.schedule(0, tick)
    engine.run()

    processor = machine.processor
    result = CampaignResult(
        name="%s/adaptive-yarrp6" % vantage_name,
        vantage=vantage_name,
        prober="adaptive-yarrp6",
        pps=config.initial_pps,
        targets=len(targets),
        sent=machine.sent,
        records=processor.records,
        interfaces=set(processor.interfaces),
        curve=list(processor.curve),
        response_labels=dict(processor.response_labels),
        summary=machine.summary(),
        duration_us=engine.now,
        traces=len(targets),
    )
    return result, controller
