"""Probe result records and shared response-processing machinery.

Every prober in the library — Yarrp6, the sequential (scamper-like)
baseline, and Doubletree — receives the same kinds of packets back from
the network: ICMPv6 Time Exceeded with a quotation, terminal ICMPv6
errors, Echo Replies, and TCP RSTs.  :class:`ResponseProcessor` turns raw
response bytes into :class:`ProbeRecord` entries and keeps the counters
the evaluation reads (interface discovery curve, response-type mix,
decode failures, detected target rewrites).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..packet import icmpv6, ipv6
from ..packet.ipv6 import PROTO_ICMPV6, PROTO_TCP
from .encoding import DecodeError, decode_quotation, rtt_from


class ProbeRecord:
    """One response attributed to one probe."""

    __slots__ = (
        "target",
        "ttl",
        "hop",
        "icmp_type",
        "icmp_code",
        "label",
        "rtt_us",
        "received_at",
        "target_modified",
    )

    def __init__(
        self,
        target: int,
        ttl: int,
        hop: int,
        icmp_type: int,
        icmp_code: int,
        label: str,
        rtt_us: int,
        received_at: int,
        target_modified: bool = False,
    ) -> None:
        self.target = target
        #: Originating hop limit of the probe (the hop index answered).
        self.ttl = ttl
        #: Source address of the response — an interface address in the
        #: paper's terminology.
        self.hop = hop
        self.icmp_type = icmp_type
        self.icmp_code = icmp_code
        #: Human-readable response class (Table 4 rows).
        self.label = label
        self.rtt_us = rtt_us
        self.received_at = received_at
        self.target_modified = target_modified

    @property
    def is_time_exceeded(self) -> bool:
        return self.icmp_type == icmpv6.TYPE_TIME_EXCEEDED

    @property
    def is_terminal(self) -> bool:
        """A response that ends a path: echo reply or destination error."""
        return not self.is_time_exceeded

    def __repr__(self) -> str:
        return "ProbeRecord(ttl=%d, %s)" % (self.ttl, self.label)


class ResponseProcessor:
    """Decodes response packets into records and aggregates statistics."""

    def __init__(self, instance: Optional[int] = None) -> None:
        self.instance = instance
        self.records: List[ProbeRecord] = []
        #: Unique response source addresses from ICMPv6 *Time Exceeded*
        #: messages — the paper's "interface address" definition (§4.2).
        self.interfaces: Set[int] = set()
        #: Unique sources of any ICMPv6 response (superset of the above).
        self.responders: Set[int] = set()
        #: (probes_sent, unique_interfaces) checkpoints for Figure 7.
        self.curve: List[Tuple[int, int]] = []
        self.received = 0
        self.tcp_responses = 0
        self.decode_failures = 0
        self.foreign = 0
        self.mangled_targets = 0
        self.response_labels: Dict[str, int] = {}

    def process(self, data: bytes, now: int, sent_so_far: int) -> Optional[ProbeRecord]:
        """Interpret response bytes; returns the record, or None when the
        packet is foreign/undecodable (still counted)."""
        self.received += 1
        try:
            header, payload = ipv6.split_packet(data)
        except ipv6.PacketError:
            self.decode_failures += 1
            return None
        if header.next_header == PROTO_TCP:
            self.tcp_responses += 1
            return None
        if header.next_header != PROTO_ICMPV6:
            self.foreign += 1
            return None
        try:
            message = icmpv6.ICMPv6Message.unpack(payload)
        except ipv6.PacketError:
            self.decode_failures += 1
            return None

        if message.is_echo_reply:
            record = self._from_echo_reply(header, message, now)
        elif message.is_error:
            record = self._from_error(header, message, now)
        else:
            self.foreign += 1
            return None
        if record is None:
            return None

        self.records.append(record)
        label_count = self.response_labels.get(record.label, 0)
        self.response_labels[record.label] = label_count + 1
        if record.target_modified:
            self.mangled_targets += 1
        self.responders.add(record.hop)
        if record.is_time_exceeded and record.hop not in self.interfaces:
            self.interfaces.add(record.hop)
            self.curve.append((sent_so_far, len(self.interfaces)))
        return record

    def _from_echo_reply(
        self, header: ipv6.IPv6Header, message: icmpv6.ICMPv6Message, now: int
    ) -> Optional[ProbeRecord]:
        """Echo replies mirror our 12-byte payload; recover state from it."""
        body = message.body
        if len(body) < 10:
            self.decode_failures += 1
            return None
        import struct

        from .encoding import MAGIC

        magic, instance, ttl, elapsed = struct.unpack("!IBBI", body[:10])
        if magic != MAGIC or (self.instance is not None and instance != self.instance):
            self.foreign += 1
            return None
        return ProbeRecord(
            target=header.src,
            ttl=ttl,
            hop=header.src,
            icmp_type=message.msg_type,
            icmp_code=message.code,
            label="echo reply",
            rtt_us=rtt_from(elapsed, now),
            received_at=now,
        )

    def _from_error(
        self, header: ipv6.IPv6Header, message: icmpv6.ICMPv6Message, now: int
    ) -> Optional[ProbeRecord]:
        try:
            decoded = decode_quotation(message.quotation, self.instance)
        except DecodeError:
            self.decode_failures += 1
            return None
        return ProbeRecord(
            target=decoded.target,
            ttl=decoded.ttl,
            hop=header.src,
            icmp_type=message.msg_type,
            icmp_code=message.code,
            label=icmpv6.classify_response(message),
            rtt_us=rtt_from(decoded.elapsed, now),
            received_at=now,
            target_modified=decoded.target_modified,
        )
