"""Probers: Yarrp6 (the paper's contribution) and the sequential /
Doubletree baselines, plus campaign orchestration."""

from .adaptive import AdaptiveConfig, RateController, run_adaptive_yarrp6
from .campaign import (
    CampaignResult,
    run_campaign,
    run_doubletree,
    run_sequential,
    run_yarrp6,
)
from .doubletree import DoubletreeConfig, DoubletreeProber
from .encoding import (
    DEST_PORT,
    MAGIC,
    PAYLOAD_LENGTH,
    DecodeError,
    DecodedProbe,
    decode_quotation,
    encode_probe,
    rtt_from,
)
from .parallel import (
    CampaignSpec,
    ShardFailure,
    merge_results,
    run_parallel,
    run_shard,
    run_single,
    validate_spec,
)
from .supervise import (
    DEFAULT_SUPERVISE,
    DEGRADE_FAIL,
    DEGRADE_SERIAL,
    SuperviseConfig,
    backoff_delay_s,
    validate_supervise,
)
from .permutation import KeyedPermutation, ProbeSchedule
from .mda import MDAConfig, MDAResult, run_mda
from .output import (
    LoadedCampaign,
    dumps,
    load_campaign,
    loads,
    save_campaign,
    write_campaign,
)
from .pmtud import PMTUDConfig, PMTUDResult, discover_pmtu, mtu_census
from .records import ProbeRecord, ResponseProcessor
from .speedtrap import IdSample, Speedtrap, SpeedtrapConfig, run_speedtrap
from .traceroute import SequentialConfig, SequentialProber
from .yarrp6 import Yarrp6, Yarrp6Config

__all__ = [
    "AdaptiveConfig",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_SUPERVISE",
    "DEGRADE_FAIL",
    "DEGRADE_SERIAL",
    "DEST_PORT",
    "DecodeError",
    "DecodedProbe",
    "DoubletreeConfig",
    "DoubletreeProber",
    "IdSample",
    "KeyedPermutation",
    "LoadedCampaign",
    "MDAConfig",
    "MDAResult",
    "MAGIC",
    "PAYLOAD_LENGTH",
    "PMTUDConfig",
    "PMTUDResult",
    "ProbeRecord",
    "ProbeSchedule",
    "RateController",
    "ResponseProcessor",
    "SequentialConfig",
    "SequentialProber",
    "ShardFailure",
    "SuperviseConfig",
    "Speedtrap",
    "SpeedtrapConfig",
    "Yarrp6",
    "Yarrp6Config",
    "backoff_delay_s",
    "decode_quotation",
    "discover_pmtu",
    "dumps",
    "encode_probe",
    "load_campaign",
    "loads",
    "merge_results",
    "rtt_from",
    "mtu_census",
    "run_mda",
    "save_campaign",
    "run_adaptive_yarrp6",
    "run_campaign",
    "run_doubletree",
    "run_parallel",
    "run_sequential",
    "run_shard",
    "run_single",
    "run_speedtrap",
    "validate_spec",
    "validate_supervise",
    "write_campaign",
    "run_yarrp6",
]
