"""Campaign output serialization (the ``.yrp6`` row format).

The real Yarrp decouples probing from analysis by writing one text row
per response; topology construction happens offline over that file.  We
keep the same contract so campaigns can be persisted, shipped, merged,
and re-analyzed without rerunning:

* ``#``-prefixed header lines carry campaign metadata (key: value);
* each data row is tab-separated:
  ``target  received_us  type  code  ttl  hop  rtt_us  flags``
  with addresses in canonical text form and flags ``M`` (target
  modified en route) or ``-``.

Readers are forgiving: unknown header keys are preserved, blank lines
skipped, malformed rows counted and skipped rather than fatal.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from ..addrs import address
from ..packet import icmpv6
from .campaign import CampaignResult
from .records import ProbeRecord

#: Format identifier written as the first header line.
FORMAT_VERSION = "yrp6/1"


class OutputError(ValueError):
    """Raised for unreadable output files."""


def write_records(
    sink: TextIO,
    records: Iterable[ProbeRecord],
    metadata: Optional[Dict[str, str]] = None,
) -> int:
    """Write records as rows; returns the number written."""
    sink.write("# %s\n" % FORMAT_VERSION)
    for key, value in (metadata or {}).items():
        # Keys are interpolated into header lines exactly like values: a
        # newline in either would silently split one header into two.
        if "\n" in str(key):
            raise OutputError("metadata keys must be single-line: %r" % key)
        if "\n" in str(value):
            raise OutputError("metadata values must be single-line: %r" % key)
        sink.write("# %s: %s\n" % (key, value))
    sink.write(
        "# columns: target received_us type code ttl hop rtt_us flags\n"
    )
    count = 0
    for record in records:
        sink.write(
            "%s\t%d\t%d\t%d\t%d\t%s\t%d\t%s\n"
            % (
                address.format_address(record.target),
                record.received_at,
                record.icmp_type,
                record.icmp_code,
                record.ttl,
                address.format_address(record.hop),
                record.rtt_us,
                "M" if record.target_modified else "-",
            )
        )
        count += 1
    return count


def write_campaign(sink: TextIO, result: CampaignResult) -> int:
    """Write a campaign with its standard metadata block."""
    metadata = {
        "name": result.name,
        "vantage": result.vantage,
        "prober": result.prober,
        "pps": "%g" % result.pps,
        "targets": str(result.targets),
        "sent": str(result.sent),
        "duration_us": str(result.duration_us),
    }
    return write_records(sink, result.records, metadata)


class LoadedCampaign:
    """A parsed output file."""

    __slots__ = ("metadata", "records", "skipped_rows")

    def __init__(self, metadata: Dict[str, str], records: List[ProbeRecord], skipped_rows: int) -> None:
        self.metadata = metadata
        self.records = records
        self.skipped_rows = skipped_rows

    @property
    def interfaces(self) -> set:
        """Unique Time Exceeded sources, as everywhere else."""
        return {
            record.hop
            for record in self.records
            if record.icmp_type == icmpv6.TYPE_TIME_EXCEEDED
        }


def _label_for(icmp_type: int, icmp_code: int) -> str:
    message = icmpv6.ICMPv6Message(icmp_type, icmp_code)
    return icmpv6.classify_response(message)


def read_records(source: TextIO) -> LoadedCampaign:
    """Parse an output stream written by :func:`write_records`."""
    first = source.readline()
    if not first.startswith("#") or FORMAT_VERSION not in first:
        raise OutputError("not a %s file" % FORMAT_VERSION)
    metadata: Dict[str, str] = {}
    records: List[ProbeRecord] = []
    skipped = 0
    for line in source:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if ":" in body:
                key, _, value = body.partition(":")
                metadata[key.strip()] = value.strip()
            continue
        fields = line.split("\t")
        if len(fields) != 8:
            skipped += 1
            continue
        try:
            target = address.parse(fields[0])
            received = int(fields[1])
            icmp_type = int(fields[2])
            icmp_code = int(fields[3])
            ttl = int(fields[4])
            hop = address.parse(fields[5])
            rtt = int(fields[6])
            modified = fields[7] == "M"
        except (ValueError, address.AddressError):
            skipped += 1
            continue
        records.append(
            ProbeRecord(
                target=target,
                ttl=ttl,
                hop=hop,
                icmp_type=icmp_type,
                icmp_code=icmp_code,
                label=_label_for(icmp_type, icmp_code),
                rtt_us=rtt,
                received_at=received,
                target_modified=modified,
            )
        )
    return LoadedCampaign(metadata, records, skipped)


def save_campaign(path: str, result: CampaignResult) -> int:
    """Write a campaign to ``path``; returns rows written."""
    with open(path, "w") as sink:
        return write_campaign(sink, result)


def load_campaign(path: str) -> LoadedCampaign:
    """Read a campaign output file from ``path``."""
    with open(path) as source:
        return read_records(source)


def dumps(result: CampaignResult) -> str:
    """Campaign output as a string (for tests and piping)."""
    buffer = io.StringIO()
    write_campaign(buffer, result)
    return buffer.getvalue()


def loads(text: str) -> LoadedCampaign:
    """Parse campaign output from a string."""
    return read_records(io.StringIO(text))
