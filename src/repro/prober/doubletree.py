"""Doubletree baseline (Donnet et al., SIGMETRICS 2005).

Doubletree exploits the tree-like redundancy of traced paths: it starts
probing at an intermediate TTL ``h``, probes *forward* (increasing TTL)
until the destination answers or the path goes quiet, and *backward*
(decreasing TTL) until it sees an interface already present in the local
stop set — the hops near the vantage that every trace shares.

The paper (Section 4.2) observes two deployment problems this module
reproduces:

* the start TTL must be hand-tuned per vantage;
* under ICMPv6 rate limiting, a drained near hop returns nothing, so the
  backward walk never meets its stop condition and *keeps* probing the
  very hops whose token buckets are empty, holding them empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from .encoding import encode_probe
from .records import ProbeRecord, ResponseProcessor


@dataclass
class DoubletreeConfig:
    #: Intermediate start TTL (must be heuristically chosen per vantage).
    start_ttl: int = 8
    max_ttl: int = 16
    protocol: str = "icmp6"
    instance: int = 3
    window: int = 500
    #: Consecutive silent forward hops before abandoning the forward walk.
    gap_limit: int = 3


class _DTState:
    __slots__ = ("target", "forward_alive", "forward_gap", "backward_alive", "terminal")

    def __init__(self, target: int) -> None:
        self.target = target
        self.forward_alive = True
        self.forward_gap = 0
        self.backward_alive = True
        self.terminal = False


class DoubletreeProber:
    """Windowed Doubletree with a shared local stop set."""

    def __init__(
        self,
        source: int,
        targets: Sequence[int],
        config: Optional[DoubletreeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.source = source
        self.targets = list(targets)
        self.config = config or DoubletreeConfig()
        if not self.targets:
            raise ValueError("no targets")
        if not 1 <= self.config.start_ttl <= self.config.max_ttl:
            raise ValueError("start TTL outside probing range")
        self.processor = ResponseProcessor(self.config.instance)
        self.sent = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_sent = registry.counter("prober.sent")
        self._m_responses = registry.counter("prober.responses")
        self._m_ttl_yield = registry.counter_map("prober.ttl_yield")
        #: Local stop set: interfaces seen at any hop by any earlier trace.
        self.stop_set: Set[int] = set()
        #: (hop interface) pairs recorded per (target, ttl) for stop tests.
        self._hop_seen: Dict[Tuple[int, int], int] = {}
        self._traces: Dict[int, _DTState] = {}
        self._emitter = self._emission_order()

    def _emission_order(self) -> Iterator[Tuple[int, int]]:
        config = self.config
        for start in range(0, len(self.targets), config.window):
            block = [
                _DTState(target)
                for target in self.targets[start : start + config.window]
            ]
            for trace in block:
                self._traces[trace.target] = trace
            # Forward waves: start_ttl .. max_ttl.
            for ttl in range(config.start_ttl, config.max_ttl + 1):
                for trace in block:
                    if trace.forward_alive:
                        yield trace.target, ttl
                        self._account_forward(trace, ttl)
            # Backward waves: start_ttl-1 .. 1.  The stop test uses
            # *responses*: silence (e.g. a rate-limited hop) never stops
            # the walk — the pathological behaviour the paper reports.
            for ttl in range(config.start_ttl - 1, 0, -1):
                for trace in block:
                    if trace.backward_alive:
                        yield trace.target, ttl

    def _account_forward(self, trace: _DTState, ttl: int) -> None:
        """Update the forward gap counter using responses so far (waves
        are long relative to RTT, so the previous wave has landed)."""
        previous = (trace.target, ttl - 1)
        if ttl > self.config.start_ttl:
            if previous in self._hop_seen:
                trace.forward_gap = 0
            else:
                trace.forward_gap += 1
                if trace.forward_gap >= self.config.gap_limit:
                    trace.forward_alive = False

    @property
    def exhausted(self) -> bool:
        return self._emitter is None

    def next_probe(self, now: int) -> Optional[bytes]:  # repro-lint: program-root
        if self._emitter is None:
            return None
        try:
            target, ttl = next(self._emitter)
        except StopIteration:
            self._emitter = None
            return None
        self.sent += 1
        self._m_sent.inc()
        return encode_probe(
            self.source,
            target,
            ttl,
            elapsed=now & 0xFFFFFFFF,
            instance=self.config.instance,
            protocol=self.config.protocol,
        )

    def receive(self, data: bytes, now: int) -> Optional[ProbeRecord]:  # repro-lint: program-root
        record = self.processor.process(data, now, self.sent)
        if record is None:
            return None
        self._m_responses.inc()
        if record.is_time_exceeded:
            self._m_ttl_yield.inc(record.ttl)
        trace = self._traces.get(record.target)
        if trace is None:
            return record
        self._hop_seen[(record.target, record.ttl)] = record.hop
        if record.is_terminal:
            trace.terminal = True
            trace.forward_alive = False
        if record.ttl < self.config.start_ttl:
            # Backward walk: stop once a *response* hits the stop set.
            if record.hop in self.stop_set:
                trace.backward_alive = False
        self.stop_set.add(record.hop)
        return record

    @property
    def records(self) -> List[ProbeRecord]:
        return self.processor.records

    @property
    def interfaces(self) -> set:
        return self.processor.interfaces

    def summary(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "received": self.processor.received,
            "interfaces": len(self.processor.interfaces),
            "stop_set": len(self.stop_set),
            "completed_traces": sum(
                1 for trace in self._traces.values() if trace.terminal
            ),
        }
