"""Campaign orchestration: a prober, a vantage, and the internet, run
against the virtual clock at a configured packet rate.

This is the reproduction's equivalent of "run yarrp6 at 1kpps from
EU-NET with the cdn-k32-z64 target list": it paces the prober's
emissions, injects the packets, and delivers responses back after their
simulated round-trip delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..netsim.engine import Engine, pps_interval
from ..netsim.internet import Internet
from ..obs.metrics import (
    DEFAULT_BUCKET_US,
    NULL_REGISTRY,
    MetricDump,
    MetricsRegistry,
)
from ..obs.trace import NULL_TRACER, Tracer
from .doubletree import DoubletreeConfig, DoubletreeProber
from .records import ProbeRecord
from .traceroute import SequentialConfig, SequentialProber
from .yarrp6 import Yarrp6, Yarrp6Config


@dataclass
class CampaignResult:
    """Everything a campaign produced, for the analysis layer."""

    name: str
    vantage: str
    prober: str
    pps: float
    targets: int
    sent: int
    records: List[ProbeRecord]
    interfaces: Set[int]
    curve: List[Tuple[int, int]]
    response_labels: Dict[str, int]
    summary: Dict[str, int]
    duration_us: int
    #: Count of traces issued (targets probed; one "trace" per target in
    #: the paper's accounting, regardless of prober).
    traces: int = 0
    extras: Dict[str, float] = field(default_factory=dict)
    #: Telemetry dump (None unless the campaign ran with a registry).
    metrics: Optional[MetricDump] = None

    @property
    def yield_per_probe(self) -> float:
        """Interface addresses discovered per probe (Table 6's metric)."""
        return len(self.interfaces) / self.sent if self.sent else 0.0


#: Any prober's config object; campaigns dispatch on the prober kind, so
#: the pairing of kind and config type is checked at runtime.
ProberConfig = Union[Yarrp6Config, SequentialConfig, DoubletreeConfig]

Prober = Union[Yarrp6, SequentialProber, DoubletreeProber]


def _make_prober(
    kind: str,
    source: int,
    targets: Sequence[int],
    config: Any,
    metrics: Optional[MetricsRegistry] = None,
) -> Prober:
    if kind == "yarrp6":
        return Yarrp6(source, targets, config, metrics=metrics)
    if kind == "sequential":
        return SequentialProber(source, targets, config, metrics=metrics)
    if kind == "doubletree":
        return DoubletreeProber(source, targets, config, metrics=metrics)
    raise ValueError("unknown prober kind %r" % kind)


def run_campaign(  # repro-lint: program-root
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    prober: str = "yarrp6",
    pps: float = 1000.0,
    config: Optional[ProberConfig] = None,
    name: Optional[str] = None,
    engine: Optional[Engine] = None,
    reset: bool = True,
    pace_offset_us: int = 0,
    pace_stride: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    metrics_bucket_us: int = DEFAULT_BUCKET_US,
) -> CampaignResult:
    """Run one probing campaign to completion in virtual time.

    ``reset`` refills every router's rate limiter first, isolating the
    campaign from earlier trials (the paper ran trials on separate days).

    ``pace_offset_us``/``pace_stride`` interleave this instance with
    cooperating shard instances on the virtual clock: the first emission
    happens at ``pace_offset_us`` and subsequent ones every ``pace_stride``
    probe intervals.  Shard ``s`` of ``N`` run with offset ``s * interval``
    and stride ``N`` occupies exactly the emission slots the single-process
    walk would give its permutation positions, which is what makes the
    parallel runner's merge bit-for-bit faithful (see ``prober.parallel``).

    ``metrics`` turns on telemetry: engine/prober/rate-limiter instruments
    plus the per-virtual-bucket ``campaign.sent`` and ``campaign.discovery``
    series (the Figure 7 inputs), all dumped into the result's ``metrics``
    field.  ``tracer`` records nested virtual-time spans (campaign → tick →
    emit/probe → limiter decisions).  Both default to shared no-ops and
    never alter the campaign's event stream: the probe bytes, records, and
    interfaces are bit-identical with telemetry on or off.
    """
    if pace_stride < 1:
        raise ValueError("pace_stride must be >= 1: %r" % pace_stride)
    if pace_offset_us < 0:
        raise ValueError("negative pace_offset_us: %r" % pace_offset_us)
    if reset:
        internet.reset_dynamics()
    registry = metrics if metrics is not None else NULL_REGISTRY
    trace = tracer if tracer is not None else NULL_TRACER
    engine = engine or Engine(metrics=metrics)
    trace.bind_clock(lambda: engine.now)
    vantage = internet.vantage(vantage_name)
    machine = _make_prober(prober, vantage.address, targets, config, registry)
    interval = pps_interval(pps) * pace_stride

    sent_series = registry.series("campaign.sent", metrics_bucket_us)
    discovery_series = registry.series("campaign.discovery", metrics_bucket_us)
    # Novel-interface tracking costs a set lookup per response; skip it
    # entirely when nobody is listening.
    track_discovery = registry.enabled
    discovered: Set[int] = set()

    def deliver(data: bytes) -> None:
        with trace.span("receive"):
            record = machine.receive(data, engine.now)
        if (
            track_discovery
            and record is not None
            and record.is_time_exceeded
            and record.hop not in discovered
        ):
            discovered.add(record.hop)
            discovery_series.record(engine.now)

    def tick() -> None:
        with trace.span("tick"):
            with trace.span("emit"):
                packet = machine.next_probe(engine.now)
            if packet is None:
                if not machine.exhausted:
                    # Neighborhood skipping may momentarily starve emission.
                    engine.schedule(interval, tick)
                return
            sent_series.record(engine.now)
            with trace.span("probe"):
                response = internet.probe(packet, engine.now)
            if response is not None:
                data = response.data
                engine.schedule(response.delay_us, lambda data=data: deliver(data))
            if not machine.exhausted:
                # Probers that exhaust on their final emission (Yarrp6) end the
                # campaign here, so duration is the last emission or response —
                # never an empty trailing tick, whose time would depend on the
                # pacing stride rather than on the probe stream itself.
                engine.schedule(interval, tick)

    if registry.enabled:
        internet.attach_metrics(registry, metrics_bucket_us)
    if trace.enabled:
        internet.tracer = trace
    try:
        with trace.span("campaign", vantage=vantage_name, prober=prober):
            engine.schedule(pace_offset_us, tick)
            engine.run()
    finally:
        if trace.enabled:
            internet.tracer = NULL_TRACER
        if registry.enabled:
            internet.detach_metrics()

    processor = machine.processor
    return CampaignResult(
        name=name or "%s/%s" % (vantage_name, prober),
        vantage=vantage_name,
        prober=prober,
        pps=pps,
        targets=len(targets),
        sent=machine.sent,
        records=processor.records,
        interfaces=set(processor.interfaces),
        curve=list(processor.curve),
        response_labels=dict(processor.response_labels),
        summary=machine.summary(),
        duration_us=engine.now,
        traces=len(targets),
        metrics=registry.to_dict() if registry.enabled else None,
    )


def run_yarrp6(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    pps: float = 1000.0,
    config: Optional[Yarrp6Config] = None,
    name: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **config_kwargs: Any,
) -> CampaignResult:
    """Convenience wrapper: Yarrp6 campaign with config keywords."""
    if config is None and config_kwargs:
        config = Yarrp6Config(**config_kwargs)
    return run_campaign(
        internet, vantage_name, targets, "yarrp6", pps, config, name=name,
        metrics=metrics, tracer=tracer,
    )


def run_sequential(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    pps: float = 1000.0,
    config: Optional[SequentialConfig] = None,
    name: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **config_kwargs: Any,
) -> CampaignResult:
    """Convenience wrapper: sequential (scamper-like) campaign."""
    if config is None and config_kwargs:
        config = SequentialConfig(**config_kwargs)
    return run_campaign(
        internet, vantage_name, targets, "sequential", pps, config, name=name,
        metrics=metrics, tracer=tracer,
    )


def run_doubletree(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    pps: float = 1000.0,
    config: Optional[DoubletreeConfig] = None,
    name: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **config_kwargs: Any,
) -> CampaignResult:
    """Convenience wrapper: Doubletree campaign."""
    if config is None and config_kwargs:
        config = DoubletreeConfig(**config_kwargs)
    return run_campaign(
        internet, vantage_name, targets, "doubletree", pps, config, name=name,
        metrics=metrics, tracer=tracer,
    )
