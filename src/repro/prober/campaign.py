"""Campaign orchestration: a prober, a vantage, and the internet, run
against the virtual clock at a configured packet rate.

This is the reproduction's equivalent of "run yarrp6 at 1kpps from
EU-NET with the cdn-k32-z64 target list": it paces the prober's
emissions, injects the packets, and delivers responses back after their
simulated round-trip delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..netsim.engine import Engine, pps_interval
from ..netsim.internet import Internet
from ..obs.metrics import (
    DEFAULT_BUCKET_US,
    NULL_REGISTRY,
    MetricDump,
    MetricsRegistry,
)
from ..obs.profiler import NULL_AGG, NULL_PROFILER, WallProfiler
from ..obs.trace import NULL_TRACER, Tracer
from .doubletree import DoubletreeConfig, DoubletreeProber
from .records import ProbeRecord
from .traceroute import SequentialConfig, SequentialProber
from .yarrp6 import Yarrp6, Yarrp6Config


@dataclass
class CampaignResult:
    """Everything a campaign produced, for the analysis layer."""

    name: str
    vantage: str
    prober: str
    pps: float
    targets: int
    sent: int
    records: List[ProbeRecord]
    interfaces: Set[int]
    curve: List[Tuple[int, int]]
    response_labels: Dict[str, int]
    summary: Dict[str, int]
    duration_us: int
    #: Count of traces issued (targets probed; one "trace" per target in
    #: the paper's accounting, regardless of prober).
    traces: int = 0
    extras: Dict[str, float] = field(default_factory=dict)
    #: Telemetry dump (None unless the campaign ran with a registry).
    metrics: Optional[MetricDump] = None
    #: Exported wall-clock profile (None unless the run was profiled).
    #: Host-dependent reporting data: never serialized into ``.yrp6``
    #: output, never merged into metrics, never read by simulation code.
    wall_profile: Optional[Dict[str, Any]] = None
    #: Supervision report (:meth:`repro.obs.failures.FailureReport.
    #: to_dict`), attached by :func:`~repro.prober.parallel.run_parallel`.
    #: Host-dependent like ``wall_profile`` — what the host did to the
    #: workers, not what the campaign measured: never serialized into
    #: ``.yrp6`` output, never merged into metrics, never read back by
    #: simulation code.
    failures: Optional[Dict[str, Any]] = None

    @property
    def yield_per_probe(self) -> float:
        """Interface addresses discovered per probe (Table 6's metric)."""
        return len(self.interfaces) / self.sent if self.sent else 0.0


#: Any prober's config object; campaigns dispatch on the prober kind, so
#: the pairing of kind and config type is checked at runtime.
ProberConfig = Union[Yarrp6Config, SequentialConfig, DoubletreeConfig]

Prober = Union[Yarrp6, SequentialProber, DoubletreeProber]

#: Emissions crafted per engine event on the columnar fast path.  Large
#: enough to amortize permutation/encode dispatch, small enough that the
#: response backlog stays modest.
DEFAULT_BATCH = 256


def _noop() -> None:
    """Clock-advance sentinel for the batched loop's final emission."""


def _make_prober(
    kind: str,
    source: int,
    targets: Sequence[int],
    config: Any,
    metrics: Optional[MetricsRegistry] = None,
) -> Prober:
    if kind == "yarrp6":
        return Yarrp6(source, targets, config, metrics=metrics)
    if kind == "sequential":
        return SequentialProber(source, targets, config, metrics=metrics)
    if kind == "doubletree":
        return DoubletreeProber(source, targets, config, metrics=metrics)
    raise ValueError("unknown prober kind %r" % kind)


def run_campaign(  # repro-lint: program-root
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    prober: str = "yarrp6",
    pps: float = 1000.0,
    config: Optional[ProberConfig] = None,
    name: Optional[str] = None,
    engine: Optional[Engine] = None,
    reset: bool = True,
    pace_offset_us: int = 0,
    pace_stride: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    metrics_bucket_us: int = DEFAULT_BUCKET_US,
    batch: Optional[int] = None,
    profiler: Optional[WallProfiler] = None,
) -> CampaignResult:
    """Run one probing campaign to completion in virtual time.

    ``reset`` refills every router's rate limiter first, isolating the
    campaign from earlier trials (the paper ran trials on separate days).

    ``pace_offset_us``/``pace_stride`` interleave this instance with
    cooperating shard instances on the virtual clock: the first emission
    happens at ``pace_offset_us`` and subsequent ones every ``pace_stride``
    probe intervals.  Shard ``s`` of ``N`` run with offset ``s * interval``
    and stride ``N`` occupies exactly the emission slots the single-process
    walk would give its permutation positions, which is what makes the
    parallel runner's merge bit-for-bit faithful (see ``prober.parallel``).

    ``metrics`` turns on telemetry: engine/prober/rate-limiter instruments
    plus the per-virtual-bucket ``campaign.sent`` and ``campaign.discovery``
    series (the Figure 7 inputs), all dumped into the result's ``metrics``
    field.  ``tracer`` records nested virtual-time spans (campaign → tick →
    emit/probe → limiter decisions).  Both default to shared no-ops and
    never alter the campaign's event stream: the probe bytes, records, and
    interfaces are bit-identical with telemetry on or off.

    ``batch`` sizes the **columnar fast path**: when the prober is a
    Yarrp6 pure walk (no fill, no neighborhood skipping) and no tracer is
    attached, the campaign crafts ``batch`` probes per engine event
    through the batched pull loop (:meth:`Yarrp6.next_probes`) instead of
    one per tick, reconstructing each response's probes-sent count
    analytically from the pacing arithmetic.  The dump, records, curve,
    interfaces, summary and duration are byte-identical to the per-event
    path — pinned by ``tests/prober/test_batched_equivalence.py``.
    ``batch=0`` forces the per-event reference path; ``None`` means
    :data:`DEFAULT_BATCH`.

    ``profiler`` attributes *host* time to ``campaign.setup`` /
    ``campaign.run`` phases, with per-block aggregates (``emit.craft``,
    ``emit.inject``, ``recv.deliver``) on the columnar path.  Wall-clock
    reporting only: it never selects a code path, so the probe bytes and
    records stay bit-identical with profiling on or off (unlike
    ``tracer``, it does not disable the columnar fast path).
    """
    if pace_stride < 1:
        raise ValueError("pace_stride must be >= 1: %r" % pace_stride)
    if pace_offset_us < 0:
        raise ValueError("negative pace_offset_us: %r" % pace_offset_us)
    if batch is None:
        batch = DEFAULT_BATCH
    if batch < 0:
        raise ValueError("negative batch: %r" % batch)
    prof = profiler if profiler is not None else NULL_PROFILER
    with prof.phase("campaign.setup", prober=prober):
        if reset:
            internet.reset_dynamics()
        registry = metrics if metrics is not None else NULL_REGISTRY
        trace = tracer if tracer is not None else NULL_TRACER
        engine = engine or Engine(metrics=metrics)
        trace.bind_clock(lambda: engine.now)
        vantage = internet.vantage(vantage_name)
        machine = _make_prober(prober, vantage.address, targets, config, registry)
        interval = pps_interval(pps) * pace_stride

        sent_series = registry.series("campaign.sent", metrics_bucket_us)
        discovery_series = registry.series("campaign.discovery", metrics_bucket_us)
    # Novel-interface tracking costs a set lookup per response; skip it
    # entirely when nobody is listening.
    track_discovery = registry.enabled
    discovered: Set[int] = set()
    # Hot-path aggregate handles for the columnar loop below.  Rebound
    # to live aggregates under the open ``campaign.run`` phase when
    # profiling is on; the closures see the rebinding through their
    # cells, and the shared no-op costs two calls per block otherwise.
    prof_craft = prof_inject = prof_deliver = NULL_AGG

    def note_discovery(record: Optional[ProbeRecord]) -> None:
        if (
            track_discovery
            and record is not None
            and record.is_time_exceeded
            and record.hop not in discovered
        ):
            discovered.add(record.hop)
            discovery_series.record(engine.now)

    def deliver(data: bytes) -> None:
        with trace.span("receive"):
            record = machine.receive(data, engine.now)
        note_discovery(record)

    def tick() -> None:
        with trace.span("tick"):
            with trace.span("emit"):
                packet = machine.next_probe(engine.now)
            if packet is None:
                if not machine.exhausted:
                    # Neighborhood skipping may momentarily starve emission.
                    engine.schedule(interval, tick)
                return
            sent_series.record(engine.now)
            with trace.span("probe"):
                response = internet.probe(packet, engine.now)
            if response is not None:
                data = response.data
                engine.schedule(response.delay_us, lambda data=data: deliver(data))
            if not machine.exhausted:
                # Probers that exhaust on their final emission (Yarrp6) end the
                # campaign here, so duration is the last emission or response —
                # never an empty trailing tick, whose time would depend on the
                # pacing stride rather than on the probe stream itself.
                engine.schedule(interval, tick)

    # -- columnar fast path ---------------------------------------------
    # One engine event per *block* of emissions instead of one per probe:
    # the pull loop crafts a whole block into a preallocated buffer, the
    # internet sees probes at their exact logical send times (in emission
    # order, so limiter and loss draws replay identically), and responses
    # are scheduled at the same absolute virtual times with the same
    # relative ordering the per-event loop produces.  Valid only for pure
    # walks, where every emission time is known in advance.
    kickoff = tick
    if (
        batch > 0
        and isinstance(machine, Yarrp6)
        and machine.pure_walk
        and not trace.enabled
    ):
        walker = machine
        total_walk = len(walker.schedule)

        def sent_at(when: int, rtt_us: int) -> int:
            """Probes emitted when a response arriving at ``when`` is
            processed — the per-event loop's live counter, reconstructed
            from the pacing arithmetic.  Emission k happens at
            ``pace_offset_us + k*interval``; one exactly at ``when`` is
            processed first only when its round trip was shorter than one
            interval (its delivery was scheduled *after* that emission's
            tick; see ``prober.parallel._global_sent_at``)."""
            delta = when - pace_offset_us
            if delta < 0:
                return 0
            quotient, remainder = divmod(delta, interval)
            if remainder:
                count = quotient + 1
            else:
                count = quotient + (1 if rtt_us < interval else 0)
            return count if count < total_walk else total_walk

        def deliver_batched(data: bytes, send_time: int) -> None:  # repro-lint: hot-loop
            with prof_deliver:
                now = engine.now
                record = walker.receive(
                    data, now, sent=sent_at(now, now - send_time)
                )
                note_discovery(record)

        def block_tick() -> None:  # repro-lint: hot-loop
            start = engine.now
            count = min(batch, total_walk - walker.sent)
            with prof_craft:
                # An arithmetic progression, not a materialized list:
                # zero per-block allocation (PERF101) and next_probes
                # only ever indexes it.  interval >= 1 (pps_interval).
                times = range(start, start + count * interval, interval)
                emissions = walker.next_probes(times)
            with prof_inject:
                for when, packet in emissions:
                    sent_series.record(when)
                    response = internet.probe(packet, when)
                    if response is not None:
                        engine.schedule_at(
                            when + response.delay_us,
                            lambda data=response.data, sent=when: deliver_batched(
                                data, sent
                            ),
                        )
            if walker.sent < total_walk:
                engine.schedule_at(start + count * interval, block_tick)
            elif emissions and emissions[-1][0] > engine.now:
                # Land the clock on the final emission, as the per-event
                # loop's last tick does (duration invariant).
                engine.schedule_at(emissions[-1][0], _noop)

        kickoff = block_tick

    if registry.enabled:
        internet.attach_metrics(registry, metrics_bucket_us)
    if trace.enabled:
        internet.tracer = trace
    try:
        with prof.phase("campaign.run", prober=prober):
            if prof.enabled and kickoff is not tick:
                # Bound here — inside the open campaign.run phase — so
                # the per-block aggregates nest under it.
                prof_craft = prof.agg("emit.craft")
                prof_inject = prof.agg("emit.inject")
                prof_deliver = prof.agg("recv.deliver")
            with trace.span("campaign", vantage=vantage_name, prober=prober):
                engine.schedule(pace_offset_us, kickoff)
                engine.run()
    finally:
        if trace.enabled:
            internet.tracer = NULL_TRACER
        if registry.enabled:
            internet.detach_metrics()

    processor = machine.processor
    return CampaignResult(
        name=name or "%s/%s" % (vantage_name, prober),
        vantage=vantage_name,
        prober=prober,
        pps=pps,
        targets=len(targets),
        sent=machine.sent,
        records=processor.records,
        interfaces=set(processor.interfaces),
        curve=list(processor.curve),
        response_labels=dict(processor.response_labels),
        summary=machine.summary(),
        duration_us=engine.now,
        traces=len(targets),
        metrics=registry.to_dict() if registry.enabled else None,
    )


def run_yarrp6(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    pps: float = 1000.0,
    config: Optional[Yarrp6Config] = None,
    name: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    profiler: Optional[WallProfiler] = None,
    **config_kwargs: Any,
) -> CampaignResult:
    """Convenience wrapper: Yarrp6 campaign with config keywords."""
    if config is None and config_kwargs:
        config = Yarrp6Config(**config_kwargs)
    return run_campaign(
        internet, vantage_name, targets, "yarrp6", pps, config, name=name,
        metrics=metrics, tracer=tracer, profiler=profiler,
    )


def run_sequential(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    pps: float = 1000.0,
    config: Optional[SequentialConfig] = None,
    name: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    profiler: Optional[WallProfiler] = None,
    **config_kwargs: Any,
) -> CampaignResult:
    """Convenience wrapper: sequential (scamper-like) campaign."""
    if config is None and config_kwargs:
        config = SequentialConfig(**config_kwargs)
    return run_campaign(
        internet, vantage_name, targets, "sequential", pps, config, name=name,
        metrics=metrics, tracer=tracer, profiler=profiler,
    )


def run_doubletree(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    pps: float = 1000.0,
    config: Optional[DoubletreeConfig] = None,
    name: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    profiler: Optional[WallProfiler] = None,
    **config_kwargs: Any,
) -> CampaignResult:
    """Convenience wrapper: Doubletree campaign."""
    if config is None and config_kwargs:
        config = DoubletreeConfig(**config_kwargs)
    return run_campaign(
        internet, vantage_name, targets, "doubletree", pps, config, name=name,
        metrics=metrics, tracer=tracer, profiler=profiler,
    )
