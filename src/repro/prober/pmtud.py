"""Path MTU discovery over the simulated internet.

Transition mechanisms riddle the IPv6 Internet with sub-1500 tunnels
(6to4 relays run at the 1280 floor; 6in4 links at 1480), and the paper's
hitlists carry visible 6to4 populations (Table 5).  Classic PMTUD
(RFC 8201) maps those bottlenecks: send a full-size probe, read the MTU
from the Packet Too Big reply, retry at that size, repeat until the
destination (or its LAN) answers.

Results annotate targets with their path MTU — a topology attribute the
interface-discovery pipeline doesn't capture, and a direct tell for
tunneled paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.engine import Engine, pps_interval
from ..netsim.internet import Internet
from ..packet import icmpv6, ipv6
from ..packet.checksum import address_checksum
from ..packet.ipv6 import PROTO_ICMPV6, IPv6Header


@dataclass
class PMTUDConfig:
    start_mtu: int = 1500
    #: RFC 8200: no IPv6 link may have an MTU below this.
    floor: int = 1280
    max_rounds: int = 8
    pps: float = 1000.0


class PMTUDResult:
    """Per-target discovery outcome."""

    __slots__ = ("path_mtu", "bottleneck_hop", "rounds", "confirmed")

    def __init__(self) -> None:
        #: Largest size known to traverse the path (None: nothing did).
        self.path_mtu: Optional[int] = None
        #: Source address of the last Packet Too Big, if any.
        self.bottleneck_hop: Optional[int] = None
        self.rounds = 0
        #: True when the destination answered at ``path_mtu``.
        self.confirmed = False


def _padded_probe(source: int, target: int, size: int) -> bytes:
    """An Echo Request padded so the whole IPv6 packet is ``size`` bytes."""
    padding = max(0, size - 40 - 8)
    echo = icmpv6.echo_request(address_checksum(target), 0, b"\x00" * padding)
    return ipv6.build_packet(
        IPv6Header(source, target, 0, PROTO_ICMPV6, hop_limit=64),
        echo.pack(source, target),
    )


def discover_pmtu(
    internet: Internet,
    vantage_name: str,
    targets: Sequence[int],
    config: Optional[PMTUDConfig] = None,
) -> Dict[int, PMTUDResult]:
    """Run PMTUD toward every target; returns per-target results.

    Driven synchronously per round (each round's replies inform the next
    round's sizes), paced at ``config.pps`` within a round.
    """
    config = config or PMTUDConfig()
    vantage = internet.vantage(vantage_name)
    engine = Engine()
    interval = pps_interval(config.pps)

    results: Dict[int, PMTUDResult] = {target: PMTUDResult() for target in targets}
    sizes: Dict[int, int] = {target: config.start_mtu for target in targets}
    live = set(targets)

    for _ in range(config.max_rounds):
        if not live:
            break
        replies: Dict[int, Tuple[str, int, int]] = {}

        def send(target: int) -> None:
            packet = _padded_probe(vantage.address, target, sizes[target])
            response = internet.probe(packet, engine.now)
            if response is None:
                return
            data = response.data

            def deliver(target: int = target, data: bytes = data) -> None:
                try:
                    header, payload = ipv6.split_packet(data)
                    message = icmpv6.ICMPv6Message.unpack(payload)
                except ipv6.PacketError:
                    return
                if message.msg_type == icmpv6.TYPE_PACKET_TOO_BIG:
                    replies[target] = ("ptb", message.word, header.src)
                elif message.is_echo_reply:
                    replies[target] = ("reply", 0, header.src)
                elif message.is_error:
                    # Unreachable et al.: the *packet size* traversed the
                    # path as far as it goes; treat as terminal.
                    replies[target] = ("error", 0, header.src)

            engine.schedule(response.delay_us, deliver)

        when = engine.now
        for target in sorted(live):
            engine.schedule_at(when, lambda target=target: send(target))
            when += interval
        engine.run()

        for target in sorted(live):
            result = results[target]
            result.rounds += 1
            outcome = replies.get(target)
            if outcome is None:
                # Silence: can't distinguish loss from a black hole here;
                # retry at the floor once, then give up.
                if sizes[target] > config.floor:
                    sizes[target] = config.floor
                else:
                    live.discard(target)
                continue
            kind, mtu, hop = outcome
            if kind == "ptb":
                result.bottleneck_hop = hop
                next_size = max(config.floor, min(mtu, sizes[target] - 1))
                if next_size >= sizes[target]:
                    live.discard(target)  # inconsistent PTB; stop
                else:
                    sizes[target] = next_size
            else:
                result.path_mtu = sizes[target]
                result.confirmed = kind == "reply"
                live.discard(target)
    return results


def mtu_census(results: Dict[int, PMTUDResult]) -> Dict[int, int]:
    """Histogram of confirmed path MTUs."""
    census: Dict[int, int] = {}
    for result in results.values():
        if result.path_mtu is not None:
            census[result.path_mtu] = census.get(result.path_mtu, 0) + 1
    return census
