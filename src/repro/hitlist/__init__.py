"""Target generation: seeds → prefix transformation → synthesis (Fig. 1)."""

from .dealias import (
    DealiasConfig,
    candidate_prefixes,
    detect_aliased,
    filter_hitlist,
)
from .entropy import EntropyModel, Segment, nybble_entropy, segment, structure_summary
from .kip import KIPParams, coverage, kip_aggregate, kn_transform
from .pipeline import TargetSet, build_suite, combine, make_targets
from .sixgen import SixGenConfig, cluster_densities, generate
from .synthesis import fixediid, known, lowbyte1, random_iid, synthesize, with_iid
from .transform import as_prefix, expand_short_prefixes, zn

__all__ = [
    "DealiasConfig",
    "EntropyModel",
    "KIPParams",
    "Segment",
    "SixGenConfig",
    "TargetSet",
    "as_prefix",
    "build_suite",
    "candidate_prefixes",
    "cluster_densities",
    "combine",
    "coverage",
    "detect_aliased",
    "filter_hitlist",
    "expand_short_prefixes",
    "fixediid",
    "generate",
    "kip_aggregate",
    "kn_transform",
    "known",
    "lowbyte1",
    "make_targets",
    "nybble_entropy",
    "random_iid",
    "segment",
    "structure_summary",
    "synthesize",
    "with_iid",
    "zn",
]
