"""Target synthesis (Section 3.1, step 3): intermediate prefixes → target
addresses, by choice of interface identifier."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..addrs.address import FIXED_IID, IID_MASK, LOWBYTE1_IID
from ..addrs.prefix import Prefix


def lowbyte1(prefixes: Iterable[Prefix]) -> List[int]:
    """Bitwise-OR each prefix base with the ``::1`` IID (the strategy
    production systems like CAIDA Ark and RIPE Atlas use)."""
    return _synthesize(prefixes, LOWBYTE1_IID)


def fixediid(prefixes: Iterable[Prefix]) -> List[int]:
    """Bitwise-OR each prefix base with the fixed pseudo-random IID
    ``:1234:5678:1234:5678`` — unlikely to hit an active host, which is
    what the paper chooses for its campaigns (Sections 3.3, 4.3)."""
    return _synthesize(prefixes, FIXED_IID)


def with_iid(prefixes: Iterable[Prefix], iid: int) -> List[int]:
    """Synthesis with an arbitrary caller-chosen IID."""
    return _synthesize(prefixes, iid & IID_MASK)


def random_iid(prefixes: Iterable[Prefix], seed: int = 0) -> List[int]:
    """A fresh random IID per prefix (one of Section 3.3's candidates)."""
    rng = random.Random(seed)
    seen = set()
    result = []
    for prefix in prefixes:
        addr = prefix.base | (rng.getrandbits(64) or 1)
        if addr not in seen:
            seen.add(addr)
            result.append(addr)
    return result


def known(
    prefixes: Iterable[Prefix], seed_addresses: Sequence[int]
) -> List[int]:
    """Pick a known seed address within each prefix when one exists, else
    fall back to ``::1`` (the Fiebig "known address" trial of Table 4)."""
    ordered = sorted(set(seed_addresses))
    seen = set()
    result = []
    from bisect import bisect_left

    for prefix in prefixes:
        index = bisect_left(ordered, prefix.base)
        if index < len(ordered) and prefix.contains(ordered[index]):
            addr = ordered[index]
        else:
            addr = prefix.base | LOWBYTE1_IID
        if addr not in seen:
            seen.add(addr)
            result.append(addr)
    return result


def _synthesize(prefixes: Iterable[Prefix], iid: int) -> List[int]:
    seen = set()
    result = []
    for prefix in prefixes:
        addr = prefix.base | iid
        if addr not in seen:
            seen.add(addr)
            result.append(addr)
    return result


#: Synthesis method registry, keyed by the paper's names.
METHODS = {
    "lowbyte1": lowbyte1,
    "fixediid": fixediid,
}


def synthesize(
    prefixes: Iterable[Prefix],
    method: str,
    seed_addresses: Optional[Sequence[int]] = None,
) -> List[int]:
    """Dispatch by method name: lowbyte1 | fixediid | random | known."""
    if method in METHODS:
        return METHODS[method](prefixes)
    if method == "random":
        return random_iid(prefixes)
    if method == "known":
        return known(prefixes, seed_addresses or [])
    raise ValueError("unknown synthesis method %r" % method)
