"""Aliased-prefix detection (Gasser et al., IMC 2018 — cited in §2).

Some prefixes answer for *every* address — CDN front-ends, middleboxes,
honeypots.  A hitlist that doesn't remove them "discovers" unbounded
phantom hosts and wastes probes; Gasser et al.'s unbiased hitlist work
filters them by probing several pseudorandom IIDs per candidate /64 and
declaring the prefix aliased when all respond.

:func:`detect_aliased` runs that test through the packet-level
simulator; :func:`filter_hitlist` removes covered items from a seed or
target list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..addrs.prefix import Prefix
from ..addrs.trie import PrefixTrie
from ..netsim.engine import Engine, pps_interval
from ..netsim.internet import Internet
from ..packet import icmpv6, ipv6
from ..packet.ipv6 import PROTO_ICMPV6, IPv6Header
from .transform import SeedItem, as_prefix


@dataclass
class DealiasConfig:
    """Detection parameters (Gasser et al. use 16 probes per prefix)."""

    probes_per_prefix: int = 16
    pps: float = 2000.0
    #: Declare aliased when at least this fraction of random IIDs answer.
    threshold: float = 1.0
    seed: int = 0xA11A5


def detect_aliased(
    internet: Internet,
    vantage_name: str,
    prefixes: Sequence[Prefix],
    config: DealiasConfig = DealiasConfig(),
) -> Set[Prefix]:
    """Return the subset of /64 ``prefixes`` that are aliased.

    Each prefix receives ``probes_per_prefix`` Echo Requests at fresh
    pseudorandom IIDs; a genuine LAN leaves random IIDs unanswered, an
    aliased prefix answers them all.
    """
    rng = random.Random(config.seed)
    vantage = internet.vantage(vantage_name)
    engine = Engine()
    interval = pps_interval(config.pps)
    answered: Dict[Prefix, int] = {prefix: 0 for prefix in prefixes}

    def deliver(prefix: Prefix, data: bytes) -> None:
        try:
            header, payload = ipv6.split_packet(data)
            message = icmpv6.ICMPv6Message.unpack(payload)
        except ipv6.PacketError:
            return
        if message.is_echo_reply:
            answered[prefix] += 1

    when = 0
    for prefix in prefixes:
        if prefix.length != 64:
            raise ValueError("aliased-prefix detection probes /64s, got %s" % prefix)
        for index in range(config.probes_per_prefix):
            target = prefix.base | (rng.getrandbits(64) or 1)

            def send(prefix=prefix, target=target, index=index) -> None:
                echo = icmpv6.echo_request(index + 1, index, b"dealias")
                packet = ipv6.build_packet(
                    IPv6Header(vantage.address, target, 0, PROTO_ICMPV6, hop_limit=64),
                    echo.pack(vantage.address, target),
                )
                response = internet.probe(packet, engine.now)
                if response is not None:
                    data = response.data
                    engine.schedule(
                        response.delay_us, lambda: deliver(prefix, data)
                    )

            engine.schedule_at(when, send)
            when += interval
    engine.run()

    needed = config.threshold * config.probes_per_prefix
    return {prefix for prefix, count in answered.items() if count >= needed}


def filter_hitlist(
    items: Iterable[SeedItem], aliased: Iterable[Prefix]
) -> Tuple[List[SeedItem], int]:
    """Drop hitlist items covered by aliased prefixes.

    Returns (kept items, removed count).
    """
    trie: PrefixTrie = PrefixTrie()
    for prefix in aliased:
        trie.insert(prefix, True)
    kept: List[SeedItem] = []
    removed = 0
    for item in items:
        prefix = as_prefix(item)
        if trie.covers(prefix.base):
            removed += 1
        else:
            kept.append(item)
    return kept, removed


def candidate_prefixes(items: Iterable[SeedItem]) -> List[Prefix]:
    """The unique /64s a hitlist touches — the detection candidates."""
    seen: Set[Prefix] = set()
    for item in items:
        prefix = as_prefix(item)
        base64 = Prefix(prefix.base, 64) if prefix.length >= 64 else None
        if base64 is not None:
            seen.add(base64)
    return sorted(seen)
