"""6Gen-style target generation (Murdock et al., IMC 2017).

6Gen exploits address locality: known-active seeds cluster, and new
active addresses are likelier near dense clusters.  The algorithm grows
per-nybble *ranges* around seed clusters and enumerates candidate
addresses from the densest ranges, in one of two modes:

* **tight** clustering — each nybble position takes the contiguous
  [min, max] span of values observed at that position in the cluster;
* **loose** clustering — each nybble position takes exactly the *set* of
  observed values (a wildcard-like "any seen value here").

This is a faithful-in-spirit reimplementation scaled for simulation: we
cluster seeds at a configurable prefix granularity, grow ranges per
cluster, rank clusters by seed density, and enumerate up to a budget.
The paper feeds 6Gen with CAIDA probing results and probes the output in
loose mode.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Nybbles in an IPv6 address.
_NYBBLES = 32


@dataclass(frozen=True)
class SixGenConfig:
    """Generation parameters."""

    #: "loose" (observed value sets) or "tight" (contiguous spans).
    mode: str = "loose"
    #: Prefix granularity (bits) at which seeds are grouped into clusters.
    cluster_bits: int = 48
    #: Minimum seeds for a cluster to participate.
    min_cluster_size: int = 2
    #: Total generation budget (addresses across all clusters).
    budget: int = 100_000
    #: Per-cluster cap, keeping one huge cluster from eating the budget.
    per_cluster_cap: int = 4_096
    #: RNG seed for sampling inside over-large ranges.
    seed: int = 6

    def __post_init__(self):
        if self.mode not in ("loose", "tight"):
            raise ValueError("mode must be 'loose' or 'tight'")
        if not 0 < self.cluster_bits <= 128 or self.cluster_bits % 4:
            raise ValueError("cluster_bits must be a positive multiple of 4 <= 128")


def _nybbles(value: int) -> Tuple[int, ...]:
    return tuple((value >> shift) & 0xF for shift in range(124, -4, -4))


def _from_nybbles(nybbles: Sequence[int]) -> int:
    value = 0
    for nybble in nybbles:
        value = (value << 4) | nybble
    return value


class NybbleRange:
    """A per-position value range grown from a seed cluster."""

    __slots__ = ("choices",)

    def __init__(self, seeds: Sequence[int], mode: str):
        columns = list(zip(*[_nybbles(seed) for seed in seeds]))
        self.choices: List[Tuple[int, ...]] = []
        for column in columns:
            observed = sorted(set(column))
            if mode == "tight" and len(observed) > 1:
                observed = list(range(observed[0], observed[-1] + 1))
            self.choices.append(tuple(observed))

    @property
    def size(self) -> int:
        """Number of addresses the range denotes."""
        total = 1
        for choice in self.choices:
            total *= len(choice)
            if total > 1 << 62:
                return 1 << 62
        return total

    def enumerate(self, limit: int, rng: random.Random) -> List[int]:
        """Up to ``limit`` addresses from the range; exhaustive when the
        range is small, uniformly sampled otherwise."""
        if self.size <= limit:
            return [
                _from_nybbles(combo)
                for combo in itertools.product(*self.choices)
            ]
        result: Set[int] = set()
        attempts = 0
        while len(result) < limit and attempts < limit * 4:
            combo = [rng.choice(choice) for choice in self.choices]
            result.add(_from_nybbles(combo))
            attempts += 1
        return sorted(result)


def generate(seeds: Iterable[int], config: SixGenConfig = SixGenConfig()) -> List[int]:
    """Generate candidate target addresses from seed addresses.

    Clusters are ranked by seed count (densest first); generation stops at
    ``config.budget``.  Original seeds are always included in the output
    (6Gen's output contains its inputs).
    """
    rng = random.Random(config.seed)
    shift = 128 - config.cluster_bits
    clusters: Dict[int, List[int]] = {}
    for seed in set(seeds):
        clusters.setdefault(seed >> shift, []).append(seed)

    ranked = sorted(clusters.values(), key=len, reverse=True)
    output: Set[int] = set()
    for members in ranked:
        output.update(members)

    budget = max(0, config.budget - len(output))
    for members in ranked:
        if budget <= 0:
            break
        if len(members) < config.min_cluster_size:
            continue
        span = NybbleRange(members, config.mode)
        take = min(config.per_cluster_cap, budget)
        generated = span.enumerate(take, rng)
        fresh = [addr for addr in generated if addr not in output]
        fresh = fresh[:budget]
        output.update(fresh)
        budget -= len(fresh)
    return sorted(output)


def cluster_densities(
    seeds: Iterable[int], cluster_bits: int = 48
) -> Dict[int, int]:
    """Seed count per cluster prefix-bits value (diagnostics)."""
    shift = 128 - cluster_bits
    result: Dict[int, int] = {}
    for seed in set(seeds):
        key = seed >> shift
        result[key] = result.get(key, 0) + 1
    return result
