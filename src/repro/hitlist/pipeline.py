"""The three-step target generation pipeline (Figure 1 of the paper):

    seeds --(prefix transformation)--> intermediate prefixes
          --(target synthesis)-------> target addresses

:class:`TargetSet` is the pipeline product consumed by probing campaigns
and characterized in Table 5.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..addrs.prefix import Prefix
from .synthesis import synthesize
from .transform import SeedItem, zn


class TargetSet:
    """A named, de-duplicated list of probe target addresses with its
    provenance (seed source, transformation, synthesis method)."""

    __slots__ = ("name", "addresses", "seed_name", "transformation", "synthesis")

    def __init__(
        self,
        name: str,
        addresses: Sequence[int],
        seed_name: str = "",
        transformation: str = "",
        synthesis: str = "",
    ):
        self.name = name
        self.addresses: List[int] = sorted(set(addresses))
        self.seed_name = seed_name
        self.transformation = transformation
        self.synthesis = synthesis

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self):
        return iter(self.addresses)

    def __contains__(self, addr: int) -> bool:
        from bisect import bisect_left

        index = bisect_left(self.addresses, addr)
        return index < len(self.addresses) and self.addresses[index] == addr

    def __repr__(self) -> str:
        return "TargetSet(%s, %d targets)" % (self.name, len(self.addresses))


def make_targets(
    seed_name: str,
    seed_items: Iterable[SeedItem],
    level: int = 64,
    method: str = "fixediid",
    known_addresses: Optional[Sequence[int]] = None,
) -> TargetSet:
    """Run the full pipeline: zn transformation then synthesis.

    ``seed_items`` may mix bare addresses and prefixes.  The resulting set
    is named ``<seed>-z<level>`` following the paper's convention.
    """
    prefixes = zn(seed_items, level)
    addresses = synthesize(prefixes, method, known_addresses)
    return TargetSet(
        "%s-z%d" % (seed_name, level),
        addresses,
        seed_name=seed_name,
        transformation="z%d" % level,
        synthesis=method,
    )


def combine(name: str, sets: Sequence[TargetSet]) -> TargetSet:
    """Union several target sets (the paper's Combined list)."""
    union: List[int] = []
    for target_set in sets:
        union.extend(target_set.addresses)
    return TargetSet(name, union, seed_name="+".join(s.seed_name for s in sets))


def build_suite(
    seeds: Dict[str, Sequence[SeedItem]],
    levels: Tuple[int, ...] = (48, 64),
    method: str = "fixediid",
) -> Dict[str, TargetSet]:
    """Build the full campaign suite: every seed source at every zn level,
    mirroring the paper's 18-campaign grid (Table 7)."""
    suite: Dict[str, TargetSet] = {}
    for seed_name, items in seeds.items():
        items = list(items)
        for level in levels:
            target_set = make_targets(seed_name, items, level, method)
            suite[target_set.name] = target_set
    return suite
