"""Entropy/IP-style address structure analysis and generation.

Foremski, Plonka and Berger's Entropy/IP (IMC 2016, cited in §2) exposes
the *structure* of an address set: per-nybble Shannon entropy locates
the constant, enumerated, and random regions of the 32-nybble address,
and a generative model over those regions proposes new candidate
addresses.  This module implements the lite version:

* :func:`nybble_entropy` — the entropy profile (bits, 0..4 per nybble);
* :func:`segment` — contiguous runs classified constant / low / high
  entropy (Entropy/IP's segments);
* :class:`EntropyModel` — a segment-chain generative model: whole
  observed segment values are the atoms, adjacent segments are chained
  only where the dependency is strong (a pruned-Bayes-net lite of the
  paper's model), and independent segments recombine freely to propose
  fresh candidates.

Together with 6Gen this gives the library two published target
generators to race (the paper only evaluates 6Gen).
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Nybbles per address.
WIDTH = 32


def _columns(addresses: Sequence[int]) -> List[Counter]:
    counts = [Counter() for _ in range(WIDTH)]
    for value in addresses:
        for position in range(WIDTH):
            shift = 4 * (WIDTH - 1 - position)
            counts[position][(value >> shift) & 0xF] += 1
    return counts


def nybble_entropy(addresses: Sequence[int]) -> List[float]:
    """Shannon entropy (bits) of each nybble position, MSB first.

    0.0 = constant; 4.0 = uniformly random.  Empty input yields zeros.
    """
    if not addresses:
        return [0.0] * WIDTH
    total = len(addresses)
    profile = []
    for counter in _columns(addresses):
        entropy = 0.0
        for count in counter.values():
            p = count / total
            entropy -= p * math.log2(p)
        profile.append(entropy)
    return profile


@dataclass(frozen=True)
class Segment:
    """A contiguous nybble run with homogeneous entropy class."""

    start: int
    end: int  # exclusive
    kind: str  # "constant" | "low" | "high"
    mean_entropy: float

    @property
    def width(self) -> int:
        return self.end - self.start


def segment(
    addresses: Sequence[int], low_threshold: float = 0.5, high_threshold: float = 3.0
) -> List[Segment]:
    """Classify the address layout into constant / enumerated ("low") /
    random ("high") segments, Entropy/IP-fashion."""
    profile = nybble_entropy(addresses)

    def classify(value: float) -> str:
        if value < 1e-9:
            return "constant"
        if value < low_threshold:
            return "low"
        if value >= high_threshold:
            return "high"
        return "low"

    segments: List[Segment] = []
    start = 0
    current = classify(profile[0])
    for position in range(1, WIDTH):
        kind = classify(profile[position])
        if kind != current:
            run = profile[start:position]
            segments.append(
                Segment(start, position, current, sum(run) / len(run))
            )
            start, current = position, kind
    run = profile[start:]
    segments.append(Segment(start, WIDTH, current, sum(run) / len(run)))
    return segments


class EntropyModel:
    """Segment-chain model of an address set (Entropy/IP-lite).

    Entropy/IP proper fits a Bayesian network whose variables are the
    entropy *segments* of the address; the lite version keeps the same
    granularity — whole observed segment values are the atoms, never
    individual nybbles — and chains adjacent segments first-order.
    Sampling therefore recombines real prefixes with IID patterns seen
    elsewhere (the generator's value proposition) without ever splicing
    frankenprefixes out of unrelated networks' nybbles.
    """

    def __init__(self, addresses: Sequence[int]):
        if not addresses:
            raise ValueError("cannot model an empty address set")
        self.size = len(addresses)
        self.segments = segment(addresses)
        self.entropy = nybble_entropy(addresses)

        def segment_value(value: int, seg: Segment) -> int:
            shift = 4 * (WIDTH - seg.end)
            mask = (1 << (4 * seg.width)) - 1
            return (value >> shift) & mask

        first: Counter = Counter()
        chains: List[Dict[int, Counter]] = [
            {} for _ in range(len(self.segments) - 1)
        ]
        marginals: List[Counter] = [Counter() for _ in self.segments]
        for value in addresses:
            pieces = [segment_value(value, seg) for seg in self.segments]
            first[pieces[0]] += 1
            for index, piece in enumerate(pieces):
                marginals[index][piece] += 1
            for index in range(1, len(pieces)):
                table = chains[index - 1].setdefault(pieces[index - 1], Counter())
                table[pieces[index]] += 1
        self._first = (sorted(first), [first[v] for v in sorted(first)])

        # Dependency pruning (the Bayes-net spirit): keep the chain edge
        # only where conditioning on the previous segment meaningfully
        # reduces the next segment's entropy; otherwise the segments are
        # independent and sampling recombines their values freely.
        def shannon(counter: Counter) -> float:
            total = sum(counter.values())
            return -sum(
                (count / total) * math.log2(count / total)
                for count in counter.values()
            )

        self._chains: List[Optional[Dict[int, Counter]]] = []
        self._marginals: List[Tuple[List[int], List[int]]] = [
            (sorted(counter), [counter[v] for v in sorted(counter)])
            for counter in marginals
        ]
        for index in range(1, len(self.segments)):
            unconditional = shannon(marginals[index])
            total = sum(marginals[index - 1].values())
            conditional = sum(
                (sum(table.values()) / total) * shannon(table)
                for table in chains[index - 1].values()
            )
            strong = unconditional > 0 and conditional <= 0.7 * unconditional
            self._chains.append(chains[index - 1] if strong else None)

    def sample(self, rng: random.Random) -> int:
        values, weights = self._first
        piece = rng.choices(values, weights=weights, k=1)[0]
        value = piece
        for index in range(1, len(self.segments)):
            table = self._chains[index - 1]
            if table is not None:
                conditioned = table[piece]
                choices = sorted(conditioned)
                piece = rng.choices(
                    choices, weights=[conditioned[c] for c in choices], k=1
                )[0]
            else:
                choices, marginal_weights = self._marginals[index]
                piece = rng.choices(choices, weights=marginal_weights, k=1)[0]
            value = (value << (4 * self.segments[index].width)) | piece
        return value

    def generate(self, count: int, seed: int = 0, exclude: Iterable[int] = ()) -> List[int]:
        """Up to ``count`` fresh candidate addresses (deduplicated, not in
        ``exclude``)."""
        rng = random.Random(seed)
        seen = set(exclude)
        out: List[int] = []
        attempts = 0
        limit = count * 20
        while len(out) < count and attempts < limit:
            candidate = self.sample(rng)
            attempts += 1
            if candidate in seen:
                continue
            seen.add(candidate)
            out.append(candidate)
        return sorted(out)


def structure_summary(addresses: Sequence[int]) -> Dict[str, float]:
    """Aggregate structure metrics for reporting: total entropy, the
    entropy of the network half vs the IID half, and the segment count."""
    profile = nybble_entropy(addresses)
    return {
        "total_bits": sum(profile),
        "network_bits": sum(profile[:16]),
        "iid_bits": sum(profile[16:]),
        "segments": float(len(segment(addresses))),
    }
