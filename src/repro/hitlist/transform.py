"""Prefix transformations (Section 3.1, step 2).

The ``zn`` transformation normalizes a heterogeneous seed list to a single
granularity *n*: prefixes shorter than /n are extended (base zero-filled)
to /n, prefixes longer than /n — including bare addresses, which carry an
implicit /128 — are aggregated to their covering /n.  Duplicates collapse,
so a hitlist with a thousand hosts in one /64 contributes one /64 probe
target after ``z64``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from ..addrs.prefix import Prefix

SeedItem = Union[int, Prefix]


def as_prefix(item: SeedItem) -> Prefix:
    """Normalize a seed item (address int or Prefix) to a Prefix."""
    if isinstance(item, Prefix):
        return item
    return Prefix(item, 128)


def zn(items: Iterable[SeedItem], n: int) -> List[Prefix]:
    """Apply the ``zn`` transformation; result is sorted and de-duplicated."""
    if not 0 <= n <= 128:
        raise ValueError("zn level out of range: %r" % n)
    seen = set()
    result: List[Prefix] = []
    for item in items:
        prefix = as_prefix(item)
        if prefix.length < n:
            prefix = prefix.extend(n)
        elif prefix.length > n:
            prefix = prefix.truncate(n)
        if prefix not in seen:
            seen.add(prefix)
            result.append(prefix)
    result.sort()
    return result


def expand_short_prefixes(
    items: Iterable[SeedItem], n: int, max_expansion: int = 256
) -> List[Prefix]:
    """Variant of ``zn`` that *enumerates* the /n subnets of short
    prefixes instead of zero-extending, up to ``max_expansion`` subnets
    per input prefix.  Useful for breadth studies: a /32 seed becomes a
    sample of /48 targets rather than a single zero /48."""
    result: List[Prefix] = []
    seen = set()
    for item in items:
        prefix = as_prefix(item)
        if prefix.length > n:
            prefix = prefix.truncate(n)
            if prefix not in seen:
                seen.add(prefix)
                result.append(prefix)
            continue
        count = 1 << (n - prefix.length)
        step = max(1, count // max_expansion)
        emitted = 0
        index = 0
        while index < count and emitted < max_expansion:
            subnet = prefix.nth_subnet(n, index)
            if subnet not in seen:
                seen.add(subnet)
                result.append(subnet)
                emitted += 1
            index += step
    result.sort()
    return result
