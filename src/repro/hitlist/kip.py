"""kIP aggregation-based address anonymization (Plonka & Berger 2017).

The CDN seed in the paper is not a list of client addresses — privacy
forbids that — but a list of *aggregates*: prefixes each covering at
least ``k`` simultaneously-assigned /64 prefixes, where "simultaneous" is
judged at the ``p``-th percentile of activity intervals across a
measurement window.  The paper uses k=32 and k=256 variants (``kn``
transformations, Section 3.1).

Implementation: observations are (address, interval) pairs, reduced to
per-/64 activity vectors.  A binary-trie descent emits the deepest
prefixes whose percentile simultaneous-/64 count still meets ``k``.
Whenever a split would strand a below-``k`` child, the parent prefix is
emitted as a coarse catch-all covering the stragglers (aggregates may
therefore overlap; each still individually guarantees >= k).  Dense
client space thus yields *fine* aggregates while sparse regions appear
only under coarse spans — the paper's university anecdote, where an
entire campus hid inside one /41 aggregate (Section 6), falls out of
exactly this behaviour.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from ..addrs.address import ADDRESS_BITS, common_prefix_length
from ..addrs.prefix import Prefix

#: Bits identifying a /64 (the high half of the address).
_SLASH64_BITS = 64


@dataclass(frozen=True)
class KIPParams:
    """kIP parameters: ``w`` window days, ``i`` interval hours, ``k``
    simultaneously-assigned /64s, ``p`` percentile (the paper's defaults:
    w=14, i=1, p=50)."""

    k: int = 32
    window_days: int = 14
    interval_hours: int = 1
    percentile: float = 50.0

    @property
    def intervals(self) -> int:
        return max(1, (self.window_days * 24) // self.interval_hours)

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")


def _spanning(first64: int, last64: int) -> Prefix:
    """Minimal prefix covering two /64 identifiers (as full addresses)."""
    a = first64 << _SLASH64_BITS
    b = last64 << _SLASH64_BITS
    length = min(common_prefix_length(a, b), _SLASH64_BITS)
    return Prefix(a, length)


def kip_aggregate(
    observations: Iterable[Tuple[int, int]], params: KIPParams
) -> List[Prefix]:
    """Aggregate (address, interval) observations into k-anonymous prefixes.

    Every returned prefix covers, at the configured percentile of
    intervals, at least ``params.k`` simultaneously active /64s; returned
    prefixes are disjoint and jointly cover every active /64.  If the
    whole input cannot meet ``k``, the result is empty (nothing may be
    released).
    """
    n_intervals = params.intervals
    per64: Dict[int, Set[int]] = {}
    for addr, interval in observations:
        per64.setdefault(addr >> _SLASH64_BITS, set()).add(interval % n_intervals)
    if not per64:
        return []

    bases = sorted(per64)
    count = len(bases)
    activity = np.zeros((count, n_intervals), dtype=np.int32)
    for row, base in enumerate(bases):
        for interval in per64[base]:
            activity[row, interval] = 1
    # cumulative[i] = per-interval active counts among the first i rows.
    cumulative = np.vstack(
        [np.zeros((1, n_intervals), dtype=np.int64), np.cumsum(activity, axis=0)]
    )

    def metric(lo: int, hi: int) -> float:
        counts = cumulative[hi] - cumulative[lo]
        return float(np.percentile(counts, params.percentile))

    if metric(0, count) < params.k:
        return []

    aggregates: List[Prefix] = []

    def emit(bits: int, length: int) -> None:
        aggregates.append(
            Prefix(bits << (ADDRESS_BITS - length) if length else 0, length)
        )

    def walk(lo: int, hi: int, bits: int, length: int) -> None:
        """Invariant: metric(lo, hi) >= k."""
        while length < _SLASH64_BITS:
            next_length = length + 1
            boundary = ((bits << 1) | 1) << (_SLASH64_BITS - next_length)
            mid = bisect_left(bases, boundary, lo, hi)
            left, right = mid > lo, hi > mid
            if left and right:
                left_ok = metric(lo, mid) >= params.k
                right_ok = metric(mid, hi) >= params.k
                if left_ok and right_ok:
                    walk(lo, mid, bits << 1, next_length)
                    walk(mid, hi, (bits << 1) | 1, next_length)
                    return
                if left_ok or right_ok:
                    # The dense side refines further; the stragglers are
                    # covered by a catch-all at this node's granularity.
                    emit(bits, length)
                    if left_ok:
                        walk(lo, mid, bits << 1, next_length)
                    else:
                        walk(mid, hi, (bits << 1) | 1, next_length)
                    return
                emit(bits, length)
                return
            # One-sided: descend without emitting (identical activity).
            bits = (bits << 1) | (0 if left else 1)
            length = next_length
        emit(bits, length)

    walk(0, count, 0, 0)
    return sorted(set(aggregates))


def kn_transform(
    observations: Iterable[Tuple[int, int]], k: int, **kwargs
) -> List[Prefix]:
    """The paper's ``kn`` prefix transformation: kIP with k = n."""
    return kip_aggregate(observations, KIPParams(k=k, **kwargs))


def coverage(aggregates: Sequence[Prefix], addresses: Iterable[int]) -> float:
    """Fraction of the given addresses covered by the aggregates.

    Aggregates may nest/overlap (catch-alls), so containment is resolved
    with a radix trie rather than positional search.
    """
    addresses = list(addresses)
    if not addresses:
        return 0.0
    from ..addrs.trie import PrefixTrie

    trie: PrefixTrie = PrefixTrie()
    for prefix in aggregates:
        trie.insert(prefix, True)
    covered = sum(1 for addr in addresses if trie.covers(addr))
    return covered / len(addresses)
