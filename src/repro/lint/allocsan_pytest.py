"""Pytest plugin wiring AllocSan into the test suite.

Registered from the repository-root ``conftest.py``.  Opt in with::

    pytest --allocsan

Tests marked ``@pytest.mark.allocsan`` run real campaigns under
:class:`repro.lint.allocsan.AllocSanProfiler` and assert the allocation
budgets (bytes per probe, blocks per batch) hold.  They are skipped by
default because tracemalloc slows the interpreter severalfold; CI runs
them in a dedicated step alongside the ``probe --allocsan`` smoke
campaign.  The fast unit tests of the accounting machinery live
unmarked in ``tests/lint/test_allocsan.py`` and always run.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: "pytest.Parser") -> None:
    parser.addoption(
        "--allocsan",
        action="store_true",
        default=False,
        help="run the AllocSan budget tests (campaigns under tracemalloc; "
        "slow — CI runs these beside the --allocsan smoke campaign)",
    )


def pytest_configure(config: "pytest.Config") -> None:
    config.addinivalue_line(
        "markers",
        "allocsan: campaign allocation-budget test under tracemalloc; "
        "runs only with --allocsan",
    )


def pytest_collection_modifyitems(
    config: "pytest.Config", items: "list[pytest.Item]"
) -> None:
    if config.getoption("--allocsan"):
        return
    skip = pytest.mark.skip(reason="needs --allocsan (budget suite)")
    for item in items:
        if item.get_closest_marker("allocsan") is not None:
            item.add_marker(skip)
