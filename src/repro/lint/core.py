"""Lint framework plumbing: violations, checker registry, suppressions.

A checker is a class with a ``rule`` id and a ``check(context)`` method
yielding :class:`Violation` objects.  Registration is declarative
(:func:`register`), so adding a rule is one new module in
``repro/lint/checkers`` — the CLI, suppression handling, and output
formats come for free.

Suppression layers, narrowest first:

* ``# lint: ordered`` on a line — asserts the iteration on that line is
  deterministic; honoured by DET002 only.
* ``# repro-lint: disable=RULE[,RULE...]`` on a line — silences those
  rules for that line (``disable=all`` for every rule).
* ``# repro-lint: disable-file=RULE[,RULE...]`` anywhere — silences
  those rules for the whole file.

Suppressions are deliberately loud in the source: the point is a
reviewable audit trail of every spot where determinism is asserted
rather than enforced.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: ``# lint: ordered`` — DET002's "this iteration is deterministic" mark.
ORDERED_COMMENT = re.compile(r"#\s*lint:\s*ordered\b")

_DISABLE_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def format(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.column, self.rule, self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


class Suppressions:
    """Per-file suppression state parsed from comment tokens.

    Comments are read with :mod:`tokenize`, not substring search, so a
    ``# repro-lint: ...`` inside a string literal does not suppress
    anything.

    Every query *records* which declarations it consumed, so LNT001 can
    report suppressions that never fired (the ``warn_unused_ignores``
    analogue — see :mod:`repro.lint.checkers.lnt001`).
    """

    def __init__(self, source: str):
        self.ordered_lines: Set[int] = set()
        self.disabled_lines: Dict[int, Set[str]] = {}
        #: rule token -> line of the first ``disable-file=`` declaring it.
        self.disabled_file: Dict[str, int] = {}
        self.used_ordered: Set[int] = set()
        self.used_lines: Set[Tuple[int, str]] = set()
        self.used_file: Set[str] = set()
        for comment, line in _iter_comments(source):
            if ORDERED_COMMENT.search(comment):
                self.ordered_lines.add(line)
            match = _DISABLE_FILE.search(comment)
            if match:
                for rule in _parse_rules(match.group(1)):
                    self.disabled_file.setdefault(rule, line)
                continue
            match = _DISABLE_LINE.search(comment)
            if match:
                rules = self.disabled_lines.setdefault(line, set())
                rules.update(_parse_rules(match.group(1)))

    def is_ordered(self, line: int) -> bool:
        if line in self.ordered_lines:
            self.used_ordered.add(line)
            return True
        return False

    def is_disabled(self, rule: str, line: int) -> bool:
        hit = False
        for token in (rule, "all"):
            if token in self.disabled_file:
                self.used_file.add(token)
                hit = True
        rules = self.disabled_lines.get(line)
        if rules:
            for token in (rule, "all"):
                if token in rules:
                    self.used_lines.add((line, token))
                    hit = True
        return hit


def _parse_rules(text: str) -> List[str]:
    return [piece.strip() for piece in text.split(",") if piece.strip()]


def _iter_comments(source: str) -> Iterator[tuple]:
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type == tokenize.COMMENT:
                yield token.string, token.start[0]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file the tokenizer rejects still gets linted from its AST
        # (or reported as a parse failure); it just has no suppressions.
        return


@dataclass
class LintContext:
    """Everything a checker may inspect about one file."""

    path: str
    #: Dotted module path when the file sits under a package root the
    #: runner recognized (``repro.prober.yarrp6``), else the bare stem.
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    lines: List[str] = field(default_factory=list)
    #: Rules that actually ran on this file (selected and interested),
    #: including whole-program rules when the CLI driver ran them.
    #: Post-phase checkers (LNT001) read this to decide which
    #: suppressions were judgeable.
    ran_rules: Set[str] = field(default_factory=set)
    #: Every rule id the toolchain knows (registry + program rules), so
    #: LNT001 can distinguish "unused" from "unknown rule" suppressions.
    known_rules: Set[str] = field(default_factory=set)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Checker:
    """Base class for lint rules.

    Subclasses set :attr:`rule` (the stable id reported to users) and
    :attr:`description`, and implement :meth:`check`.  Suppression
    filtering happens in the runner — checkers yield every candidate.

    ``phase`` is ``"file"`` for ordinary AST rules; ``"post"`` checkers
    run after every file rule (and any whole-program pass) so they can
    inspect what the earlier rules consumed — LNT001 is the only one.
    """

    rule: str = ""
    description: str = ""
    phase: str = "file"

    def interested(self, context: LintContext) -> bool:
        """Whether this checker applies to ``context`` at all (cheap
        module-path gate so rules can scope themselves)."""
        return True

    def check(self, context: LintContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(
        self, context: LintContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.rule,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(checker_class: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not checker_class.rule:
        raise ValueError("checker %r has no rule id" % checker_class.__name__)
    existing = _REGISTRY.get(checker_class.rule)
    if existing is not None and existing is not checker_class:
        raise ValueError("duplicate rule id %r" % checker_class.rule)
    _REGISTRY[checker_class.rule] = checker_class
    return checker_class


def all_checkers() -> Dict[str, Type[Checker]]:
    """rule id -> checker class, for CLI ``--select`` and listings."""
    return dict(_REGISTRY)


def _module_path(path: str) -> str:
    """Dotted module path for ``path``, anchored at a ``repro`` package
    directory when one appears in the path (works from any CWD)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = normalized.split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    dirs = parts[:-1]
    if "repro" not in dirs:
        return stem
    anchor = len(dirs) - 1 - dirs[::-1].index("repro")
    pieces = dirs[anchor:] + ([] if stem == "__init__" else [stem])
    return ".".join(pieces)


#: Deterministic output order: (path, line, rule-id, column) — documented
#: in docs/determinism.md, identical for text, JSON and SARIF output.
def violation_sort_key(violation: Violation) -> Tuple[str, int, str, int]:
    return (violation.path, violation.line, violation.rule, violation.column)


@dataclass
class FileLint:
    """Per-file lint state: the context plus what fired and what ran.

    The CLI driver keeps these alive across the whole-program pass so
    program-rule suppressions and LNT001 see one consistent view.
    """

    context: LintContext
    violations: List[Violation] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.context.path


def lint_source_state(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    module: Optional[str] = None,
) -> FileLint:
    """Run the file-phase checkers and return resumable state (no
    post-phase rules yet; see :func:`finish_lint`)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        context = LintContext(
            path=path,
            module=module if module is not None else _module_path(path),
            source=source,
            tree=ast.Module(body=[], type_ignores=[]),
            suppressions=Suppressions(source),
            lines=source.splitlines(),
        )
        state = FileLint(context=context)
        state.violations.append(
            Violation(
                rule="E999",
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                message="syntax error: %s" % (error.msg or "unparseable"),
            )
        )
        return state
    context = LintContext(
        path=path,
        module=module if module is not None else _module_path(path),
        source=source,
        tree=tree,
        suppressions=Suppressions(source),
        lines=source.splitlines(),
    )
    context.known_rules.update(_REGISTRY)
    state = FileLint(context=context)
    chosen = _REGISTRY if select is None else {
        rule: _REGISTRY[rule] for rule in select if rule in _REGISTRY
    }
    for rule in sorted(chosen):
        checker_class = chosen[rule]
        if checker_class.phase != "file":
            continue
        checker = checker_class()
        if not checker.interested(context):
            continue
        context.ran_rules.add(rule)
        for violation in checker.check(context):
            if context.suppressions.is_disabled(violation.rule, violation.line):
                continue
            state.violations.append(violation)
    return state


def finish_lint(
    state: FileLint, select: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run post-phase checkers (LNT001) on completed state, then sort."""
    chosen = _REGISTRY if select is None else {
        rule: _REGISTRY[rule] for rule in select if rule in _REGISTRY
    }
    for rule in sorted(chosen):
        checker_class = chosen[rule]
        if checker_class.phase != "post":
            continue
        checker = checker_class()
        if not checker.interested(state.context):
            continue
        state.context.ran_rules.add(rule)
        for violation in checker.check(state.context):
            if state.context.suppressions.is_disabled(violation.rule, violation.line):
                continue
            state.violations.append(violation)
    state.violations.sort(key=violation_sort_key)
    return state.violations


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    module: Optional[str] = None,
) -> List[Violation]:
    """Lint python source text; the library core every entry point uses."""
    return finish_lint(lint_source_state(source, path, select, module), select)


def lint_file(path: str, select: Optional[Sequence[str]] = None) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, select=select)


def lint_file_state(
    path: str, select: Optional[Sequence[str]] = None
) -> FileLint:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source_state(source, path=path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def lint_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Lint every python file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, select=select))
    violations.sort(key=violation_sort_key)
    return violations
