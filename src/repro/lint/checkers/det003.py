"""DET003: worker-boundary dataclasses must stay in the picklable set.

``run_parallel`` ships a :class:`CampaignSpec` to every worker process.
A field holding a live ``Internet``, an open file, a lambda, or any
other unpicklable object is a *runtime* bomb that only detonates when a
pool actually forks — and with the ``fork`` start method some of those
objects silently pickle on Linux and explode only under ``spawn`` (the
macOS/Windows default).  This rule checks the *declared field types* of
every worker-boundary dataclass against an explicit picklable allowlist,
so the boundary is enforced at lint time on every platform.

A class is a worker boundary when its name is in
:data:`BOUNDARY_CLASSES`, or when its ``class`` line carries a
``# repro-lint: worker-boundary`` comment (the extension point for new
spec types).  Every name appearing in a boundary field's annotation must
be in :data:`PICKLABLE_TYPES`; containers are checked recursively
(``Optional[Tuple[int, ...]]`` is fine, ``Optional[Internet]`` is not).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional

from ..core import Checker, LintContext, Violation, register

#: Known worker-boundary dataclasses: the parallel runner's spec and the
#: config dataclasses it carries (transitively pickled with it).
BOUNDARY_CLASSES = frozenset(
    {"CampaignSpec", "InternetConfig", "VantageConfig", "Yarrp6Config"}
)

#: The declared picklable set.  Scalars, bytes, the typing containers of
#: those, and the repro config dataclasses that are themselves checked.
PICKLABLE_TYPES = frozenset(
    {
        # scalars
        "int", "float", "str", "bool", "bytes", "None",
        # typing constructs (bare or typing.-qualified)
        "Optional", "Union", "Tuple", "List", "Dict", "Sequence",
        "Mapping", "FrozenSet", "Literal", "Final",
        # builtin generics (PEP 585)
        "tuple", "list", "dict", "frozenset",
        # repro value types known picklable (numbers-only dataclasses,
        # themselves boundary-checked)
        "InternetConfig", "VantageConfig", "Yarrp6Config", "Prefix",
    }
)

_BOUNDARY_MARK = re.compile(r"#\s*repro-lint:\s*worker-boundary\b")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


def _annotation_names(node: ast.AST) -> Iterator[ast.AST]:
    """Leaf type references inside an annotation expression."""
    if isinstance(node, ast.Name):
        yield node
    elif isinstance(node, ast.Attribute):
        # typing.Optional -> judge by the final attribute
        yield node
    elif isinstance(node, ast.Subscript):
        yield from _annotation_names(node.value)
        yield from _annotation_names(node.slice)
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _annotation_names(element)
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _annotation_names(node.left)
        yield from _annotation_names(node.right)
    elif isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                yield node
            else:
                yield from _annotation_names(parsed)
        # None / Ellipsis constants are structural, not type leaves.
    elif isinstance(node, ast.Index):  # pragma: no cover - py<3.9 only
        yield from _annotation_names(node.value)  # type: ignore[attr-defined]
    else:
        yield node


def _leaf_label(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class WorkerBoundaryPickleSafety(Checker):
    rule = "DET003"
    description = (
        "worker-boundary dataclass fields must use declared-picklable "
        "types (the parallel runner pickles them across fork/spawn)"
    )

    def check(self, context: LintContext) -> Iterable[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            marked = _BOUNDARY_MARK.search(context.line_text(node.lineno))
            if node.name not in BOUNDARY_CLASSES and not marked:
                continue
            if not _is_dataclass(node):
                yield self.violation(
                    context,
                    node,
                    "worker-boundary class %s must be a @dataclass so its "
                    "field types are declared and checkable" % node.name,
                )
                continue
            yield from self._check_fields(context, node)

    def _check_fields(
        self, context: LintContext, node: ast.ClassDef
    ) -> Iterator[Violation]:
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not isinstance(statement.target, ast.Name):
                continue
            bad: List[str] = []
            for leaf in _annotation_names(statement.annotation):
                label = _leaf_label(leaf)
                if label is None or label not in PICKLABLE_TYPES:
                    bad.append(label or ast.dump(leaf))
            if bad:
                yield self.violation(
                    context,
                    statement,
                    "field %s.%s uses type(s) outside the picklable set: %s "
                    "(workers receive this object by pickle)"
                    % (node.name, statement.target.id, ", ".join(sorted(set(bad)))),
                )
