"""Built-in checkers; importing this package registers every rule."""

from . import det001, det002, det003, lnt001, pkt001  # noqa: F401
