"""Shared AST utilities for the checkers.

The central abstraction is *import-origin resolution*: mapping a local
name back to the dotted path it was imported from, so ``from time import
time as t; t()`` and ``import time; time.time()`` both resolve to
``time.time`` without executing anything.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional


def import_origins(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, from every import in the file.

    ``import numpy as np``          -> ``{"np": "numpy"}``
    ``import os.path``              -> ``{"os": "os"}``
    ``from time import time``       -> ``{"time": "time.time"}``
    ``from x import y as z``        -> ``{"z": "x.y"}``

    Function-level imports count too (the lint is about what the module
    can reach, not where the statement sits).
    """
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                origins[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: origin is package-local
                base = "." * node.level + (node.module or "")
            else:
                base = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                origins[local] = "%s.%s" % (base, alias.name) if base else alias.name
    return origins


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_target(node: ast.AST, origins: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted path of a call target, following imports.

    With ``from datetime import datetime as dt``, the expression
    ``dt.now`` resolves to ``datetime.datetime.now``.
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = origins.get(head)
    if origin is None:
        return name
    return origin + ("." + rest if rest else "")


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """child node -> parent node, for upward pattern matching."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every function/method definition, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def int_constant(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def str_constant(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
