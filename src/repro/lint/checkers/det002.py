"""DET002: iteration over unordered sets in order-sensitive packages.

``set``/``frozenset`` iteration order depends on insertion history and
(for ``str`` elements) the per-process hash seed.  In the packages whose
output feeds results or emission order — ``prober``, ``netsim``,
``analysis`` — an unsorted set walk can change record order, dict key
order, or tie-breaks between runs and between workers, which is exactly
the class of bug that breaks the parallel runner's deterministic merge.

The rule flags ``for``-loops, comprehension generators and ordering-
sensitive calls (``list``/``tuple``/``enumerate``/``iter``/``.join``)
whose iterable is *statically known* to be a set:

* set literals / set comprehensions / ``set(...)`` / ``frozenset(...)``
* set-operator results (``a | b``, ``a & b``, ``a - b``, ``a ^ b``)
  and set-returning methods (``.union``, ``.difference``, ...)
* local names every assignment of which is such an expression
* ``self.X`` attributes annotated ``Set[...]`` anywhere in the class,
  and ``@property`` / method returns annotated ``Set[...]``

Not flagged (order cannot escape):

* the iterable is wrapped in ``sorted(...)``
* a comprehension consumed directly by an order-insensitive reducer
  (``sorted``, ``sum``, ``len``, ``min``, ``max``, ``any``, ``all``,
  ``set``, ``frozenset``)
* a set comprehension over a set (unordered in, unordered out)
* the line carries a ``# lint: ordered`` annotation — the author's
  reviewed assertion that order is deterministic or cannot escape
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..core import Checker, LintContext, Violation, register
from .common import parent_map

#: Packages (dotted-path segments) where emission/result order matters.
ORDER_SENSITIVE_SEGMENTS = frozenset({"prober", "netsim", "analysis"})

_SET_ANNOTATIONS = frozenset(
    {"Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet"}
)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Consumers whose result does not depend on iteration order.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset"}
)


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_is_set(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


class _ClassInfo:
    """Set-typed members of one class: annotated attributes plus
    properties/methods with a ``Set[...]`` return annotation."""

    def __init__(self, node: ast.ClassDef):
        self.set_attributes: Set[str] = set()
        self.set_returning: Set[str] = set()
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                if _annotation_is_set(statement.annotation):
                    self.set_attributes.add(statement.target.id)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_is_set(statement.returns):
                    if _is_property(statement):
                        self.set_attributes.add(statement.name)
                    else:
                        self.set_returning.add(statement.name)
                for inner in ast.walk(statement):
                    if (
                        isinstance(inner, ast.AnnAssign)
                        and isinstance(inner.target, ast.Attribute)
                        and isinstance(inner.target.value, ast.Name)
                        and inner.target.value.id == "self"
                        and _annotation_is_set(inner.annotation)
                    ):
                        self.set_attributes.add(inner.target.attr)


def _is_property(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Name) and decorator.id == "property":
            return True
    return False


class _Scope:
    """Name -> set-ness within one function (or the module body).

    A name counts as a set only when *every* assignment to it in the
    scope is a set expression; one non-set assignment poisons it."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.poisoned: Set[str] = set()

    def is_set(self, name: str) -> bool:
        return name in self.set_names and name not in self.poisoned


class SetIterationChecker(Checker):
    rule = "DET002"
    description = (
        "flags iteration over sets in prober/netsim/analysis unless "
        "sorted() or annotated '# lint: ordered'"
    )

    def interested(self, context: LintContext) -> bool:
        segments = set(context.module.split("."))
        return bool(segments & ORDER_SENSITIVE_SEGMENTS)

    def check(self, context: LintContext) -> Iterable[Violation]:
        parents = parent_map(context.tree)
        classes: Dict[ast.AST, _ClassInfo] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                classes[node] = _ClassInfo(node)

        def enclosing_class(node: ast.AST) -> Optional[_ClassInfo]:
            current: Optional[ast.AST] = node
            while current is not None:
                if isinstance(current, ast.ClassDef):
                    return classes[current]
                current = parents.get(current)
            return None

        scopes = self._build_scopes(context.tree, parents, classes, enclosing_class)

        def flag(node: ast.AST, what: str) -> Optional[Violation]:
            line = getattr(node, "lineno", 1)
            if context.suppressions.is_ordered(line):
                return None
            return self.violation(
                context,
                node,
                "iteration over unordered %s; wrap in sorted(...) or annotate "
                "'# lint: ordered' if order provably cannot escape" % what,
            )

        for node in ast.walk(context.tree):
            scope = self._scope_of(node, parents, scopes)
            info = enclosing_class(node)
            if isinstance(node, (ast.For, ast.AsyncFor)):
                what = self._set_description(node.iter, scope, info)
                if what is not None:
                    violation = flag(node, what)
                    if violation:
                        yield violation
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if isinstance(node, ast.SetComp):
                    continue  # unordered in, unordered out
                if self._consumer_is_order_insensitive(node, parents):
                    continue
                for generator in node.generators:
                    what = self._set_description(generator.iter, scope, info)
                    if what is not None:
                        violation = flag(generator.iter, what)
                        if violation:
                            yield violation
            elif isinstance(node, ast.Call):
                callee = node.func
                ordering_call = (
                    isinstance(callee, ast.Name)
                    and callee.id in ("list", "tuple", "enumerate", "iter")
                ) or (isinstance(callee, ast.Attribute) and callee.attr == "join")
                if ordering_call and node.args:
                    what = self._set_description(node.args[0], scope, info)
                    if what is not None:
                        violation = flag(node, what)
                        if violation:
                            yield violation

    # -- set-expression inference ---------------------------------------
    def _set_description(
        self, node: ast.AST, scope: _Scope, info: Optional[_ClassInfo]
    ) -> Optional[str]:
        """Human description when ``node`` is statically a set, else None."""
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in ("set", "frozenset"):
                return "%s(...) result" % callee.id
            if isinstance(callee, ast.Attribute) and callee.attr in _SET_METHODS:
                if self._set_description(callee.value, scope, info) is not None:
                    return ".%s(...) result" % callee.attr
            if (
                isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "self"
                and info is not None
                and callee.attr in info.set_returning
            ):
                return "set returned by self.%s()" % callee.attr
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            if (
                self._set_description(node.left, scope, info) is not None
                or self._set_description(node.right, scope, info) is not None
            ):
                return "set-operator result"
        if isinstance(node, ast.Name) and scope.is_set(node.id):
            return "set %r" % node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and info is not None
            and node.attr in info.set_attributes
        ):
            return "set attribute self.%s" % node.attr
        return None

    def _consumer_is_order_insensitive(
        self, node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        parent = parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CALLS
            and node in parent.args
        )

    # -- scope bookkeeping ----------------------------------------------
    def _build_scopes(
        self,
        tree: ast.Module,
        parents: Dict[ast.AST, ast.AST],
        classes: Dict[ast.AST, "_ClassInfo"],
        enclosing_class,
    ) -> Dict[ast.AST, _Scope]:
        scopes: Dict[ast.AST, _Scope] = {tree: _Scope()}
        assignments: List[tuple] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes[node] = _Scope()
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value, annotation = [node.target], node.value, node.annotation
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.op, _SET_OPS):
                    continue  # |=, &= etc. preserve set-ness
                targets, value = [node.target], node.value
            else:
                continue
            scope_node = self._scope_node(node, parents)
            for target in targets:
                if isinstance(target, ast.Name):
                    assignments.append(
                        (scope_node, target.id, value, annotation, enclosing_class(node))
                    )
        # Fixpoint: set-ness can flow through chains (x = set(); y = x)
        # whose assignments ast.walk may visit in any order.
        changed = True
        while changed:
            changed = False
            for scope_node, name, value, annotation, info in assignments:
                scope = scopes[scope_node]
                if scope.is_set(name) or name in scope.poisoned:
                    continue
                if _annotation_is_set(annotation) or (
                    value is not None
                    and self._set_description(value, scope, info) is not None
                ):
                    scope.set_names.add(name)
                    changed = True
        # Anything also assigned a non-set expression is poisoned.
        for scope_node, name, value, annotation, info in assignments:
            scope = scopes[scope_node]
            is_set = _annotation_is_set(annotation) or (
                value is not None
                and self._set_description(value, scope, info) is not None
            )
            if not is_set and (value is not None or annotation is not None):
                scope.poisoned.add(name)
        return scopes

    def _scope_node(self, node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> ast.AST:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                return current
            current = parents.get(current)
        return node

    def _scope_of(
        self,
        node: ast.AST,
        parents: Dict[ast.AST, ast.AST],
        scopes: Dict[ast.AST, _Scope],
    ) -> _Scope:
        scope_node = self._scope_node(node, parents)
        return scopes.get(scope_node, _Scope())


register(SetIterationChecker)
