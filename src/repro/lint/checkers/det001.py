"""DET001: banned nondeterminism sources.

The simulation runs on a virtual clock and seeded RNG streams; a single
``time.time()`` or module-level ``random.random()`` in a code path that
feeds probe bytes, emission order, or results silently breaks the
``run_parallel == run_single`` bit-identity contract.  This rule bans
the sources outright; the seeded alternatives (``Engine.now``,
``random.Random(seed)``) are always available.

Flagged:

* wall-clock reads: ``time.time``/``time_ns``/``monotonic``/
  ``perf_counter`` (+ ``_ns`` variants), ``time.clock_gettime``
* ``datetime.datetime.now``/``utcnow``/``today``, ``datetime.date.today``
* module-level ``random.*`` functions (``random.random``,
  ``random.randint``, ...) — instances of ``random.Random(seed)`` are
  the sanctioned replacement
* ``random.Random()`` / ``random.SystemRandom`` — an *unseeded* Random
  seeds itself from the OS
* ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, anything in ``secrets``
* builtin ``hash()`` — PYTHONHASHSEED-dependent on ``str``/``bytes``;
  suppress with ``# repro-lint: disable=DET001`` plus a comment naming
  PYTHONHASHSEED where the salted hash genuinely cannot escape

One structural exemption: the module ``repro.obs.wallclock`` is the
designated top-level wall-clock boundary (run manifests report how long
the *host* took), so pure time reads are permitted **there and only
there**.  The exemption covers exactly the wall-clock subset — entropy
sources (``os.urandom``, ``secrets``, module-level ``random.*``) stay
banned even in that module.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, LintContext, Violation, register
from .common import import_origins, resolve_call_target

#: Exact qualified call targets that are always nondeterministic.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``random.*`` members that are legitimate (classes & constants, not the
#: module-level convenience functions bound to the hidden global RNG).
RANDOM_ALLOWED = frozenset({"random.Random"})

#: The wall-clock subset of :data:`BANNED_CALLS` — permitted only inside
#: the modules below; never the entropy sources.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The allowlisted wall-clock boundaries (see each module's docstring
#: for the rules callers must follow): the Stopwatch boundary, the
#: host-time profiler, and the supervised runner's deadline module
#: (supervision decisions — is this worker late/dead — are host facts
#: and never reach probe bytes).  Entropy sources stay banned
#: everywhere.
WALLCLOCK_EXEMPT_MODULES = frozenset(
    {"repro.obs.wallclock", "repro.obs.profiler", "repro.prober.deadline"}
)

#: Modules whose entire surface is banned.
BANNED_PREFIXES = ("secrets.",)


@register
class NondeterminismSources(Checker):
    rule = "DET001"
    description = (
        "bans wall-clock reads, module-level random.*, os.urandom, "
        "uuid.uuid4 and builtin hash() in simulation code"
    )

    def check(self, context: LintContext) -> Iterable[Violation]:
        origins = import_origins(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, origins)
            if target is None:
                continue
            if target == "hash" and "hash" not in origins:
                yield self.violation(
                    context,
                    node,
                    "builtin hash() is PYTHONHASHSEED-dependent on str/bytes; "
                    "use a keyed/stable hash (e.g. repro's address_checksum or "
                    "struct-packed digests) instead",
                )
            elif (
                target in WALLCLOCK_CALLS
                and context.module in WALLCLOCK_EXEMPT_MODULES
            ):
                continue
            elif target in BANNED_CALLS:
                yield self.violation(
                    context,
                    node,
                    "call to nondeterministic %s(); simulation code must use "
                    "the virtual clock / seeded RNG streams" % target,
                )
            elif target.startswith(BANNED_PREFIXES):
                yield self.violation(
                    context,
                    node,
                    "call into %s — the secrets module is OS-entropy by design"
                    % target,
                )
            elif target.startswith("random.") and target not in RANDOM_ALLOWED:
                yield self.violation(
                    context,
                    node,
                    "module-level %s() draws from the hidden global RNG; "
                    "thread a seeded random.Random instance instead" % target,
                )
            elif target == "random.Random" and not node.args and not node.keywords:
                yield self.violation(
                    context,
                    node,
                    "random.Random() without a seed self-seeds from the OS; "
                    "pass an explicit seed",
                )
