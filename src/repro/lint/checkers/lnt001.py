"""LNT001: unused lint suppressions (the ``warn_unused_ignores`` analogue).

Suppression comments are a reviewed audit trail; one that no longer
fires is worse than dead code — it asserts a determinism exception that
the code stopped needing, and it will silently swallow a *future*
violation on that line.  This rule reports:

* ``# repro-lint: disable=RULE`` lines where RULE ran but produced no
  violation on that line;
* ``# repro-lint: disable-file=RULE`` declarations that suppressed
  nothing anywhere in the file;
* ``# lint: ordered`` annotations on lines where DET002 ran and found
  no set iteration to excuse;
* suppressions naming rule ids the toolchain does not know (typos).

A suppression for a rule that did *not* run (deselected via
``--select``, scoped out by ``interested()``, or a whole-program rule
in a per-file-only invocation) is left alone: its usefulness was not
judgeable on this run.

LNT001 runs in the post phase — after every file rule and, in the CLI
driver, after the whole-program pass — so usage recorded by any rule
counts.
"""

from __future__ import annotations

from typing import Iterable

from ..core import Checker, LintContext, Violation, register

#: Rule whose usage governs ``# lint: ordered`` annotations.
ORDERED_RULE = "DET002"


@register
class UnusedSuppressions(Checker):
    rule = "LNT001"
    description = (
        "warns on unused '# repro-lint: disable=' / '# lint: ordered' "
        "suppressions and on suppressions naming unknown rules"
    )
    phase = "post"

    def check(self, context: LintContext) -> Iterable[Violation]:
        if not context.known_rules:
            # Syntax-error files carry no rule inventory; nothing ran,
            # so no suppression is judgeable.
            return
        suppressions = context.suppressions
        any_ran = bool(context.ran_rules - {self.rule})
        for line in sorted(suppressions.disabled_lines):
            for token in sorted(suppressions.disabled_lines[line]):
                yield from self._judge(
                    context, line, token, (line, token) in suppressions.used_lines,
                    any_ran, "disable=%s" % token,
                )
        for token in sorted(suppressions.disabled_file):
            line = suppressions.disabled_file[token]
            yield from self._judge(
                context, line, token, token in suppressions.used_file,
                any_ran, "disable-file=%s" % token,
            )
        if ORDERED_RULE in context.ran_rules:
            for line in sorted(suppressions.ordered_lines):
                if line not in suppressions.used_ordered:
                    yield self._at(
                        context, line,
                        "unused '# lint: ordered' annotation: %s found no set "
                        "iteration on this line" % ORDERED_RULE,
                    )

    def _judge(
        self,
        context: LintContext,
        line: int,
        token: str,
        used: bool,
        any_ran: bool,
        what: str,
    ) -> Iterable[Violation]:
        if used:
            return
        if token == "all":
            if any_ran:
                yield self._at(
                    context, line,
                    "unused suppression '%s': no rule fired here" % what,
                )
            return
        if token not in context.known_rules:
            yield self._at(
                context, line,
                "suppression '%s' names an unknown rule (try --list-checkers)"
                % what,
            )
            return
        if token in context.ran_rules:
            yield self._at(
                context, line,
                "unused suppression '%s': the rule ran and found nothing to "
                "suppress here" % what,
            )

    def _at(self, context: LintContext, line: int, message: str) -> Violation:
        return Violation(
            rule=self.rule, path=context.path, line=line, column=1,
            message=message,
        )
