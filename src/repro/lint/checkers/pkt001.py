"""PKT001: packet-layer byte-length and checksum-neutrality invariants.

The Yarrp6 stateless design hangs on byte-exact packet contracts: a
header class whose ``HEADER_LENGTH`` disagrees with the struct format
its ``pack()`` emits corrupts every downstream offset, and the 12-byte
probe payload (magic + instance + TTL + elapsed + fudge) is the decode
contract for *every* response.  Those constants live far from the pack
formats they must match; this rule pins them together.

Checks, per module:

* **header classes** — when a module defines ``HEADER_LENGTH`` and one
  class with a ``pack()`` method whose return value is a concatenation
  of ``struct.pack("<literal>", ...)`` calls and 16-byte
  ``address.to_bytes(...)`` terms, the computed byte length must equal
  ``HEADER_LENGTH``.
* **the encoding module** (recognized by defining both
  ``PAYLOAD_LENGTH`` and ``MAGIC``):

  - ``PAYLOAD_LENGTH`` must equal the payload-builder's packed head plus
    its ``fudge.to_bytes(n, ...)`` tail;
  - some ``struct.unpack`` in the module must read exactly the packed
    head back (pack/decode format drift);
  - ``MAGIC`` must fit 4 bytes, ``DEST_PORT`` and ``TARGET_SUM`` 2 bytes
    (``TARGET_SUM`` is the one's-complement constant every probe's
    checksummed region is steered to — checksum neutrality needs it
    representable in 16 bits);
  - every ``checksum = ...`` assignment must be the complement pattern
    ``(~X) & 0xFFFF`` — emitting anything else breaks the per-target
    constant-checksum (Paris traceroute) property.
"""

from __future__ import annotations

import ast
import struct
from typing import Dict, Iterable, Iterator, List, Optional

from ..core import Checker, LintContext, Violation, register
from .common import dotted_name, int_constant, str_constant

ADDRESS_BYTES = 16  # an IPv6 address serialized by address.to_bytes


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    constants: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = int_constant(node.value)
            if isinstance(target, ast.Name) and value is not None:
                constants[target.id] = value
    return constants


def _calcsize(format_string: str) -> Optional[int]:
    try:
        return struct.calcsize(format_string)
    except struct.error:
        return None


def _packed_size(node: ast.AST) -> Optional[int]:
    """Byte length of an expression built from struct.pack literals,
    ``address.to_bytes(...)`` terms and their concatenation; None when
    any term's size is not statically known."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _packed_size(node.left)
        right = _packed_size(node.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name == "struct.pack" and node.args:
            format_string = str_constant(node.args[0])
            if format_string is not None:
                return _calcsize(format_string)
            return None
        if name == "address.to_bytes":
            return ADDRESS_BYTES
        if isinstance(node.func, ast.Attribute) and node.func.attr == "to_bytes":
            return int_constant(node.args[0]) if node.args else None
    if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
        return len(node.value)
    return None


def _struct_call_formats(tree: ast.AST, function: str) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func) == "struct.%s" % function
            and node.args
        ):
            yield node


@register
class PacketInvariants(Checker):
    rule = "PKT001"
    description = (
        "packet byte-length constants must match their struct formats; "
        "emitted checksums must be one's-complement neutral"
    )

    def check(self, context: LintContext) -> Iterable[Violation]:
        constants = _module_int_constants(context.tree)
        if "HEADER_LENGTH" in constants:
            yield from self._check_header_classes(context, constants["HEADER_LENGTH"])
        if "PAYLOAD_LENGTH" in constants and "MAGIC" in constants:
            yield from self._check_encoding_module(context, constants)

    # -- header classes ---------------------------------------------------
    def _check_header_classes(
        self, context: LintContext, header_length: int
    ) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for method in node.body:
                if (
                    isinstance(method, ast.FunctionDef)
                    and method.name == "pack"
                ):
                    yield from self._check_pack(
                        context, node.name, method, header_length
                    )

    def _check_pack(
        self,
        context: LintContext,
        class_name: str,
        method: ast.FunctionDef,
        header_length: int,
    ) -> Iterator[Violation]:
        for statement in ast.walk(method):
            if not isinstance(statement, ast.Return) or statement.value is None:
                continue
            size = _packed_size(statement.value)
            if size is not None and size != header_length:
                yield self.violation(
                    context,
                    statement,
                    "%s.pack() emits %d bytes but HEADER_LENGTH is %d"
                    % (class_name, size, header_length),
                )

    # -- the Yarrp6 encoding module ---------------------------------------
    def _check_encoding_module(
        self, context: LintContext, constants: Dict[str, int]
    ) -> Iterator[Violation]:
        payload_length = constants["PAYLOAD_LENGTH"]
        head_size = self._payload_head_size(context.tree)
        if head_size is not None:
            head_format, head_bytes, fudge_bytes, pack_node = head_size
            if head_bytes + fudge_bytes != payload_length:
                yield self.violation(
                    context,
                    pack_node,
                    "payload head %r (%d B) + fudge (%d B) != PAYLOAD_LENGTH "
                    "(%d) — the 12-byte probe encoding contract is broken"
                    % (head_format, head_bytes, fudge_bytes, payload_length),
                )
            elif not self._decode_reads_head(context.tree, head_bytes):
                yield self.violation(
                    context,
                    pack_node,
                    "no struct.unpack in this module reads the %d-byte packed "
                    "head back — pack/decode format drift" % head_bytes,
                )
        for name, limit in (
            ("MAGIC", 0xFFFFFFFF),
            ("DEST_PORT", 0xFFFF),
            ("TARGET_SUM", 0xFFFF),
        ):
            value = constants.get(name)
            if value is not None and not 0 <= value <= limit:
                yield from self._constant_violation(context, name, value, limit)
        yield from self._check_checksum_neutrality(context)

    def _constant_violation(
        self, context: LintContext, name: str, value: int, limit: int
    ) -> Iterator[Violation]:
        for node in context.tree.body:
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                yield self.violation(
                    context,
                    node,
                    "%s = %#x does not fit its %d-byte wire field"
                    % (name, value, limit.bit_length() // 8),
                )

    def _payload_head_size(self, tree: ast.Module):
        """(format, head bytes, fudge bytes, pack node) from the payload
        builder: the function that both struct.packs a head and returns
        ``head + <fudge>.to_bytes(n, ...)``."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            packs = list(_struct_call_formats(node, "pack"))
            if len(packs) != 1:
                continue
            fudge_bytes = None
            for statement in ast.walk(node):
                if (
                    isinstance(statement, ast.Call)
                    and isinstance(statement.func, ast.Attribute)
                    and statement.func.attr == "to_bytes"
                    and statement.args
                ):
                    fudge_bytes = int_constant(statement.args[0])
            if fudge_bytes is None:
                continue
            format_string = str_constant(packs[0].args[0])
            if format_string is None:
                continue
            head_bytes = _calcsize(format_string)
            if head_bytes is None:
                continue
            return format_string, head_bytes, fudge_bytes, packs[0]
        return None

    def _decode_reads_head(self, tree: ast.Module, head_bytes: int) -> bool:
        for call in _struct_call_formats(tree, "unpack"):
            format_string = str_constant(call.args[0])
            if format_string is not None and _calcsize(format_string) == head_bytes:
                return True
        return False

    def _check_checksum_neutrality(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == "checksum"):
                continue
            if not self._is_complement_pattern(node.value):
                yield self.violation(
                    context,
                    node,
                    "checksum must be emitted as the one's complement "
                    "'(~steered_sum) & 0xFFFF'; any other expression breaks "
                    "per-target checksum constancy (Paris/ECMP neutrality)",
                )

    def _is_complement_pattern(self, node: ast.AST) -> bool:
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.BitAnd)
            and int_constant(node.right) == 0xFFFF
        ):
            inner = node.left
            while isinstance(inner, ast.BinOp) or (
                isinstance(inner, ast.UnaryOp) and isinstance(inner.op, ast.Invert)
            ):
                if isinstance(inner, ast.UnaryOp):
                    return True
                inner = inner.left
        return False
