"""DetSan — the runtime determinism sanitizer.

The static rules (DET001/DET101/RNG101) prove what the *parsed* program
can reach; DetSan checks what the *running* program actually touches.
Inside a ``DetSan`` region every banned nondeterminism source —
wall-clock reads, the module-level ``random`` API, ``os.urandom``,
``uuid.uuid1/uuid4``, ``secrets`` — is patched to a tripwire that
records the offending call with its caller and stack, and (in
``raise`` mode) aborts on the spot::

    with DetSan(mode="raise", scope="repro"):
        result = run_campaign(...)        # trips on any entropy read

Scoping: with ``scope="repro"`` only calls *from* ``repro.*`` modules
trip; the test harness, ``multiprocessing`` internals, and third-party
code pass through to the real functions.  Two standing exemptions
mirror the static rules:

* wall-clock reads from ``repro.obs.wallclock`` (the single allowlisted
  boundary — see :data:`WALLCLOCK_MODULES`);
* this module itself (so nested regions and the pytest plugin can
  manage patches while one is active).

``mode="record"`` logs instead of raising — the ``probe --detsan`` flag
uses it to run a full campaign under instrumentation and then verify
the dump is byte-identical to a clean rerun.

Patching is LIFO-restored and re-entrant; ``require_hash_seed=True``
additionally asserts ``PYTHONHASHSEED`` is pinned to a fixed integer
before entering (hash randomization is process-global nondeterminism no
monkeypatch can intercept).
"""

from __future__ import annotations

import os
import random
import secrets
import sys
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple

#: The modules whose *time* reads pass through even in scope="repro"
#: (kept in sync with repro.lint.checkers.det001.WALLCLOCK_EXEMPT_MODULES):
#: the Stopwatch boundary, the wall-clock profiler, and the supervised
#: runner's deadline module.  Entropy reads trip regardless of caller.
WALLCLOCK_MODULES = frozenset(
    {"repro.obs.wallclock", "repro.obs.profiler", "repro.prober.deadline"}
)

#: Caller-module prefixes that always pass through: DetSan's own
#: machinery must be able to run while patched.
_SELF_PREFIX = "repro.lint.detsan"

_TIME_FUNCS = (
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "clock_gettime",
    "clock_gettime_ns",
)

_RANDOM_FUNCS = (
    "random",
    "randint",
    "randrange",
    "getrandbits",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "seed",
)

_OS_FUNCS = ("urandom", "getrandom")
_UUID_FUNCS = ("uuid1", "uuid4")
_SECRETS_FUNCS = ("token_bytes", "token_hex", "token_urlsafe", "randbelow", "randbits", "choice")


class DetSanViolation(RuntimeError):
    """A banned nondeterminism source was called inside a DetSan region."""


class DetSanUsageError(RuntimeError):
    """DetSan itself was misconfigured (e.g. PYTHONHASHSEED not pinned)."""


@dataclass
class DetSanReport:
    """One recorded tripwire hit."""

    kind: str  # "time" | "random" | "entropy"
    target: str  # e.g. "time.perf_counter"
    caller: str  # __name__ of the calling module
    stack: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return "%s %s called from %s" % (self.kind, self.target, self.caller)


def hash_seed_pinned() -> bool:
    """Whether this interpreter was started with a pinned PYTHONHASHSEED.

    ``PYTHONHASHSEED`` must be present in the environment and be a fixed
    integer — absent or ``"random"`` both mean ``hash(str)`` varies per
    process, which no runtime patch can repair.
    """
    value = os.environ.get("PYTHONHASHSEED", "")
    if not value or value == "random":
        return False
    try:
        int(value)
    except ValueError:
        return False
    return True


class DetSan:
    """Context manager installing the nondeterminism tripwires."""

    def __init__(
        self,
        mode: str = "raise",
        scope: str = "repro",
        require_hash_seed: bool = False,
        max_stack_frames: int = 12,
    ):
        if mode not in ("raise", "record"):
            raise DetSanUsageError("mode must be 'raise' or 'record', got %r" % mode)
        if scope not in ("repro", "all"):
            raise DetSanUsageError("scope must be 'repro' or 'all', got %r" % scope)
        self.mode = mode
        self.scope = scope
        self.require_hash_seed = require_hash_seed
        self.max_stack_frames = max_stack_frames
        self.reports: List[DetSanReport] = []
        self._patched: List[Tuple[Any, str, Any]] = []  # LIFO restore stack

    # -- patch machinery ---------------------------------------------------

    def __enter__(self) -> "DetSan":
        if self.require_hash_seed and not hash_seed_pinned():
            raise DetSanUsageError(
                "DetSan(require_hash_seed=True): PYTHONHASHSEED must be set "
                "to a fixed integer (found %r)"
                % os.environ.get("PYTHONHASHSEED", "<unset>")
            )
        try:
            self._patch_module(time, "time", _TIME_FUNCS, "time")
            self._patch_module(random, "random", _RANDOM_FUNCS, "random")
            self._patch_module(os, "os", _OS_FUNCS, "entropy")
            self._patch_module(uuid, "uuid", _UUID_FUNCS, "entropy")
            self._patch_module(secrets, "secrets", _SECRETS_FUNCS, "entropy")
        except Exception:
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._restore()

    def _patch_module(
        self, module: Any, module_name: str, names: Tuple[str, ...], kind: str
    ) -> None:
        for name in names:
            original = getattr(module, name, None)
            if original is None or not callable(original):
                continue
            wrapper = self._make_wrapper(
                original, "%s.%s" % (module_name, name), kind
            )
            self._patched.append((module, name, original))
            setattr(module, name, wrapper)

    def _restore(self) -> None:
        while self._patched:
            module, name, original = self._patched.pop()
            setattr(module, name, original)

    def _make_wrapper(
        self, original: Callable[..., Any], target: str, kind: str
    ) -> Callable[..., Any]:
        sanitizer = self

        def tripwire(*args: Any, **kwargs: Any) -> Any:
            caller = sys._getframe(1).f_globals.get("__name__", "")
            if not sanitizer._trips(caller, kind):
                return original(*args, **kwargs)
            report = DetSanReport(
                kind=kind,
                target=target,
                caller=caller,
                stack=traceback.format_stack(
                    sys._getframe(1), limit=sanitizer.max_stack_frames
                ),
            )
            sanitizer.reports.append(report)
            if sanitizer.mode == "raise":
                raise DetSanViolation(
                    "DetSan: %s — banned inside a determinism-sanitized "
                    "region (see repro.lint.detsan; the seeded/virtual-clock "
                    "alternatives are documented in docs/determinism.md)"
                    % report.summary()
                )
            return original(*args, **kwargs)

        tripwire.__name__ = getattr(original, "__name__", target)
        tripwire.__detsan_original__ = original  # type: ignore[attr-defined]
        return tripwire

    def _trips(self, caller: str, kind: str) -> bool:
        if caller.startswith(_SELF_PREFIX):
            return False
        if self.scope == "repro" and not (
            caller == "repro" or caller.startswith("repro.")
        ):
            return False
        if kind == "time" and caller in WALLCLOCK_MODULES:
            return False
        return True
