"""Pytest plugin wiring ShardSan into the test suite.

Registered from the repository-root ``conftest.py``.  Opt in with::

    pytest --shardsan

Every test body then runs inside ``ShardSan(mode="raise",
scope="repro")``: any ``repro.*`` code path that writes an attribute of
a ``@run_state``-registered world class outside its registered per-run
and ``shared=`` fields fails that test with a
:class:`~repro.lint.shardsan.ShardSanViolation` carrying the offending
stack.  Test code itself (``tests.*``), construction (``__init__``) and
the world builder (``repro.netsim.build``) pass through — the contract
is on campaign-time code, not on how worlds are made.

Only the test *call* phase is sanitized; fixtures and collection run
unpatched so session-scoped world builds are unaffected.
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.lint.shardsan import ShardSan


def pytest_addoption(parser: "pytest.Parser") -> None:
    parser.addoption(
        "--shardsan",
        action="store_true",
        default=False,
        help="run every test inside the ShardSan shared-world sanitizer "
        "(repro.* code must only write @run_state-registered world state)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: "pytest.Item") -> Iterator[None]:
    if item.config.getoption("--shardsan"):
        with ShardSan(mode="raise", scope="repro"):
            yield
    else:
        yield
