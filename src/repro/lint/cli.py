"""``repro-lint`` — run the determinism & protocol-invariant checkers.

Usage::

    repro-lint src/                      # lint a tree, human output
    repro-lint --format json src/ > v.json
    repro-lint --select DET002,PKT001 src/repro/prober
    repro-lint --list-checkers

Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, TextIO

from .core import Violation, all_checkers, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & protocol-invariant static analysis "
        "for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def render_text(violations: Sequence[Violation], out: TextIO) -> None:
    for violation in violations:
        out.write(violation.format() + "\n")
    out.write(
        "%d violation%s found\n"
        % (len(violations), "" if len(violations) == 1 else "s")
    )


def render_json(violations: Sequence[Violation], out: TextIO) -> None:
    out.write(
        json.dumps(
            {
                "violations": [violation.to_json() for violation in violations],
                "count": len(violations),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    registry = all_checkers()
    if args.list_checkers:
        for rule in sorted(registry):
            out.write("%s  %s\n" % (rule, registry[rule].description))
        return 0
    if not args.paths:
        parser.print_usage(out)
        return 2

    select: Optional[List[str]] = None
    if args.select is not None:
        select = [piece.strip() for piece in args.select.split(",") if piece.strip()]
        unknown = [rule for rule in select if rule not in registry]
        if unknown:
            out.write(
                "unknown rule id(s): %s (try --list-checkers)\n"
                % ", ".join(sorted(unknown))
            )
            return 2

    try:
        violations = lint_paths(args.paths, select=select)
    except OSError as error:
        out.write("error: %s\n" % error)
        return 2

    if args.format == "json":
        render_json(violations, out)
    else:
        render_text(violations, out)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
