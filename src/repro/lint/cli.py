"""``repro-lint`` — run the determinism & protocol-invariant checkers.

Usage::

    repro-lint src/                      # file rules + whole-program pass
    repro-lint --format json src/ > v.json
    repro-lint --format sarif src/ > lint.sarif
    repro-lint --select DET101,RNG101 src/repro
    repro-lint --cache .lint-cache.json src/   # warm-start the analysis
    repro-lint --changed src/                  # only files dirty vs git HEAD
    repro-lint --exclude tests/lint/fixtures tests/ benchmarks/
    repro-lint --list-checkers

Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

Driver pipeline (order matters for LNT001, the unused-suppression
rule): file-phase checkers run per file; the whole-program pass
(DET101/RNG101/OBS101/MUT101-103) runs over every linted file at once, filtering
its findings through the *same* per-file suppression objects so usage
is recorded; post-phase checkers (LNT001) then judge the suppressions;
finally everything is merged and sorted by (path, line, rule-id) —
identical order in text, JSON and SARIF output.

The facts cache is opt-in (``--cache PATH``): the default invocation
writes nothing to disk.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Set, TextIO

from . import program as program_mod
from .core import (
    FileLint,
    Violation,
    all_checkers,
    finish_lint,
    iter_python_files,
    lint_source_state,
    violation_sort_key,
)
from .program.cache import FactsCache
from .sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & protocol-invariant static analysis "
        "for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PREFIX",
        help="skip files whose path starts with PREFIX (repeatable) — "
        "e.g. --exclude tests/lint/fixtures when linting the test tree, "
        "whose fixtures are deliberate violations",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed versus git HEAD (tracked "
        "modifications plus untracked files) under the given paths — "
        "fast pre-commit runs; falls back to the full file set when git "
        "is unavailable or this is not a work tree",
    )
    parser.add_argument(
        "--no-program",
        action="store_true",
        help="skip the whole-program pass (DET101/RNG101/OBS101/MUT10x/PERF10x)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="JSON facts cache for the whole-program pass (opt-in; "
        "created/updated atomically)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analysis statistics (files, graph size, cache hits) "
        "to stderr",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _normalize(path: str) -> str:
    path = path.replace("\\", "/")
    while path.startswith("./"):
        path = path[2:]
    return path.rstrip("/")


def excluded(path: str, prefixes: Sequence[str]) -> bool:
    """True when ``path`` sits under any of the ``--exclude`` prefixes."""
    norm = _normalize(path)
    for prefix in prefixes:
        cut = _normalize(prefix)
        if norm == cut or norm.startswith(cut + "/"):
            return True
    return False


def _git_lines(command: List[str]) -> Optional[List[str]]:
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, check=False
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_file_set() -> Optional[Set[str]]:
    """Absolute paths of files changed versus git HEAD, or None when
    git is unavailable / the cwd is not inside a work tree.

    "Changed" is the pre-commit notion: tracked files with staged or
    unstaged modifications (``git diff --name-only HEAD``) plus
    untracked files that are not ignored (``git ls-files --others
    --exclude-standard``).
    """
    toplevel = _git_lines(["git", "rev-parse", "--show-toplevel"])
    if not toplevel:
        return None
    root = toplevel[0]
    changed: Set[str] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        lines = _git_lines(command)
        if lines is None:
            return None
        changed.update(
            os.path.normcase(os.path.abspath(os.path.join(root, line)))
            for line in lines
        )
    return changed


def render_text(violations: Sequence[Violation], out: TextIO) -> None:
    for violation in violations:
        out.write(violation.format() + "\n")
    out.write(
        "%d violation%s found\n"
        % (len(violations), "" if len(violations) == 1 else "s")
    )


def render_json(violations: Sequence[Violation], out: TextIO) -> None:
    out.write(
        json.dumps(
            {
                "violations": [violation.to_json() for violation in violations],
                "count": len(violations),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _known_rules() -> Dict[str, str]:
    """Every rule id -> description: file checkers + program rules."""
    rules = {
        rule: checker.description for rule, checker in all_checkers().items()
    }
    rules.update(program_mod.PROGRAM_RULES)
    return rules


def _run_program_pass(
    states: Sequence[FileLint],
    select: Optional[List[str]],
    cache: Optional[FactsCache],
) -> "tuple[List[Violation], program_mod.Program]":
    sources = [
        program_mod.SourceFile(
            path=state.context.path,
            module=state.context.module,
            source=state.context.source,
            suppressions=state.context.suppressions,
        )
        for state in states
    ]
    analyzed = program_mod.analyze(sources, cache=cache)
    violations = program_mod.run_rules(analyzed, select=select)
    by_path = {state.context.path: state for state in states}
    for path, ran in analyzed.ran_rules.items():
        state = by_path.get(path)
        if state is not None:
            state.context.ran_rules.update(ran)
    return violations, analyzed


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    known = _known_rules()
    if args.list_checkers:
        for rule in sorted(known):
            out.write("%s  %s\n" % (rule, known[rule]))
        return 0
    if not args.paths:
        parser.print_usage(out)
        return 2

    select: Optional[List[str]] = None
    if args.select is not None:
        select = [piece.strip() for piece in args.select.split(",") if piece.strip()]
        unknown = [rule for rule in select if rule not in known]
        if unknown:
            out.write(
                "unknown rule id(s): %s (try --list-checkers)\n"
                % ", ".join(sorted(unknown))
            )
            return 2

    program_selected = (
        not args.no_program
        and (select is None or bool(set(select) & set(program_mod.PROGRAM_RULES)))
    )

    changed: Optional[Set[str]] = None
    if args.changed:
        changed = changed_file_set()
        if changed is None:
            sys.stderr.write(
                "repro-lint: --changed needs git and a work tree; "
                "linting the full file set\n"
            )

    states: List[FileLint] = []
    try:
        for file_path in iter_python_files(args.paths):
            if excluded(file_path, args.exclude):
                continue
            if changed is not None and (
                os.path.normcase(os.path.abspath(file_path)) not in changed
            ):
                continue
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            state = lint_source_state(source, path=file_path, select=select)
            state.context.known_rules.update(known)
            states.append(state)
    except OSError as error:
        out.write("error: %s\n" % error)
        return 2

    violations: List[Violation] = []
    cache: Optional[FactsCache] = None
    analyzed: Optional[program_mod.Program] = None
    if program_selected:
        cache = FactsCache(args.cache) if args.cache else None
        program_violations, analyzed = _run_program_pass(states, select, cache)
        by_path = {state.context.path: state for state in states}
        for violation in program_violations:
            state = by_path.get(violation.path)
            if state is not None:
                state.violations.append(violation)
            else:  # pragma: no cover - program pass only sees linted files
                violations.append(violation)
        if cache is not None:
            try:
                cache.save()
            except OSError as error:
                out.write("error: could not write cache: %s\n" % error)
                return 2

    for state in states:
        violations.extend(finish_lint(state, select))
    violations.sort(key=violation_sort_key)

    if args.stats:
        if analyzed is not None:
            sys.stderr.write(
                "repro-lint: %d files, %d functions, %d call edges, "
                "cache %d hit / %d miss\n"
                % (
                    len(states),
                    len(analyzed.graph.nodes),
                    analyzed.graph.edge_count,
                    analyzed.cache_hits,
                    analyzed.cache_misses,
                )
            )
        else:
            sys.stderr.write("repro-lint: %d files (file rules only)\n" % len(states))

    if args.format == "json":
        render_json(violations, out)
    elif args.format == "sarif":
        render_sarif(violations, known, out)
    else:
        render_text(violations, out)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
