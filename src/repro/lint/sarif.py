"""SARIF 2.1.0 rendering for ``repro-lint --format sarif``.

Static Analysis Results Interchange Format, the schema GitHub code
scanning ingests.  One run, one driver (``repro-lint``), one rule entry
per registered checker (file-phase and whole-program alike), one result
per violation.  Output is deterministic: results arrive already sorted
by (path, line, rule-id, column), rules are listed in sorted id order,
and the JSON is dumped with sorted keys.

Paths are emitted as given on the command line, normalized to forward
slashes — relative invocations (``repro-lint src/``) therefore produce
repo-relative artifact URIs, which is what the upload action expects.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, TextIO

from .core import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro-lint"  # no public homepage; stable placeholder


def _artifact_uri(path: str) -> str:
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def sarif_document(
    violations: Sequence[Violation], rules: Dict[str, str]
) -> Dict[str, object]:
    """Build the SARIF log object (pure data; see :func:`render_sarif`).

    ``rules`` maps every rule id the run *could* have produced to its
    one-line description, so code-scanning UIs can show rule help even
    for rules with zero findings.
    """
    rule_entries = [
        {
            "id": rule,
            "name": rule,
            "shortDescription": {"text": rules[rule]},
            "helpUri": "%s#%s" % (TOOL_URI, rule.lower()),
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(rules)
    ]
    rule_index = {rule: index for index, rule in enumerate(sorted(rules))}
    results: List[Dict[str, object]] = []
    for violation in violations:
        result: Dict[str, object] = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(violation.path),
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column,
                        },
                    }
                }
            ],
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rule_entries,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    violations: Sequence[Violation], rules: Dict[str, str], out: TextIO
) -> None:
    out.write(
        json.dumps(sarif_document(violations, rules), indent=2, sort_keys=True)
        + "\n"
    )
