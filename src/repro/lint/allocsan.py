"""AllocSan — runtime allocation-budget sanitizer for campaign hot paths.

The static PERF101–103 rules prove the *shape* of the hot region's
allocation behaviour (no per-iteration temporaries, no superlinear
accumulators); AllocSan is their dynamic counterpart.  It subclasses
:class:`repro.obs.profiler.WallProfiler` — the campaign already threads
a profiler through every phase — and accounts interpreter allocations
around the hot phases:

* ``tracemalloc`` traced bytes: net Python-level memory retained across
  the phase, plus the peak transient footprint above the phase's start.
* ``sys.getallocatedblocks()``: net allocator blocks (objects) retained,
  which catches object churn that byte counts round away.

Because it *is* a ``WallProfiler``, the campaign needs zero changes:
pass an :class:`AllocSanProfiler` through the existing ``profiler=``
parameter and the ``campaign.run`` phase (and its ``emit.craft``
aggregate, which counts crafted blocks) lands here automatically.

The per-run numbers normalize into two **budgets**:

* ``allocsan.bytes_per_probe`` — net traced bytes of the hot phases
  divided by probes sent.  Every probe legitimately retains its record;
  the budget bounds how much *extra* garbage a probe may leave behind.
* ``allocsan.blocks_per_batch`` — net allocator blocks divided by
  crafted blocks (``emit.craft`` count; falls back to
  ``probes / DEFAULT_BATCH`` on the per-event path).

Budgets land in a ``tracked`` section shaped exactly like
``benchmarks/emit.py`` payloads (``direction: "lower"`` — growth is a
regression), so CI can gate a fresh report against the previous run with
``python -m benchmarks.emit REPORT.json --baseline BASELINE.json``, and
:func:`check_budgets` enforces the absolute ceilings locally.

Accounting is observe-only: the ``.yrp6`` bytes of an AllocSan run are
byte-identical to an unsanitized run (tracemalloc never perturbs the
simulation, only the interpreter's allocator bookkeeping).
"""

from __future__ import annotations

import json
import sys
import tracemalloc
from typing import Any, Dict, List, Optional

from ..obs.profiler import WallProfiler

#: Phases whose allocations are accounted.  ``campaign.run`` is the
#: engine drain — everything the PERF rules call "hot" executes inside.
HOT_PHASES = frozenset({"campaign.run"})

#: Fallback batch size for normalizing block counts when the campaign
#: ran the per-event reference path (no ``emit.craft`` aggregate) —
#: mirrors :data:`repro.prober.campaign.DEFAULT_BATCH`.
DEFAULT_BATCH = 256

#: Absolute ceilings enforced by :func:`check_budgets`.  Measured on the
#: CI smoke campaign (848 probes over 4 crafted blocks: ~457 bytes per
#: probe retained, ~1.7k blocks per crafted block) and set with ~2x
#: headroom so interpreter-version jitter never trips them while a
#: reintroduced per-iteration allocation (hundreds of bytes per probe)
#: still does.
DEFAULT_BUDGETS: Dict[str, float] = {
    "allocsan.bytes_per_probe": 900.0,
    "allocsan.blocks_per_batch": 3000.0,
}

#: Allowed fractional drift for the --baseline comparison; looser than
#: benchmarks' wall-clock default because allocator numbers move with
#: the interpreter's minor version.
TRACK_THRESHOLD = 0.5


class AllocSample:
    """Allocation deltas across one closed hot phase."""

    __slots__ = ("phase", "traced_bytes", "peak_bytes", "blocks")

    def __init__(
        self, phase: str, traced_bytes: int, peak_bytes: int, blocks: int
    ) -> None:
        self.phase = phase
        #: Net tracemalloc bytes retained across the phase.
        self.traced_bytes = traced_bytes
        #: Peak tracemalloc bytes above the phase's starting size.
        self.peak_bytes = peak_bytes
        #: Net allocator blocks (roughly: live objects) retained.
        self.blocks = blocks

    def to_json(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "traced_bytes": self.traced_bytes,
            "peak_bytes": self.peak_bytes,
            "blocks": self.blocks,
        }


class AllocSanProfiler(WallProfiler):
    """A :class:`WallProfiler` that books allocation deltas around hot
    phases.

    Use as a context manager so tracemalloc is started and stopped
    around the campaign (an already-tracing interpreter is left alone)::

        with AllocSanProfiler() as prof:
            result = run_yarrp6(..., profiler=prof)
        report = build_report(prof, result)
    """

    hot_phases = HOT_PHASES

    def __init__(self) -> None:
        super().__init__()
        #: span index -> (traced bytes, allocated blocks) at phase open.
        self._alloc_open: Dict[int, "tuple[int, int]"] = {}
        self.samples: List[AllocSample] = []
        self._owns_tracing = False

    # -- tracemalloc lifecycle -------------------------------------------
    def start(self) -> None:
        """Begin tracing unless some outer scope already is."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracing = True

    def stop(self) -> None:
        if self._owns_tracing:
            tracemalloc.stop()
            self._owns_tracing = False

    def __enter__(self) -> "AllocSanProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- phase hooks ------------------------------------------------------
    def phase(self, name: str, **attrs: Any) -> Any:
        index = len(self.spans)
        handle = super().phase(name, **attrs)
        if name in self.hot_phases and tracemalloc.is_tracing():
            # One hot phase open at a time in practice, so resetting the
            # global peak here scopes peak_bytes to this phase.
            tracemalloc.reset_peak()
            self._alloc_open[index] = (
                tracemalloc.get_traced_memory()[0],
                sys.getallocatedblocks(),
            )
        return handle

    def _close(self, index: int) -> None:
        super()._close(index)
        opened = self._alloc_open.pop(index, None)
        if opened is not None and tracemalloc.is_tracing():
            traced_start, blocks_start = opened
            current, peak = tracemalloc.get_traced_memory()
            self.samples.append(
                AllocSample(
                    self.spans[index].name,
                    current - traced_start,
                    max(0, peak - traced_start),
                    sys.getallocatedblocks() - blocks_start,
                )
            )

    # -- readout ----------------------------------------------------------
    def agg_count(self, name: str) -> int:
        """Total interval count across every aggregate named ``name``
        (``emit.craft`` counts crafted blocks on the batched path)."""
        return sum(
            int(entry[0])
            for (_, agg_name), entry in self._aggs.items()
            if agg_name == name
        )


def _tracked(value: float) -> Dict[str, Any]:
    """One ``tracked`` entry in the ``benchmarks/emit.py`` shape:
    ``direction: "lower"`` makes growth a regression under
    ``python -m benchmarks.emit REPORT --baseline BASELINE``."""
    return {
        "value": float(value),
        "direction": "lower",
        "threshold": TRACK_THRESHOLD,
    }


def build_report(
    profiler: AllocSanProfiler, result: Any
) -> Dict[str, Any]:
    """Normalize a sanitized campaign into the budget report payload.

    ``result`` is any campaign result with a ``sent`` probe count.  The
    report carries the raw samples, the normalized budget values, and a
    ``tracked`` section compatible with the benchmark baseline gate.
    """
    probes = int(getattr(result, "sent", 0) or 0)
    batches = profiler.agg_count("emit.craft")
    if batches <= 0:
        # Per-event path: normalize against the batch size the columnar
        # path would have used, so the two paths share one budget scale.
        batches = max(1, (probes + DEFAULT_BATCH - 1) // DEFAULT_BATCH)
    traced = sum(sample.traced_bytes for sample in profiler.samples)
    blocks = sum(sample.blocks for sample in profiler.samples)
    peak = max(
        (sample.peak_bytes for sample in profiler.samples), default=0
    )
    bytes_per_probe = traced / probes if probes else 0.0
    blocks_per_batch = blocks / batches
    return {
        "sanitizer": "allocsan",
        "probes": probes,
        "batches": batches,
        "hot_phases": sorted({sample.phase for sample in profiler.samples}),
        "samples": [sample.to_json() for sample in profiler.samples],
        "traced_bytes": traced,
        "peak_bytes": peak,
        "allocated_blocks": blocks,
        "budgets": dict(DEFAULT_BUDGETS),
        "tracked": {
            "allocsan.bytes_per_probe": _tracked(bytes_per_probe),
            "allocsan.blocks_per_batch": _tracked(blocks_per_batch),
        },
    }


def check_budgets(
    report: Dict[str, Any], budgets: Optional[Dict[str, float]] = None
) -> List[str]:
    """Budget violations for a :func:`build_report` payload; empty means
    the run fits.  Budgets are absolute ceilings on the tracked values
    (the relative drift gate is ``benchmarks.emit --baseline``)."""
    limits = DEFAULT_BUDGETS if budgets is None else budgets
    tracked = report.get("tracked", {})
    failures: List[str] = []
    for name in sorted(limits):
        entry = tracked.get(name)
        if entry is None:
            failures.append("%s: budgeted but missing from report" % name)
            continue
        value = float(entry["value"])
        ceiling = float(limits[name])
        if value > ceiling:
            failures.append(
                "%s: %.1f exceeds budget %.1f" % (name, value, ceiling)
            )
    return failures


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Write the report canonically (sorted keys) so successive runs
    diff cleanly, mirroring ``benchmarks.emit.emit_json``."""
    with open(path, "w") as sink:
        json.dump(report, sink, sort_keys=True, separators=(",", ": "), indent=1)
        sink.write("\n")
