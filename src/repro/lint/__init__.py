"""``repro.lint`` — determinism & protocol-invariant static analysis.

The simulation's headline guarantee — ``run_parallel(spec, N)`` is
bit-identical to the single-process campaign for any ``N`` — rests on
properties no unit test can exhaustively defend: no wall-clock reads in
hot paths, no unseeded randomness, no iteration order leaking out of an
unordered container into results, no unpicklable field sneaking into a
worker-boundary spec, and packet-layer byte-length constants that match
the structs actually emitted.  This package checks those properties at
the AST level so violations fail CI instead of diverging a 4-worker
campaign at runtime.

Rules (see ``docs/determinism.md`` for the full contract):

========  ============================================================
rule      what it catches
========  ============================================================
DET001    nondeterminism sources: ``time.time``, ``datetime.now``,
          module-level ``random.*``, ``os.urandom``, ``uuid.uuid4``,
          unseeded ``random.Random()``, builtin ``hash()``
DET002    iteration over ``set``/``frozenset`` values in order-
          sensitive packages (``prober``, ``netsim``, ``analysis``)
          outside ``sorted(...)`` or a ``# lint: ordered`` annotation
DET003    worker-boundary dataclasses (``CampaignSpec`` &c.) carrying
          field types outside the declared picklable set
PKT001    packet byte-length / checksum-neutrality invariants
          (header ``pack()`` vs ``HEADER_LENGTH``, the 12-byte Yarrp6
          payload contract in ``prober/encoding.py``)
========  ============================================================

Use the CLI (``repro-lint src/`` or ``python -m repro.lint.cli src/``)
or the library entry points below.
"""

from .core import (
    Checker,
    LintContext,
    Violation,
    all_checkers,
    lint_file,
    lint_paths,
    lint_source,
    register,
)

# Importing the checkers package registers the built-in rules.
from . import checkers as _checkers  # noqa: F401

__all__ = [
    "Checker",
    "LintContext",
    "Violation",
    "all_checkers",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
