"""Pytest plugin wiring FaultSan into the test suite.

Registered from the repository-root ``conftest.py``.  Opt in with::

    pytest --faultsan

Tests marked ``@pytest.mark.faultsan`` are the chaos grid: they drive
real worker pools through injected crash / hang / SIGKILL /
corrupt-pickle plans (see :mod:`repro.lint.faultsan`) and assert the
supervised runner's recovery paths stay byte-identical to unfaulted
runs.  They spawn pools, kill processes, and sleep past deadlines, so
they are skipped by default and run in CI's dedicated ``chaos`` job
under ``timeout``; the fast always-on recovery tests live unmarked in
``tests/prober/test_supervise.py``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: "pytest.Parser") -> None:
    parser.addoption(
        "--faultsan",
        action="store_true",
        default=False,
        help="run the FaultSan chaos tests (fault-injected worker pools; "
        "slow, process-killing — CI runs these in the chaos job)",
    )


def pytest_configure(config: "pytest.Config") -> None:
    config.addinivalue_line(
        "markers",
        "faultsan: chaos test driving fault-injected worker pools; "
        "runs only with --faultsan",
    )


def pytest_collection_modifyitems(
    config: "pytest.Config", items: "list[pytest.Item]"
) -> None:
    if config.getoption("--faultsan"):
        return
    skip = pytest.mark.skip(reason="needs --faultsan (chaos suite)")
    for item in items:
        if item.get_closest_marker("faultsan") is not None:
            item.add_marker(skip)
