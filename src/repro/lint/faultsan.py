"""FaultSan: deterministic fault injection for the supervised runner.

Sibling to DetSan (runtime nondeterminism tripwires) and ShardSan
(shared-world write tracking), FaultSan attacks from the other side: it
*manufactures* the failures the supervisor in
:mod:`repro.prober.supervise` claims to survive, deterministically, so
a differential test can assert that every recovery path — retry,
degradation, multi-failure abort — still produces merged dumps
byte-identical to an unfaulted run.

A :class:`FaultPlan` is a frozen set of :class:`Fault` tuples, each
naming exactly one ``(shard, attempt, site)`` and a fault kind.  The
plan travels *inside the worker payload* (it is a pure picklable
value), so injection works identically under fork and spawn start
methods, and an attempt not named by any fault runs completely clean —
which is what makes the retry differential meaningful: attempt 1
crashes, attempt 2 is indistinguishable from a first try.

Injection sites (the supervised worker calls :func:`inject` at each):

- ``worker.start`` — before ``run_shard``; faults here cost no
  simulation work (crash, hang, sigkill, slow).
- ``worker.result`` — after ``run_shard``, wrapping the result on its
  way to the pool pipe (corrupt: the result is made unpicklable, which
  surfaces parent-side exactly like a real pickling failure).

Fault kinds: ``crash`` (raise :class:`FaultInjected`), ``hang`` (sleep
``seconds`` — pair with a shard timeout), ``sigkill`` (the worker
SIGKILLs itself: the silent OOM-killer shape), ``corrupt`` (return an
:class:`Unpicklable` wrapper), ``slow`` (sleep ``seconds`` then
continue — exercises deadline slack without failing).

Enable in tests with ``pytest --faultsan`` (see
:mod:`repro.lint.faultsan_pytest`); the chaos grid lives in
``tests/prober/test_faultsan.py``.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Injection site names, in worker execution order.
SITE_WORKER_START = "worker.start"
SITE_WORKER_RESULT = "worker.result"
SITES = (SITE_WORKER_START, SITE_WORKER_RESULT)

KIND_CRASH = "crash"
KIND_HANG = "hang"
KIND_SIGKILL = "sigkill"
KIND_CORRUPT = "corrupt"
KIND_SLOW = "slow"
#: Register a worker-exit marker file (see :func:`inject`): proves the
#: pool was shut down with ``close()``/``join()`` — ``terminate()``
#: kills workers before their exit finalizers run.
KIND_MARK_EXIT = "mark-exit"
KINDS = (KIND_CRASH, KIND_HANG, KIND_SIGKILL, KIND_CORRUPT, KIND_SLOW)


class FaultInjected(RuntimeError):
    """The exception a ``crash`` fault raises inside the worker."""


class Unpicklable:
    """A result wrapper whose pickling always fails.

    Returned from a ``corrupt`` fault: the pool worker fails to encode
    it onto the result pipe, and the parent sees the same
    ``MaybeEncodingError`` a genuinely corrupt result would produce.
    """

    def __reduce__(self) -> Tuple[Any, ...]:
        raise FaultInjected("corrupt fault: result made unpicklable")


@dataclass(frozen=True)
class Fault:
    """One injected fault at exactly one ``(shard, attempt, site)``."""

    shard: int
    kind: str
    attempt: int = 1
    site: str = SITE_WORKER_START
    #: Sleep length for ``hang``/``slow`` faults, ignored otherwise.
    seconds: float = 60.0
    #: Directory for ``mark-exit`` marker files, ignored otherwise.
    path: str = ""

    def matches(self, shard: int, attempt: int, site: str) -> bool:
        return (
            self.shard == shard
            and self.attempt == attempt
            and self.site == site
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable set of faults for one campaign."""

    faults: Tuple[Fault, ...]

    @classmethod
    def single(cls, shard: int, kind: str, **kwargs: Any) -> "FaultPlan":
        return cls((Fault(shard=shard, kind=kind, **kwargs),))

    @classmethod
    def exhaust(
        cls, shard: int, kind: str, attempts: int, **kwargs: Any
    ) -> "FaultPlan":
        """Fault every attempt ``1..attempts`` of ``shard``: with
        ``max_retries = attempts - 1`` the shard runs out of retries."""
        return cls(
            tuple(
                Fault(shard=shard, kind=kind, attempt=attempt, **kwargs)
                for attempt in range(1, attempts + 1)
            )
        )

    def at(self, shard: int, attempt: int, site: str) -> Optional[Fault]:
        for fault in self.faults:
            if fault.matches(shard, attempt, site):
                return fault
        return None


def seeded_plan(
    seed: int,
    shards: int,
    kinds: Tuple[str, ...] = KINDS,
    faults: int = 1,
    attempts: int = 1,
    seconds: float = 0.01,
) -> FaultPlan:
    """A reproducible plan drawn from the ``shards x attempts x kinds``
    grid: the same seed always yields the same plan (an explicitly
    seeded ``random.Random`` — the sanctioned DET001 shape)."""
    rng = random.Random(seed)
    chosen = []
    for _ in range(faults):
        kind = kinds[rng.randrange(len(kinds))]
        site = SITE_WORKER_RESULT if kind == KIND_CORRUPT else SITE_WORKER_START
        chosen.append(
            Fault(
                shard=rng.randrange(shards),
                kind=kind,
                attempt=1 + rng.randrange(attempts),
                site=site,
                seconds=seconds,
            )
        )
    return FaultPlan(tuple(chosen))


def inject(
    plan: Optional[FaultPlan],
    shard: int,
    attempt: int,
    site: str,
    value: Any = None,
) -> Any:
    """Fire the plan's fault for ``(shard, attempt, site)``, if any.

    Returns ``value`` unchanged when no fault matches (or the plan is
    ``None``), so call sites thread results straight through.  A
    ``corrupt`` fault swaps ``value`` for an :class:`Unpicklable`.
    """
    if plan is None:
        return value
    fault = plan.at(shard, attempt, site)
    if fault is None:
        return value
    if fault.kind == KIND_CRASH:
        raise FaultInjected(
            "crash fault at %s (shard %d, attempt %d)" % (site, shard, attempt)
        )
    if fault.kind == KIND_HANG or fault.kind == KIND_SLOW:
        time.sleep(fault.seconds)
        return value
    if fault.kind == KIND_SIGKILL:
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable: SIGKILL delivered")  # pragma: no cover
    if fault.kind == KIND_CORRUPT:
        return Unpicklable()
    if fault.kind == KIND_MARK_EXIT:
        # Pool workers leave through os._exit, which skips the atexit
        # module; multiprocessing.util finalizers DO run on a clean
        # worker shutdown (BaseProcess._bootstrap calls _exit_function
        # in its finally) and are skipped by terminate()'s SIGTERM —
        # exactly the close()/join() discriminator the test needs.
        from multiprocessing import util

        pid = os.getpid()
        marker = os.path.join(fault.path, "worker-%d.exited" % pid)

        def mark() -> None:
            with open(marker, "w") as sink:
                sink.write("clean exit\n")

        util.Finalize(None, mark, exitpriority=0)
        return value
    raise ValueError("unknown fault kind: %r" % fault.kind)
