"""Pytest plugin wiring DetSan into the test suite.

Registered from the repository-root ``conftest.py``.  Opt in with::

    PYTHONHASHSEED=0 pytest --detsan

Every test body then runs inside ``DetSan(mode="raise", scope="repro")``:
any ``repro.*`` code path that reads host time (outside
``repro.obs.wallclock``) or OS entropy fails that test with a
:class:`~repro.lint.detsan.DetSanViolation` carrying the offending
stack.  Test code itself (``tests.*``) and third-party internals pass
through — the contract is on the library, not on the harness.

Only the test *call* phase is sanitized; fixtures and collection run
unpatched so harness-level timing (e.g. hypothesis deadlines,
tmp-path bookkeeping) is unaffected.
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.lint.detsan import DetSan


def pytest_addoption(parser: "pytest.Parser") -> None:
    parser.addoption(
        "--detsan",
        action="store_true",
        default=False,
        help="run every test inside the DetSan determinism sanitizer "
        "(repro.* code must not touch host time or OS entropy)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: "pytest.Item") -> Iterator[None]:
    if item.config.getoption("--detsan"):
        with DetSan(mode="raise", scope="repro"):
            yield
    else:
        yield
