"""DET101: transitive impurity reachable from the engine's entry points.

DET001 catches a direct ``time.time()`` in simulation code; DET101
catches the one hidden two hops away.  A function is **impure** when it
contains a DET001-banned call or (transitively) calls an impure
function; a function is **reachable** when a forward walk from the
program roots (``Engine.run``, ``run_campaign``, the parallel-runner
workers, anything marked ``# repro-lint: program-root``) can arrive at
it over call or callback-reference edges.  Every reachable impure
function is a finding, anchored at the call that leads toward the
banned source, with the full witness chain in the message::

    'campaign.run_campaign.tick' is reachable from program root
    'campaign.run_campaign' and reaches nondeterministic time.time() via
    campaign.run_campaign.tick -> engine.jitter_us -> time.time

``repro.obs.wallclock`` is the single allowed wall-clock sink: its time
reads are exempted at fact-extraction time, so calling ``obs.now()``
from reachable code is clean (entropy sources stay banned even there).

A banned call whose line carries ``# repro-lint: disable=DET001`` (or
``=DET101``) is not an impurity seed — the suppression is an audited
assertion that the nondeterminism cannot escape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import Suppressions, Violation
from .graph import ProgramGraph

RULE = "DET101"
DESCRIPTION = (
    "whole-program: no call chain from Engine.run / prober loops / "
    "parallel workers may reach a DET001-banned source (repro.obs."
    "wallclock is the single allowed wall-clock sink)"
)

#: Bumped when this checker's logic changes; folded into the facts-cache
#: key so stale cached analysis never survives a rule edit.
VERSION = 1

#: witness: (next function on the chain or None, banned target, anchor line)
_Witness = Tuple[Optional[str], str, int]


def check(
    graph: ProgramGraph, suppressions: Dict[str, Suppressions]
) -> List[Violation]:
    impure = _impurity(graph, suppressions)
    reached = graph.reachable()
    violations: List[Violation] = []
    for full in sorted(impure):
        if full not in reached:
            continue
        _, _, path = graph.nodes[full]
        next_hop, banned, line = impure[full]
        chain = _chain(graph, full, impure)
        violations.append(
            Violation(
                rule=RULE,
                path=path,
                line=line,
                column=1,
                message=(
                    "'%s' is reachable from program root '%s' and reaches "
                    "nondeterministic %s via %s"
                    % (
                        graph.display(full),
                        graph.display(reached[full]),
                        _callable_label(banned),
                        " -> ".join(chain),
                    )
                ),
            )
        )
    return violations


def _callable_label(banned: str) -> str:
    head = banned.split(" ", 1)
    suffix = " " + head[1] if len(head) > 1 else ""
    return "%s()%s" % (head[0], suffix)


def _impurity(
    graph: ProgramGraph, suppressions: Dict[str, Suppressions]
) -> Dict[str, _Witness]:
    impure: Dict[str, _Witness] = {}
    for full in sorted(graph.nodes):
        fact, _, path = graph.nodes[full]
        supp = suppressions.get(path)
        for target, line in fact.banned:
            if supp is not None and (
                supp.is_disabled("DET001", line) or supp.is_disabled(RULE, line)
            ):
                continue
            impure[full] = (None, target, line)
            break
    # Reverse propagation to a fixpoint: a caller of an impure function
    # is impure, witnessed by the call line.  Deterministic order.
    changed = True
    while changed:
        changed = False
        for src in sorted(graph.edges):
            if src in impure:
                continue
            for edge in graph.edges[src]:
                if edge.dst in impure:
                    impure[src] = (edge.dst, impure[edge.dst][1], edge.line)
                    changed = True
                    break
    return impure


def _chain(
    graph: ProgramGraph, start: str, impure: Dict[str, _Witness]
) -> List[str]:
    chain = []
    current: Optional[str] = start
    seen = set()
    banned = impure[start][1]
    while current is not None and current not in seen:
        seen.add(current)
        chain.append(graph.display(current))
        banned = impure[current][1]
        current = impure[current][0]
    chain.append(banned.split(" ", 1)[0])
    return chain
