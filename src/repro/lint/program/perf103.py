"""PERF103: no numpy↔Python scalar churn in hot regions.

The vectorized Feistel walk (``KeyedPermutation._images_vector``) pays
for itself only while work stays inside numpy: every ``.item()`` call,
element-wise index, or Python-level loop over an array crosses the
boundary and boxes one scalar per element, usually erasing the win.
``np.append`` is the allocation twin — it copies the whole array per
call.  This rule flags the churn patterns inside the hot region
(reachable from a ``# repro-lint: hot-loop`` root, build cut applied):

* ``.item()`` calls inside a loop (or anywhere in a hot root's body);
* element-wise indexing of an array local by a loop variable
  (mask/fancy indexing like ``values[walking]`` is vectorized and
  deliberately NOT flagged);
* ``for x in arr:`` directly over an array local;
* ``np.append`` inside a loop.

Array locals are recognized by assignment from ``numpy.*`` calls (or
attribute calls on an already-known array local).  Findings carry the
witness call chain from the hot root.  The sanctioned exit from numpy
is one bulk conversion per batch — ``values.tolist()``.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import Violation
from . import perf
from .facts import FileFacts
from .graph import ProgramGraph

RULE = "PERF103"
VERSION = 1
DESCRIPTION = (
    "whole-program: no numpy<->Python scalar churn (.item() loops, "
    "element-wise indexing, np.append) in functions reachable from a "
    "# repro-lint: hot-loop root"
)

KINDS = frozenset(
    {"scalar-item", "scalar-index", "iterate-array", "np-append"}
)


def check(
    graph: ProgramGraph, facts: Dict[str, FileFacts]
) -> List[Violation]:
    from . import escape

    roots, reached = perf.hot_region(graph)
    violations: List[Violation] = []
    for full in sorted(reached):
        fact, _, path = graph.nodes[full]
        is_root = full in roots
        for site in fact.perf:
            if site["rule"] != RULE or site["kind"] not in KINDS:
                continue
            if not (site["loop"] or is_root):
                continue
            chain = escape.witness_chain(graph, reached, full)
            root = reached[full].root
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=site["line"],
                    column=1,
                    message=(
                        "'%s' is in the hot region rooted at '%s' and "
                        "crosses the numpy<->Python scalar boundary: %s "
                        "via %s"
                        % (
                            graph.display(full),
                            graph.display(root),
                            site["detail"],
                            " -> ".join(chain),
                        )
                    ),
                )
            )
    return violations
