"""Content-hash facts cache for the whole-program analysis.

One JSON document maps each file path to a sha256 of its bytes plus the
extracted :class:`~repro.lint.program.facts.FileFacts`.  On a warm run
only changed files are re-parsed; graph construction and the
interprocedural rules always run fresh (they are cheap — the AST walks
are the expensive part).

The cache is opt-in (``repro-lint --cache PATH``): the default CLI run
writes nothing, so linting a read-only checkout stays side-effect-free.
Writes are atomic (tmp file + ``os.replace``) so a crashed run can never
leave a truncated document, and any unreadable/undecodable cache file is
treated as empty rather than an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Any, Dict, Optional

from . import (
    det101,
    mut101,
    mut102,
    mut103,
    obs101,
    perf101,
    perf102,
    perf103,
    rng101,
)
from .facts import FACTS_VERSION, FileFacts, extract_facts

#: Every whole-program checker whose logic version invalidates the cache.
_CHECKERS = (
    det101,
    rng101,
    obs101,
    mut101,
    mut102,
    mut103,
    perf101,
    perf102,
    perf103,
)


def checker_token() -> str:
    """One string fingerprinting every checker's logic version.

    Facts themselves are a pure function of file bytes, but a cached
    document written by an older repo checkout may predate a rule edit
    that changed *what facts mean* (new store kinds, different alias
    handling).  Folding each rule's ``VERSION`` into the cache key means
    bumping a checker constant is enough to flush every stale entry.
    """
    return ",".join(
        "%s=%d" % (module.RULE, module.VERSION) for module in _CHECKERS
    )


def interpreter_token() -> str:
    """The Python feature version the cache was written under.

    ``ast.parse`` output is version-dependent (new node types, changed
    ``lineno`` conventions), so facts extracted under 3.9 are not
    trustworthy under 3.12 even for byte-identical sources.  Without
    this key a cache file shared across interpreters — a CI cache
    restored into a different matrix leg, a local venv switch — would
    be silently trusted.
    """
    return "%d.%d" % sys.version_info[:2]


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FactsCache:
    """path -> (content hash, facts) with an on-disk JSON baseline."""

    def __init__(self, cache_path: Optional[str] = None):
        self.cache_path = cache_path
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if cache_path is not None:
            self._load(cache_path)

    def _load(self, cache_path: str) -> None:
        try:
            with open(cache_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("version") != FACTS_VERSION:
            return
        if payload.get("checkers") != checker_token():
            return  # a rule's logic changed; every cached fact is suspect
        if payload.get("python") != interpreter_token():
            return  # written under a different interpreter's AST
        files = payload.get("files")
        if isinstance(files, dict):
            self.entries = files

    def facts_for(self, path: str, source: str, module: str) -> FileFacts:
        """Cached facts when the content hash matches, else re-extract."""
        digest = content_hash(source)
        entry = self.entries.get(path)
        if entry is not None and entry.get("hash") == digest:
            try:
                facts = FileFacts.from_dict(entry["facts"])
            except (KeyError, TypeError):
                pass
            else:
                if facts.module == module:
                    self.hits += 1
                    return facts
        self.misses += 1
        facts = extract_facts(source, module)
        self.entries[path] = {"hash": digest, "facts": facts.to_dict()}
        return facts

    def save(self) -> None:
        if self.cache_path is None:
            return
        payload = {
            "version": FACTS_VERSION,
            "checkers": checker_token(),
            "python": interpreter_token(),
            "files": self.entries,
        }
        tmp_path = self.cache_path + ".tmp"
        directory = os.path.dirname(os.path.abspath(self.cache_path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp_path, self.cache_path)
