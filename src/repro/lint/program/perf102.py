"""PERF102: no superlinear accumulation in hot regions.

A hot loop that does O(n) work per iteration turns an O(n) campaign
into O(n²) — precisely the failure mode Yarrp's stateless design (and
our columnar batch loop) exists to avoid.  This rule flags the classic
accidentally-quadratic patterns inside the hot region (reachable from a
``# repro-lint: hot-loop`` root, build cut applied):

* ``bytes``/``str`` ``+=`` concatenation on a sequence-initialized
  local (each ``+=`` copies everything accumulated so far);
* ``list.insert(0, ...)`` (shifts the whole list per call);
* membership tests against a list-initialized local (linear scan per
  probe — use a set);
* ``sorted()`` / ``.sort()`` inside a loop (full re-sort per turn).

Sites count when they sit inside a syntactic loop, or anywhere in a hot
*root's* body (the root function is itself the loop body).  Findings
carry the witness call chain from the hot root.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import Violation
from . import perf
from .facts import FileFacts
from .graph import ProgramGraph

RULE = "PERF102"
VERSION = 1
DESCRIPTION = (
    "whole-program: no superlinear accumulation (bytes/str +=, "
    "list.insert(0), list membership tests, sorted() in loops) in "
    "functions reachable from a # repro-lint: hot-loop root"
)

KINDS = frozenset(
    {"seq-concat", "insert-front", "list-membership", "sort-in-loop"}
)


def check(
    graph: ProgramGraph, facts: Dict[str, FileFacts]
) -> List[Violation]:
    from . import escape

    roots, reached = perf.hot_region(graph)
    violations: List[Violation] = []
    for full in sorted(reached):
        fact, _, path = graph.nodes[full]
        is_root = full in roots
        for site in fact.perf:
            if site["rule"] != RULE or site["kind"] not in KINDS:
                continue
            if not (site["loop"] or is_root):
                continue
            chain = escape.witness_chain(graph, reached, full)
            root = reached[full].root
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=site["line"],
                    column=1,
                    message=(
                        "'%s' is in the hot region rooted at '%s' and "
                        "accumulates superlinearly: %s via %s"
                        % (
                            graph.display(full),
                            graph.display(root),
                            site["detail"],
                            " -> ".join(chain),
                        )
                    ),
                )
            )
    return violations
