"""Per-function performance-site extraction and hot-region machinery.

The PerfSan half of the whole-program analysis mirrors the mutation
layer: every function is distilled at fact-extraction time into a list
of **perf sites** — allocation expressions, superlinear accumulation
patterns, and numpy↔Python scalar churn — each tagged with whether it
sits inside a syntactic loop.  The PERF rules then intersect those
sites with the **hot region**: every function reachable (build cut
applied — constructing a world or a template is setup, not steady
state) from a hot root.

Hot roots come from two places, mirroring ``program-root``:

* ``# repro-lint: hot-loop`` on (or immediately above) a ``def`` line —
  the function *is the body of* a per-probe/per-batch loop, so its own
  straight-line code counts as per-iteration context even outside a
  syntactic ``for``/``while``;
* :data:`DEFAULT_HOT_ROOTS`, the known hot paths of the prober: the
  ``run_campaign`` batch loop, ``Engine.run_batch``, the keyed
  permutation, template encoding, and the receive/deliver path.

Each perf site is a plain dict (JSON-cacheable alongside the rest of
:class:`~repro.lint.program.facts.FileFacts`)::

    {"rule": "PERF101", "kind": "comprehension", "line": 17,
     "loop": true, "detail": "a throwaway list comprehension"}

``loop`` records syntactic loop context only; whether a non-loop site
counts as per-iteration (hot-root bodies do) is decided at rule time so
the facts stay a pure function of the file's bytes.
"""

from __future__ import annotations

import ast
import re
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..checkers.common import dotted_name, resolve_call_target

if TYPE_CHECKING:  # pragma: no cover - avoids a facts -> perf -> graph cycle
    from . import escape
    from .graph import ProgramGraph

#: ``# repro-lint: hot-loop`` on a ``def`` line marks the function as a
#: PERF hot root: it is the body of a per-probe or per-batch loop, so
#: allocations in its straight-line code happen once per iteration.
HOT_ROOT_MARK = re.compile(r"#\s*repro-lint:\s*hot-loop\b")

#: The prober's known hot paths (full dotted node names), used even
#: without a source marker so the rules guard third-party-style trees.
DEFAULT_HOT_ROOTS: FrozenSet[str] = frozenset(
    {
        "repro.prober.campaign.run_campaign.block_tick",
        "repro.prober.campaign.run_campaign.deliver_batched",
        "repro.netsim.engine.Engine.run_batch",
        "repro.prober.permutation.KeyedPermutation.images",
        "repro.prober.permutation.KeyedPermutation.images_scalar",
        "repro.prober.encoding.ProbeTemplate.encode_into",
        "repro.prober.encoding.encode_probe_into",
        "repro.prober.yarrp6.Yarrp6.next_probes",
        "repro.prober.yarrp6.Yarrp6.receive",
    }
)

#: Class-looking callable (CapWords, not an ALL_CAPS constant).
_CLASS_NAME = re.compile(r"^[A-Z][A-Za-z0-9]*$")
#: Exception-looking class names — constructing one sits on the raise
#: path, which is not steady-state allocation.
_EXCEPTION_NAME = re.compile(r"(Error|Exception|Warning)$")


# ---------------------------------------------------------------------------
# hot-region computation (rule-time half)


def hot_roots(graph: "ProgramGraph") -> Set[str]:
    """Marked ``hot-loop`` functions plus the default hot paths that
    exist in this program."""
    roots = {
        full
        for full, (fact, _, _) in graph.nodes.items()
        if getattr(fact, "hot", False)
    }
    roots.update(full for full in DEFAULT_HOT_ROOTS if full in graph.nodes)
    return roots


def hot_region(
    graph: "ProgramGraph",
) -> Tuple[Set[str], Dict[str, "escape.Reach"]]:
    """(hot roots, reachable functions) with the build cut applied."""
    from . import escape as escape_mod

    roots = hot_roots(graph)
    return roots, escape_mod.reachable_from(graph, roots)


# ---------------------------------------------------------------------------
# per-function site extraction (fact-time half)


def perf_sites(scope: ast.AST, origins: Dict[str, str]) -> List[Dict[str, Any]]:
    """Distill one function scope into perf sites (pure function of the
    AST — cacheable)."""
    sites: List[Dict[str, Any]] = []
    seq_kinds = _seq_inits(scope)
    numpy_names = _numpy_locals(scope, origins)

    def record(
        rule: str, kind: str, node: ast.AST, loop: bool, detail: str
    ) -> None:
        sites.append(
            {
                "rule": rule,
                "kind": kind,
                "line": getattr(node, "lineno", 1),
                "loop": loop,
                "detail": detail,
            }
        )

    def visit(
        node: ast.AST, in_loop: bool, in_raise: bool, loop_vars: Set[str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        _classify(node, in_loop, in_raise, loop_vars)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # The iterable is evaluated once per loop *entry*; only the
            # body (and the per-iteration target unpack) runs per turn.
            visit(node.iter, in_loop, in_raise, loop_vars)
            inner_vars = loop_vars | _target_names(node.target)
            visit(node.target, True, in_raise, inner_vars)
            for child in node.body + node.orelse:
                visit(child, True, in_raise, inner_vars)
        elif isinstance(node, ast.While):
            visit(node.test, True, in_raise, loop_vars)
            for child in node.body + node.orelse:
                visit(child, True, in_raise, loop_vars)
        elif isinstance(node, ast.Raise):
            for child in ast.iter_child_nodes(node):
                visit(child, in_loop, True, loop_vars)
        else:
            for child in ast.iter_child_nodes(node):
                visit(child, in_loop, in_raise, loop_vars)

    def _classify(
        node: ast.AST, in_loop: bool, in_raise: bool, loop_vars: Set[str]
    ) -> None:
        # --- PERF101: per-iteration allocation -------------------------
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            label = {
                ast.ListComp: "list comprehension",
                ast.SetComp: "set comprehension",
                ast.DictComp: "dict comprehension",
            }[type(node)]
            record(
                "PERF101", "comprehension", node, in_loop,
                "a throwaway %s" % label,
            )
        elif isinstance(node, (ast.List, ast.Set)) and node.elts:
            label = "list" if isinstance(node, ast.List) else "set"
            record(
                "PERF101", "display", node, in_loop,
                "a fresh non-empty %s literal" % label,
            )
        elif isinstance(node, ast.Dict) and node.keys:
            record(
                "PERF101", "display", node, in_loop,
                "a fresh non-empty dict literal",
            )
        if isinstance(node, ast.Call):
            target = resolve_call_target(node.func, origins)
            raw = dotted_name(node.func) or ""
            last = (target or raw).rsplit(".", 1)[-1]
            if target == "struct.pack":
                record(
                    "PERF101", "struct-pack", node, in_loop,
                    "packed bytes via struct.pack (patch a prebuilt "
                    "template buffer instead, like ProbeTemplate."
                    "encode_into)",
                )
            elif (
                not in_raise
                and _CLASS_NAME.match(last)
                and not last.isupper()
                and not _EXCEPTION_NAME.search(last)
            ):
                record(
                    "PERF101", "construction", node, in_loop,
                    "a new %s object" % last,
                )
            # --- PERF102: superlinear accumulation ---------------------
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "insert"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                receiver = dotted_name(node.func.value) or "<expr>"
                record(
                    "PERF102", "insert-front", node, in_loop,
                    "'%s.insert(0, ...)' shifts the whole list each call "
                    "(use collections.deque.appendleft)" % receiver,
                )
            if target == "sorted" or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
            ):
                record(
                    "PERF102", "sort-in-loop", node, in_loop,
                    "a full re-sort per iteration (sort once outside the "
                    "loop, or keep a heap)",
                )
            # --- PERF103: numpy <-> Python scalar churn ----------------
            if isinstance(node.func, ast.Attribute) and node.func.attr == "item":
                record(
                    "PERF103", "scalar-item", node, in_loop,
                    "'.item()' unboxing one numpy scalar at a time "
                    "(vectorize across the array)",
                )
            if target == "numpy.append":
                record(
                    "PERF103", "np-append", node, in_loop,
                    "'np.append' copies the whole array each call "
                    "(preallocate, or collect then convert once)",
                )
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if isinstance(node.target, ast.Name):
                kinds = seq_kinds.get(node.target.id, set())
                for seq in ("bytes", "str"):
                    if seq in kinds:
                        record(
                            "PERF102", "seq-concat", node, in_loop,
                            "'%s' grows by %s += concatenation (quadratic; "
                            "collect parts and join once)"
                            % (node.target.id, seq),
                        )
                        break
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            for comparator in node.comparators:
                if (
                    isinstance(comparator, ast.Name)
                    and "list" in seq_kinds.get(comparator.id, set())
                ):
                    record(
                        "PERF102", "list-membership", node, in_loop,
                        "a membership test against list '%s' (linear scan "
                        "per check; use a set)" % comparator.id,
                    )
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.iter, ast.Name) and node.iter.id in numpy_names:
                record(
                    "PERF103", "iterate-array", node, True,
                    "a Python-level loop over array '%s' boxing one scalar "
                    "per element (vectorize the loop body)" % node.iter.id,
                )
        if isinstance(node, ast.Subscript):
            index = node.slice
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in numpy_names
                and isinstance(index, ast.Name)
                and index.id in loop_vars
            ):
                record(
                    "PERF103", "scalar-index", node, in_loop,
                    "element-wise indexing of array '%s' by a loop "
                    "variable (vectorize the loop body)" % node.value.id,
                )

    for child in ast.iter_child_nodes(scope):
        visit(child, False, False, set())
    sites.sort(key=lambda site: (site["line"], site["rule"], site["kind"]))
    return sites


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``scope`` itself — descends comprehensions/lambdas but
    not nested def/class scopes (mirrors ``facts._own_nodes``)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _target_names(node: ast.AST) -> Set[str]:
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in node.elts:
            names |= _target_names(element)
        return names
    return set()


def _init_kind(value: ast.AST) -> Optional[str]:
    if isinstance(value, ast.Constant):
        if isinstance(value.value, str):
            return "str"
        if isinstance(value.value, bytes):
            return "bytes"
        return None
    if isinstance(value, ast.JoinedStr):
        return "str"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in ("str", "bytes", "bytearray", "list"):
            return "bytes" if value.func.id == "bytearray" else value.func.id
    return None


def _seq_inits(scope: ast.AST) -> Dict[str, Set[str]]:
    """local name -> sequence kinds it was ever initialized with."""
    kinds: Dict[str, Set[str]] = {}
    for node in _scope_nodes(scope):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind = _init_kind(value)
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                kinds.setdefault(target.id, set()).add(kind)
    return kinds


def _numpy_locals(scope: ast.AST, origins: Dict[str, str]) -> Set[str]:
    """Locals assigned from ``numpy.*`` calls (or from attribute calls
    on an already-known array local — ``rounded = values.astype(...)``)."""
    names: Set[str] = set()
    for node in _scope_nodes(scope):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        call = node.value
        target_path = resolve_call_target(call.func, origins)
        from_numpy = target_path is not None and target_path.startswith("numpy.")
        from_array = (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in names
        )
        if not (from_numpy or from_array):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names
