"""``repro.lint.program`` — whole-program determinism analysis.

The per-file checkers in :mod:`repro.lint.checkers` see one AST at a
time; this layer parses the whole tree once, distills each file into
cacheable facts (:mod:`.facts`), builds module-import and function-call
graphs (:mod:`.graph`), and runs the interprocedural rules on them:

* **DET101** — transitive impurity: nothing reachable from the engine /
  prober / parallel-runner entry points may reach a DET001-banned
  source through any call chain (:mod:`.det101`);
* **RNG101** — RNG provenance: every ``random.Random`` seed must trace
  to spec/world seed material, and no RNG object may cross the
  ``CampaignSpec`` worker boundary (:mod:`.rng101`);
* **OBS101** — telemetry observe-only: no dataflow from ``repro.obs``
  readbacks into ``netsim``/``prober`` state (:mod:`.obs101`);
* **MUT101** — shared-world shard safety: code reachable from the
  parallel shard workers may only write state registered via
  ``@run_state(...)`` (:mod:`.mut101`);
* **MUT102** — rewind completeness: the RunState registry and
  ``Internet.fresh_run_state`` must cover each other exactly
  (:mod:`.mut102`);
* **MUT103** — pickle-boundary immutability: no writes through the
  ``CampaignSpec`` handed to workers (:mod:`.mut103`);
* **PERF101** — no per-iteration allocation in hot regions (functions
  reachable from a ``# repro-lint: hot-loop`` root) (:mod:`.perf101`);
* **PERF102** — no superlinear accumulation (``+=`` concatenation,
  ``insert(0)``, list membership, in-loop sorts) in hot regions
  (:mod:`.perf102`);
* **PERF103** — no numpy↔Python scalar churn (``.item()`` loops,
  element-wise indexing, ``np.append``) in hot regions
  (:mod:`.perf103`).

Entry points: :func:`analyze` for an in-memory file set (the CLI driver
shares its per-file :class:`~repro.lint.core.Suppressions` objects so
suppression *usage* feeds LNT001), and :func:`lint_program_paths` as the
standalone convenience used by tests and tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import (
    Suppressions,
    Violation,
    _module_path,
    iter_python_files,
    violation_sort_key,
)
from . import (
    det101,
    mut101,
    mut102,
    mut103,
    obs101,
    perf101,
    perf102,
    perf103,
    rng101,
)
from .cache import FactsCache
from .facts import FACTS_VERSION, FileFacts, extract_facts  # noqa: F401  (re-export)
from .graph import DEFAULT_ROOTS, ProgramGraph, build_graph  # noqa: F401
from .perf import DEFAULT_HOT_ROOTS  # noqa: F401  (re-export)

#: rule id -> one-line description, mirrored into ``--list-checkers``.
PROGRAM_RULES: Dict[str, str] = {
    det101.RULE: det101.DESCRIPTION,
    rng101.RULE: rng101.DESCRIPTION,
    obs101.RULE: obs101.DESCRIPTION,
    mut101.RULE: mut101.DESCRIPTION,
    mut102.RULE: mut102.DESCRIPTION,
    mut103.RULE: mut103.DESCRIPTION,
    perf101.RULE: perf101.DESCRIPTION,
    perf102.RULE: perf102.DESCRIPTION,
    perf103.RULE: perf103.DESCRIPTION,
}


@dataclass
class SourceFile:
    """One file handed to the program analysis."""

    path: str
    module: str
    source: str
    suppressions: Suppressions


@dataclass
class Program:
    """Analyzed program: facts per file plus the call graph."""

    files: List[SourceFile]
    facts: Dict[str, FileFacts]
    graph: ProgramGraph
    cache_hits: int = 0
    cache_misses: int = 0
    #: rules that ran, per path (OBS101 only where its scope applies).
    ran_rules: Dict[str, Set[str]] = field(default_factory=dict)


def analyze(
    files: Sequence[SourceFile], cache: Optional[FactsCache] = None
) -> Program:
    facts: Dict[str, FileFacts] = {}
    for item in files:
        if cache is not None:
            facts[item.path] = cache.facts_for(item.path, item.source, item.module)
        else:
            facts[item.path] = extract_facts(item.source, item.module)
    graph = build_graph(sorted(facts.items()))
    return Program(
        files=list(files),
        facts=facts,
        graph=graph,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )


def run_rules(
    program: Program, select: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run the selected program rules, filtered through each file's
    suppressions (usage is recorded on the shared objects, so LNT001
    sees program-rule suppressions as used)."""
    chosen = set(PROGRAM_RULES) if select is None else set(select) & set(PROGRAM_RULES)
    suppressions = {item.path: item.suppressions for item in program.files}
    raw: List[Violation] = []
    for path in suppressions:
        program.ran_rules.setdefault(path, set())
    if det101.RULE in chosen:
        raw.extend(det101.check(program.graph, suppressions))
        for path in suppressions:
            program.ran_rules[path].add(det101.RULE)
    if rng101.RULE in chosen:
        raw.extend(rng101.check(program.graph, program.facts))
        for path in suppressions:
            program.ran_rules[path].add(rng101.RULE)
    if obs101.RULE in chosen:
        raw.extend(obs101.check(program.facts))
        for path, facts in program.facts.items():
            if obs101.in_scope(facts.module):
                program.ran_rules[path].add(obs101.RULE)
    for module in (mut101, mut102, mut103, perf101, perf102, perf103):
        if module.RULE in chosen:
            raw.extend(module.check(program.graph, program.facts))
            for path in suppressions:
                program.ran_rules[path].add(module.RULE)
    kept: List[Violation] = []
    for violation in raw:
        supp = suppressions.get(violation.path)
        if supp is not None and supp.is_disabled(violation.rule, violation.line):
            continue
        kept.append(violation)
    kept.sort(key=violation_sort_key)
    return kept


def load_sources(paths: Sequence[str]) -> List[SourceFile]:
    files: List[SourceFile] = []
    for file_path in iter_python_files(list(paths)):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        files.append(
            SourceFile(
                path=file_path,
                module=_module_path(file_path),
                source=source,
                suppressions=Suppressions(source),
            )
        )
    return files


def lint_program_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    cache_path: Optional[str] = None,
) -> Tuple[List[Violation], Program]:
    """Standalone whole-program lint of ``paths`` (files/directories)."""
    cache = FactsCache(cache_path) if cache_path is not None else None
    program = analyze(load_sources(paths), cache=cache)
    violations = run_rules(program, select=select)
    if cache is not None:
        cache.save()
    return violations, program
