"""RNG101: every RNG's seed must trace to spec/world seed material.

``random.Random(x)`` is only as deterministic as ``x``.  The per-file
DET001 rule checks that *a* seed is passed; RNG101 checks that the seed
**means something** — a constant, a ``seed``/``key``-named value, or a
parameter that every caller feeds from one of those.  The dataflow is
the tag classification from fact extraction, resolved interprocedurally
through the call graph's argument classes (depth-limited, memoized).

Second half: no live ``random.Random`` object may cross the
``CampaignSpec`` worker boundary.  Shards must *derive* their streams
from the spec's integer seed — shipping a mutable RNG by pickle forks
its state and silently decouples the shards from ``run_single``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core import Violation
from .facts import FileFacts
from .graph import ProgramGraph

RULE = "RNG101"
DESCRIPTION = (
    "whole-program: random.Random seeds must be dataflow-traceable to "
    "spec/world seed material, and no RNG object may cross the "
    "CampaignSpec worker boundary"
)

#: Bumped when this checker's logic changes; folded into the facts-cache
#: key so stale cached analysis never survives a rule edit.
VERSION = 1

#: How many caller hops to follow when a seed depends on a parameter.
MAX_PARAM_DEPTH = 4


#: A judgement: ("bad", detail) for entropy, ("opaque", detail) for an
#: untraceable value, None for clean.
_Verdict = Optional[Tuple[str, str]]


def check(
    graph: ProgramGraph,
    files: Dict[str, FileFacts],
) -> List[Violation]:
    violations: List[Violation] = []
    memo: Dict[Tuple[str, str], _Verdict] = {}
    for full in sorted(graph.nodes):
        fact, _, path = graph.nodes[full]
        for site in fact.rng_sites:
            verdict = _judge_tags(
                graph, full, set(site.get("tags") or []), memo, depth=0
            )
            if verdict is None:
                continue
            problem = verdict[1]
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=site["line"],
                    column=1,
                    message="random.Random seed is not traceable to a "
                    "spec/world seed: %s" % problem,
                )
            )
    for path in sorted(files):
        facts = files[path]
        for finding in facts.boundary_rng:
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=finding["line"],
                    column=1,
                    message=(
                        "%s crosses the %s worker boundary; shards must "
                        "derive their RNG streams from the spec's integer "
                        "seed, never share a live Random object"
                        % (finding["detail"], finding["cls"])
                    ),
                )
            )
    return violations


def _judge_tags(
    graph: ProgramGraph,
    owner: str,
    tags: Set[str],
    memo: Dict[Tuple[str, str], _Verdict],
    depth: int,
) -> _Verdict:
    """Judge one tag set.  Entropy (``b:``) always condemns; opaque
    values (``o:``, including parameters that resolve to opaque call
    sites) are excused when seed material (``s``) is mixed in."""
    has_seed = "s" in tags
    for tag in sorted(tags):
        if tag.startswith("b:"):
            return ("bad", tag[2:])
    verdict: _Verdict = None
    if not has_seed:
        for tag in sorted(tags):
            if tag.startswith("o:"):
                verdict = ("opaque", tag[2:])
                break
    for tag in sorted(tags):
        if not tag.startswith("p:"):
            continue
        nested = _judge_param(graph, owner, tag[2:], memo, depth)
        if nested is None:
            continue
        if nested[0] == "bad":
            return nested
        if not has_seed and verdict is None:
            verdict = nested
    return verdict


def _judge_param(
    graph: ProgramGraph,
    full: str,
    param: str,
    memo: Dict[Tuple[str, str], _Verdict],
    depth: int,
) -> _Verdict:
    key = (full, param)
    if key in memo:
        return memo[key]
    memo[key] = None  # cycle guard: recursion through the same param is clean
    fact, _, _ = graph.nodes[full]
    if depth >= MAX_PARAM_DEPTH:
        return None
    callers = graph.callers_of(full)
    call_classes = _classes_at_call_sites(graph, full, fact.params, param, callers)
    if not call_classes:
        result: _Verdict = (
            None
            if _seedlike(param)
            else (
                "opaque",
                "parameter '%s' of %s has no analyzable call sites and is "
                "not seed-named" % (param, graph.display(full)),
            )
        )
        memo[key] = result
        return result
    result = None
    for src, line, tags in call_classes:
        nested = _judge_tags(graph, src, tags, memo, depth + 1)
        if nested is None:
            continue
        located = (
            nested[0],
            "parameter '%s' of %s receives an untraceable value at %s:%d "
            "(%s)" % (param, graph.display(full), _node_path(graph, src), line, nested[1]),
        )
        if nested[0] == "bad":
            memo[key] = located
            return located
        if result is None:
            result = located
    memo[key] = result
    return result


def _node_path(graph: ProgramGraph, full: str) -> str:
    return graph.nodes[full][2]


def _seedlike(name: str) -> bool:
    lowered = name.lower()
    return "seed" in lowered or "key" in lowered or lowered in ("rng", "salt")


def _classes_at_call_sites(
    graph: ProgramGraph,
    full: str,
    params: List[str],
    param: str,
    callers: List[object],
) -> List[Tuple[str, int, Set[str]]]:
    """(caller, line, tag set) for the value bound to ``param`` at each
    resolved call site of ``full``."""
    positional = list(params)
    if positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    try:
        index = positional.index(param)
    except ValueError:
        index = -1
    found: List[Tuple[str, int, Set[str]]] = []
    for edge in callers:
        src_fact, _, _ = graph.nodes[edge.src]  # type: ignore[attr-defined]
        for call in src_fact.calls:
            if call["line"] != edge.line:  # type: ignore[attr-defined]
                continue
            kwargs = call.get("kwargs") or {}
            if param in kwargs:
                found.append((edge.src, call["line"], set(kwargs[param])))  # type: ignore[attr-defined]
            elif 0 <= index < len(call.get("args") or []):
                found.append((edge.src, call["line"], set(call["args"][index])))  # type: ignore[attr-defined]
    return found
