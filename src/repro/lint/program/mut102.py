"""MUT102: the RunState registry and the rewind must agree exactly.

MUT101 proves workers only touch registered state; this rule proves the
registration *means* something: every field registered as per-run state
is actually restored by ``Internet.fresh_run_state``, and everything
the rewind restores is registered.  The two directions catch the two
ways the contract rots:

* a field gains a ``@run_state`` entry but the reset path never learns
  about it — the registry over-promises, and a shard inherits the
  previous campaign's value (exactly the ``Router._frag_value`` /
  ``_frag_last`` gap this rule was built to catch);
* the reset path clears a field nobody registered — the rewind quietly
  guarantees more than the declared contract, and MUT101/ShardSan stop
  matching what actually happens.

``shared=`` fields are caches that must *survive* the rewind, so a
reset touching one is its own finding.  Classes registered with
``constructed_per_run=True`` (``Engine``, ``InternetStats``) are exempt
from the never-reset direction: their instances never outlive a run, so
there is nothing to rewind.

Mechanically: forward reachability from ``Internet.fresh_run_state``
(build cut applied), with every reachable store alias-expanded and
attributed to world classes through the same resolution MUT101 uses —
``self`` writes to the enclosing class, dotted writes to the
unambiguous world declarers of the final field (``router.limiter.
observer = None`` attributes to both bucket classes).  The rule is
silent when the rewind root is not in the linted tree (e.g. a scoped
lint of ``repro.obs``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core import Violation
from . import escape
from .facts import FileFacts
from .graph import ProgramGraph

RULE = "MUT102"
VERSION = 1
DESCRIPTION = (
    "whole-program: @run_state registrations and Internet."
    "fresh_run_state must cover each other exactly — every registered "
    "per-run field is reset, every reset field is registered, shared "
    "caches survive"
)


def check(
    graph: ProgramGraph, facts: Dict[str, FileFacts]
) -> List[Violation]:
    reached = escape.reachable_from(graph, escape.REWIND_ROOTS)
    if not reached:
        return []  # rewind root not in this lint's scope
    model = escape.WorldModel.from_facts(facts)
    violations: List[Violation] = []
    #: (class key, field) -> attribution already reported (dedup: the
    #: same field may be written on several reachable lines).
    reset: Set[Tuple[str, str, str]] = set()
    for full in sorted(reached):
        fact, _, path = graph.nodes[full]
        owner = model.owner_of(graph, full)
        for store in fact.stores:
            expanded = escape.expand(store["path"], fact.aliases)
            resolution = escape.resolve_store(
                expanded.split("."), owner, model
            )
            if resolution.field is None:
                continue
            chain = " -> ".join(escape.witness_chain(graph, reached, full))
            for entry in resolution.classes:
                key = (entry.module, entry.name, resolution.field)
                if key in reset:
                    continue
                reset.add(key)
                if resolution.field in entry.run_shared:
                    violations.append(
                        Violation(
                            rule=RULE,
                            path=path,
                            line=store["line"],
                            column=1,
                            message=(
                                "'%s.%s' is declared shared (a cache that "
                                "survives the rewind) but fresh_run_state "
                                "resets it via %s"
                                % (entry.label, resolution.field, chain)
                            ),
                        )
                    )
                elif resolution.field not in entry.run_state:
                    violations.append(
                        Violation(
                            rule=RULE,
                            path=path,
                            line=store["line"],
                            column=1,
                            message=(
                                "'%s.%s' is reset by fresh_run_state (via "
                                "%s) but not registered as per-run state — "
                                "add it to the @run_state(...) registration"
                                % (entry.label, resolution.field, chain)
                            ),
                        )
                    )
    # Direction two: registered per-run fields the rewind never touches.
    for entry in model.registered_world_classes():
        if entry.per_run:
            continue  # instances never outlive a run; nothing to rewind
        for field_name in sorted(entry.run_state):
            if (entry.module, entry.name, field_name) in reset:
                continue
            violations.append(
                Violation(
                    rule=RULE,
                    path=entry.path,
                    line=entry.reg_line or entry.line,
                    column=1,
                    message=(
                        "'%s.%s' is registered as per-run state but "
                        "Internet.fresh_run_state never resets it — the "
                        "registry over-promises and a shard would inherit "
                        "the previous campaign's value"
                        % (entry.label, field_name)
                    ),
                )
            )
    return violations
