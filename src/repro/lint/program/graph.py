"""Module-import and function-call graph over extracted file facts.

Nodes are fully-qualified function names (``module.qpath``, e.g.
``repro.netsim.engine.Engine.run``).  Edges come from three resolution
strategies, applied in order per call site:

1. **Lexical / module scope** — a bare name resolves nested-scope-first
   inside its own module (``tick`` inside ``run_campaign`` resolves to
   ``run_campaign.tick`` before a module-level ``tick``).
2. **Import origins** — a dotted target whose prefix was imported
   resolves across modules, including relative imports (``from .sources
   import leaf_rng`` inside ``repro.addrs.build`` →
   ``repro.addrs.sources.leaf_rng``).
3. **CHA by method name** — an attribute call on an unknown receiver
   (``prober.next_probe(...)``) conservatively edges to *every* program
   method of that name, the classic class-hierarchy-analysis
   over-approximation.  Sound for DET101 (impurity may only be
   over-reported, never missed), and precise enough in practice because
   the repro tree keeps method names distinctive.

Reference edges (names passed as call arguments, like
``engine.schedule(interval, tick)``) use the same resolution and are
treated as call edges: if the callback is impure, its registrar is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .facts import FileFacts, FunctionFact

#: Entry points that are always reachability roots, even without a
#: ``# repro-lint: program-root`` comment (belt and braces: the comment
#: lives in the source, this list survives comment refactors).
DEFAULT_ROOTS = frozenset(
    {
        "repro.netsim.engine.Engine.run",
        "repro.netsim.engine.Engine.step",
        "repro.prober.campaign.run_campaign",
        "repro.prober.parallel.run_shard",
        "repro.prober.parallel.run_single",
        "repro.prober.parallel._shard_worker",
        "repro.prober.supervise._supervised_worker",
    }
)


@dataclass
class Edge:
    """One resolved call/reference from ``src`` to ``dst`` (full names)."""

    src: str
    dst: str
    line: int
    kind: str  # "call" | "ref"


@dataclass
class ProgramGraph:
    """Indexes + edges over every :class:`FileFacts` in the program."""

    #: full name -> (fact, module, path)
    nodes: Dict[str, Tuple[FunctionFact, str, str]] = field(default_factory=dict)
    #: module -> {qpath -> full name}
    by_module: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: method name -> sorted full names (CHA index; methods only)
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: src full name -> outgoing edges, deterministic order
    edges: Dict[str, List[Edge]] = field(default_factory=dict)
    #: module -> path (for cross-file messages)
    module_paths: Dict[str, str] = field(default_factory=dict)

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.edges.values())

    def roots(self) -> List[str]:
        found = [
            full
            for full, (fact, _, _) in self.nodes.items()
            if fact.root or full in DEFAULT_ROOTS
        ]
        return sorted(found)

    def reachable(self) -> Dict[str, str]:
        """full name -> root it is reachable from (first in sorted order)."""
        reached: Dict[str, str] = {}
        for root in self.roots():
            queue = [root]
            while queue:
                current = queue.pop(0)
                if current in reached:
                    continue
                reached[current] = root
                for edge in self.edges.get(current, ()):
                    if edge.dst not in reached:
                        queue.append(edge.dst)
        return reached

    def callers_of(self, full: str) -> List[Edge]:
        found = []
        for edges in self.edges.values():
            for edge in edges:
                if edge.dst == full and edge.kind == "call":
                    found.append(edge)
        return found

    def display(self, full: str) -> str:
        """Short human name: last module segment + qualified path."""
        fact, module, _ = self.nodes[full]
        head = module.rsplit(".", 1)[-1]
        return "%s.%s" % (head, fact.qname)


def build_graph(files: Sequence[Tuple[str, FileFacts]]) -> ProgramGraph:
    """``files`` is (path, facts) pairs; order does not matter — all
    indexes and edge lists are sorted deterministically."""
    graph = ProgramGraph()
    for path, facts in sorted(files, key=lambda item: item[0]):
        graph.module_paths[facts.module] = path
        funcs = graph.by_module.setdefault(facts.module, {})
        for fact in facts.functions:
            if fact.qname == "<module>":
                continue
            full = "%s.%s" % (facts.module, fact.qname)
            graph.nodes[full] = (fact, facts.module, path)
            funcs[fact.qname] = full
            if fact.method:
                name = fact.qname.rsplit(".", 1)[-1]
                graph.methods_by_name.setdefault(name, []).append(full)
    for candidates in graph.methods_by_name.values():
        candidates.sort()
    for path, facts in sorted(files, key=lambda item: item[0]):
        for fact in facts.functions:
            if fact.qname == "<module>":
                continue
            full = "%s.%s" % (facts.module, fact.qname)
            out: List[Edge] = []
            for call in fact.calls:
                for dst in _resolve(graph, facts.module, fact, call):
                    out.append(Edge(src=full, dst=dst, line=call["line"], kind="call"))
            for name, line in fact.refs:
                for dst in _resolve_ref(graph, facts.module, fact, name):
                    out.append(Edge(src=full, dst=dst, line=line, kind="ref"))
            seen: Set[Tuple[str, str]] = set()
            unique: List[Edge] = []
            for edge in sorted(out, key=lambda e: (e.line, e.dst, e.kind)):
                if (edge.dst, edge.kind) in seen:
                    continue
                seen.add((edge.dst, edge.kind))
                unique.append(edge)
            if unique:
                graph.edges[full] = unique
    return graph


def _absolutize(module: str, target: str) -> str:
    """Resolve a leading-dots relative target against ``module``."""
    if not target.startswith("."):
        return target
    level = len(target) - len(target.lstrip("."))
    rest = target[level:]
    package_parts = module.split(".")[:-level] if level else module.split(".")
    if rest:
        return ".".join(package_parts + [rest] if package_parts else [rest])
    return ".".join(package_parts)


def _lookup_scoped(
    graph: ProgramGraph, module: str, scope_qname: str, name: str
) -> Optional[str]:
    """Nested-scope-first lookup of a bare ``name`` inside ``module``."""
    funcs = graph.by_module.get(module, {})
    scope_parts = scope_qname.split(".")
    for depth in range(len(scope_parts), -1, -1):
        candidate = ".".join(scope_parts[:depth] + [name])
        if candidate in funcs:
            return funcs[candidate]
    return None


def _lookup_dotted(graph: ProgramGraph, target: str) -> Optional[str]:
    """Longest-module-prefix lookup of an absolute dotted target."""
    parts = target.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:split])
        if module in graph.by_module:
            qpath = ".".join(parts[split:])
            return graph.by_module[module].get(qpath)
    return None


def _resolve(
    graph: ProgramGraph,
    module: str,
    caller: FunctionFact,
    call: Dict[str, object],
) -> List[str]:
    raw = call.get("raw")
    target = call.get("target")
    attr = call.get("attr")
    if isinstance(raw, str) and "." not in raw:
        found = _lookup_scoped(graph, module, caller.qname, raw)
        if found is not None:
            return [found]
        if isinstance(target, str) and target != raw:
            found = _lookup_dotted(graph, _absolutize(module, target))
            if found is not None:
                return [found]
        return []
    if isinstance(raw, str) and raw.startswith("self.") and raw.count(".") == 1:
        method = raw.split(".", 1)[1]
        if caller.method:
            class_prefix = caller.qname.rsplit(".", 1)[0]
            funcs = graph.by_module.get(module, {})
            candidate = "%s.%s" % (class_prefix, method)
            if candidate in funcs:
                return [funcs[candidate]]
        return list(graph.methods_by_name.get(method, ()))
    if isinstance(target, str):
        found = _lookup_dotted(graph, _absolutize(module, target))
        if found is not None:
            return [found]
    if isinstance(attr, str):
        return list(graph.methods_by_name.get(attr, ()))
    return []


def _resolve_ref(
    graph: ProgramGraph, module: str, caller: FunctionFact, name: str
) -> List[str]:
    if name.startswith("self."):
        method = name.split(".", 1)[1]
        if caller.method:
            class_prefix = caller.qname.rsplit(".", 1)[0]
            funcs = graph.by_module.get(module, {})
            candidate = "%s.%s" % (class_prefix, method)
            if candidate in funcs:
                return [funcs[candidate]]
        return list(graph.methods_by_name.get(method, ()))
    found = _lookup_scoped(graph, module, caller.qname, name)
    return [found] if found is not None else []
