"""MUT101: shard workers may only mutate registered per-run state.

The parallel runner shares ONE built world across shard campaigns
(fork-inherited or rewound in-process), so the soundness of
``run_parallel == run_single`` rests on an invariant: everything a
worker-side code path writes between rewinds must be state that
``Internet.fresh_run_state`` restores — i.e. a field declared in some
``@run_state(...)`` registration (or a ``shared=`` cache whose content
is a pure function of the immutable topology).

This rule proves the invariant statically.  Every function reachable
from the shard-worker roots (``run_shard`` / ``run_single``) — with the
build cut applied, since constructing a world is not mutating one — has
its store facts alias-expanded and resolved against the RunState world
model.  A write that lands on world state outside every registration is
a finding, anchored at the write with the witness call chain from the
root in the message::

    'internet.Internet.probe' (reachable from shard worker root
    'parallel.run_shard' via parallel.run_shard -> campaign.run_campaign
    -> internet.Internet.probe) writes world state 'self.counter' not
    registered as per-run state

Writes the resolution cannot prove to target world state (locals,
non-world classes' own fields, fields declared on both sides of the
world boundary) are skipped — the rule reports only what it can prove,
and ShardSan covers the remainder at runtime.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import Violation
from . import escape
from .facts import FileFacts
from .graph import ProgramGraph

RULE = "MUT101"
VERSION = 1
DESCRIPTION = (
    "whole-program: no code path reachable from the parallel shard "
    "workers may write world state missing from the @run_state registry "
    "(the shared-world rewind contract)"
)


def check(
    graph: ProgramGraph, facts: Dict[str, FileFacts]
) -> List[Violation]:
    model = escape.WorldModel.from_facts(facts)
    reached = escape.reachable_from(graph, escape.WORKER_ROOTS)
    violations: List[Violation] = []
    for full in sorted(reached):
        fact, _, path = graph.nodes[full]
        owner = model.owner_of(graph, full)
        for store in fact.stores:
            expanded = escape.expand(store["path"], fact.aliases)
            resolution = escape.resolve_store(
                expanded.split("."), owner, model
            )
            if resolution.verdict != escape.UNREGISTERED:
                continue
            chain = escape.witness_chain(graph, reached, full)
            root = reached[full].root
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=store["line"],
                    column=1,
                    message=(
                        "'%s' (reachable from shard worker root '%s' via %s) "
                        "writes world state '%s' not registered as per-run "
                        "state — declare it in @run_state(...) or mark it "
                        "shared=(...) if it survives the rewind"
                        % (
                            graph.display(full),
                            graph.display(root),
                            " -> ".join(chain),
                            expanded,
                        )
                    ),
                )
            )
    return violations
