"""Per-file fact extraction for the whole-program analysis.

The program layer never re-walks an AST during graph construction:
everything the interprocedural rules need is distilled here into plain
JSON-serializable dicts (:class:`FileFacts`), keyed by the defining
function.  That is what makes the on-disk cache sound — facts depend
only on the file's bytes and its dotted module path, so a content hash
fully determines them (see :mod:`repro.lint.program.cache`).

Facts recorded per function (including nested functions and the module
top level as the pseudo-function ``<module>``):

* direct DET001-banned calls (wall-clock exemption already applied for
  ``repro.obs.wallclock``), feeding DET101's impurity seeds;
* outgoing calls with import-origin-resolved targets plus a coarse
  dataflow class for each argument, feeding both the call graph and
  RNG101's interprocedural seed tracing;
* bare-name / ``self.X`` references passed as call arguments — the
  callback pattern (``engine.schedule(interval, tick)``) that a pure
  call graph would miss;
* ``random.Random(seed_expr)`` construction sites with the seed
  expression classified (constant / seed-like / parameter-dependent /
  untraceable);
* RNG values flowing into worker-boundary dataclass constructors;
* telemetry readback values flowing into simulation state or control
  flow (OBS101, computed per-file and scoped per-module later).

Argument / seed-expression classes are tag strings:

``"c"``
    constant (literal, or UPPERCASE module constant);
``"s"``
    seed-like — a name or attribute matching ``seed``/``key``, or a
    call to a ``derive``/``mix``-style function;
``"p:<name>"``
    depends on the enclosing function's parameter ``<name>`` (resolved
    interprocedurally through call sites by RNG101);
``"o:<detail>"``
    opaque — a name/expression the dataflow cannot trace.  Legal when
    mixed with seed material (``seed * 7_919 + asn`` derives a stream
    from deterministic world data), illegal as the sole seed;
``"b:<detail>"``
    bad — a known entropy source; never legal in a seed expression.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..checkers.common import dotted_name, import_origins, resolve_call_target
from ..checkers.det001 import (
    BANNED_CALLS,
    BANNED_PREFIXES,
    RANDOM_ALLOWED,
    WALLCLOCK_CALLS,
    WALLCLOCK_EXEMPT_MODULES,
)
from ..checkers.det003 import BOUNDARY_CLASSES
from . import mutation, perf

#: Bump whenever the fact schema or extraction logic changes; stale
#: cache entries are discarded on version mismatch.
FACTS_VERSION = 5

#: ``# repro-lint: program-root`` on a ``def`` line marks the function
#: as a DET101 reachability root (an entry point the engine or the
#: parallel runner calls into).
PROGRAM_ROOT_MARK = re.compile(r"#\s*repro-lint:\s*program-root\b")

#: ``# repro-lint: hot-loop`` marks a PERF hot root (see :mod:`.perf`).
HOT_ROOT_MARK = perf.HOT_ROOT_MARK

#: Names/attributes that look like seed material for RNG101.
_SEEDLIKE = re.compile(r"(seed|key)", re.IGNORECASE)
#: Function names whose return value counts as derived seed material.
_SEED_DERIVER = re.compile(r"(seed|key|derive|mix)", re.IGNORECASE)
#: Integer-preserving builtins RNG101 looks through.
_PASSTHROUGH_CALLS = frozenset({"int", "abs", "round", "min", "max", "sum"})

#: repro.obs types whose instances are telemetry *handles* (mutating
#: them is fine; reading values back into simulation logic is not).
OBS_TYPES = frozenset(
    {
        "MetricsRegistry",
        "Tracer",
        "Counter",
        "Gauge",
        "CounterMap",
        "TimeSeries",
        "Histogram",
        "Metric",
        "Span",
        "Stopwatch",
        "WallProfiler",
        "NullWallProfiler",
        "FailureReport",
    }
)

#: Handle-producing methods on obs objects — their results are still
#: handles, so assigning them to ``self.x`` is the sanctioned idiom.
OBS_FACTORY_METHODS = frozenset(
    {
        "counter",
        "gauge",
        "counter_map",
        "series",
        "histogram",
        "span",
        "stopwatch",
        "phase",
        "agg",
    }
)

#: Readback methods — their results are *data* and must not steer the
#: simulation (OBS101).
OBS_READBACK_METHODS = frozenset(
    {
        "to_dict",
        "to_list",
        "dumps",
        "payload",
        "points",
        "total",
        "get",
        "names",
        "values",
        "snapshot",
        "elapsed_seconds",
        "percentile",
        "mean",
        "value",
        "total_seconds",
        "coverage",
        "report",
        "to_profile_dict",
        "export",
        "counts",
        "faults",
    }
)

_OBS_ORIGIN = re.compile(r"(^|\.)obs(\.|$)")


@dataclass
class FunctionFact:
    """Everything later passes need to know about one function."""

    qname: str  # dotted path inside the module ("Engine.run", "outer.inner")
    line: int
    method: bool  # defined directly inside a class body
    root: bool  # marked `# repro-lint: program-root`
    hot: bool = False  # marked `# repro-lint: hot-loop` (PERF hot root)
    params: List[str] = field(default_factory=list)
    #: (resolved target, line) of direct DET001-banned calls.
    banned: List[Tuple[str, int]] = field(default_factory=list)
    #: outgoing calls: see :func:`_call_fact`.
    calls: List[Dict[str, Any]] = field(default_factory=list)
    #: bare-name / self.X references passed as call arguments.
    refs: List[Tuple[str, int]] = field(default_factory=list)
    #: random.Random sites: {"line", "tags": [...]}
    rng_sites: List[Dict[str, Any]] = field(default_factory=list)
    #: mutation facts: {"path", "line", "kind"} (see :mod:`.mutation`).
    stores: List[Dict[str, Any]] = field(default_factory=list)
    #: single-assigned local -> the pure attribute chain it aliases.
    aliases: Dict[str, str] = field(default_factory=dict)
    #: perf sites: {"rule", "kind", "line", "loop", "detail"} (see :mod:`.perf`).
    perf: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qname": self.qname,
            "line": self.line,
            "method": self.method,
            "root": self.root,
            "hot": self.hot,
            "params": list(self.params),
            "banned": [list(item) for item in self.banned],
            "calls": self.calls,
            "refs": [list(item) for item in self.refs],
            "rng_sites": self.rng_sites,
            "stores": self.stores,
            "aliases": self.aliases,
            "perf": self.perf,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionFact":
        return cls(
            qname=data["qname"],
            line=data["line"],
            method=data["method"],
            root=data["root"],
            hot=data.get("hot", False),
            params=list(data["params"]),
            banned=[(item[0], item[1]) for item in data["banned"]],
            calls=list(data["calls"]),
            refs=[(item[0], item[1]) for item in data["refs"]],
            rng_sites=list(data["rng_sites"]),
            stores=list(data.get("stores", [])),
            aliases=dict(data.get("aliases", {})),
            perf=list(data.get("perf", [])),
        )


@dataclass
class FileFacts:
    """Facts for one source file, independent of every other file."""

    module: str
    functions: List[FunctionFact] = field(default_factory=list)
    #: RNG-across-worker-boundary findings: {"line", "cls", "detail"}
    boundary_rng: List[Dict[str, Any]] = field(default_factory=list)
    #: OBS101 findings (module scoping applied later): {"line", "col", "detail"}
    obs_flows: List[Dict[str, Any]] = field(default_factory=list)
    #: class declarations + @run_state registrations (see :mod:`.mutation`).
    classes: List[Dict[str, Any]] = field(default_factory=list)
    #: True when the file failed to parse (facts are empty, not absent).
    parse_error: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "functions": [fact.to_dict() for fact in self.functions],
            "boundary_rng": self.boundary_rng,
            "obs_flows": self.obs_flows,
            "classes": self.classes,
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileFacts":
        return cls(
            module=data["module"],
            functions=[FunctionFact.from_dict(item) for item in data["functions"]],
            boundary_rng=list(data["boundary_rng"]),
            obs_flows=list(data["obs_flows"]),
            classes=list(data.get("classes", [])),
            parse_error=data["parse_error"],
        )


def extract_facts(source: str, module: str) -> FileFacts:
    """Distill ``source`` into :class:`FileFacts` (pure function of the
    arguments — cacheable by content hash)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return FileFacts(module=module, parse_error=True)
    lines = source.splitlines()
    origins = import_origins(tree)
    facts = FileFacts(module=module)
    for func_node, qname, in_class in _iter_functions(tree):
        facts.functions.append(
            _function_fact(func_node, qname, in_class, module, origins, lines)
        )
    facts.functions.append(
        _function_fact(tree, "<module>", False, module, origins, lines)
    )
    facts.functions.sort(key=lambda fact: (fact.line, fact.qname))
    _extract_boundary_rng(tree, origins, facts)
    _extract_obs_flows(tree, origins, facts)
    facts.classes = mutation.class_facts(tree)
    return facts


# ---------------------------------------------------------------------------
# function discovery & per-function facts


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str, bool]]:
    def visit(node: ast.AST, prefix: str, in_class: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = prefix + child.name
                yield child, qname, in_class
                yield from visit(child, qname + ".", False)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, prefix + child.name + ".", True)
            else:
                yield from visit(child, prefix, in_class)

    return visit(tree, "", False)


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes belonging to ``scope`` itself: descends into lambdas and
    comprehensions but not into nested def/class scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _param_names(node: ast.AST) -> List[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    args = node.args
    names = [arg.arg for arg in getattr(args, "posonlyargs", [])]
    names += [arg.arg for arg in args.args]
    names += [arg.arg for arg in args.kwonlyargs]
    return names


def _is_root(node: ast.AST, lines: List[str]) -> bool:
    return _marked(node, lines, PROGRAM_ROOT_MARK)


def _is_hot(node: ast.AST, lines: List[str]) -> bool:
    return _marked(node, lines, HOT_ROOT_MARK)


def _marked(node: ast.AST, lines: List[str], mark: "re.Pattern[str]") -> bool:
    lineno = getattr(node, "lineno", 0)
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines) and mark.search(lines[candidate - 1]):
            return True
    return False


def _classify_banned(
    target: str, call: ast.Call, module: str
) -> Optional[str]:
    """DET001's verdict on a resolved call target, or None if clean."""
    if target in WALLCLOCK_CALLS and module in WALLCLOCK_EXEMPT_MODULES:
        return None
    if target in BANNED_CALLS:
        return target
    if target.startswith(BANNED_PREFIXES):
        return target
    if target == "random.Random":
        if not call.args and not call.keywords:
            return "random.Random [unseeded]"
        return None
    if target.startswith("random.") and target not in RANDOM_ALLOWED:
        return target
    return None


def _function_fact(
    scope: ast.AST,
    qname: str,
    in_class: bool,
    module: str,
    origins: Dict[str, str],
    lines: List[str],
) -> FunctionFact:
    fact = FunctionFact(
        qname=qname,
        line=getattr(scope, "lineno", 1),
        method=in_class,
        root=_is_root(scope, lines),
        hot=_is_hot(scope, lines),
        params=_param_names(scope),
    )
    env = _single_assignments(scope)
    params = set(fact.params)
    for node in _own_nodes(scope):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(node.func, origins)
        raw = dotted_name(node.func)
        if target is not None:
            verdict = _classify_banned(target, node, module)
            if verdict is not None:
                fact.banned.append((verdict, node.lineno))
            if target == "hash" and "hash" not in origins:
                fact.banned.append(("hash [PYTHONHASHSEED]", node.lineno))
        fact.calls.append(
            _call_fact(node, target, raw, origins, env, params)
        )
        for arg in node.args:
            ref = _callback_ref(arg)
            if ref is not None:
                fact.refs.append((ref, node.lineno))
        if target == "random.Random" and node.args:
            tags = _classify_seed(node.args[0], origins, env, params)
            fact.rng_sites.append({"line": node.lineno, "tags": sorted(tags)})
    fact.banned.sort(key=lambda item: (item[1], item[0]))
    fact.stores = mutation.store_facts(_own_nodes(scope))
    fact.aliases = mutation.alias_facts(env)
    fact.perf = perf.perf_sites(scope, origins)
    return fact


def _callback_ref(node: ast.AST) -> Optional[str]:
    """A function-valued argument: bare name or ``self.X``."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return "self." + node.attr
    return None


def _call_fact(
    node: ast.Call,
    target: Optional[str],
    raw: Optional[str],
    origins: Dict[str, str],
    env: Dict[str, ast.AST],
    params: Set[str],
) -> Dict[str, Any]:
    attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
    return {
        "target": target,
        "raw": raw,
        "attr": attr,
        "line": node.lineno,
        "args": [
            sorted(_classify_seed(arg, origins, env, params)) for arg in node.args
        ],
        "kwargs": {
            kw.arg: sorted(_classify_seed(kw.value, origins, env, params))
            for kw in node.keywords
            if kw.arg is not None
        },
        "arg_paths": [mutation.dotted_path(arg) for arg in node.args],
        "kwarg_paths": {
            kw.arg: mutation.dotted_path(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        },
    }


# ---------------------------------------------------------------------------
# RNG101 seed-expression classification


def _single_assignments(scope: ast.AST) -> Dict[str, ast.AST]:
    """name -> value expr for locals assigned exactly once in ``scope``."""
    counts: Dict[str, int] = {}
    values: Dict[str, ast.AST] = {}
    for node in _own_nodes(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    counts[target.id] = counts.get(target.id, 0) + 1
                    values[target.id] = node.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
            if isinstance(target, ast.Name):
                counts[target.id] = counts.get(target.id, 0) + 2
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name):
                counts[target.id] = counts.get(target.id, 0) + 2
    return {
        name: value for name, value in values.items() if counts.get(name) == 1
    }


def _classify_seed(
    node: ast.AST,
    origins: Dict[str, str],
    env: Dict[str, ast.AST],
    params: Set[str],
    depth: int = 0,
) -> Set[str]:
    """Tag set for a seed-ish expression (see module docstring)."""
    if depth > 6:
        return {"c"}
    recurse = lambda child: _classify_seed(  # noqa: E731
        child, origins, env, params, depth + 1
    )
    if isinstance(node, ast.Constant):
        return {"c"}
    if isinstance(node, ast.Name):
        if node.id in params:
            # A seed-named parameter counts as seed material *and* is
            # still traced through call sites (entropy fed into a `seed`
            # argument stays catchable).
            if _SEEDLIKE.search(node.id):
                return {"s", "p:%s" % node.id}
            return {"p:%s" % node.id}
        if node.id in env:
            return recurse(env[node.id])
        if node.id.isupper() or node.id in ("True", "False", "None"):
            return {"c"}
        if _SEEDLIKE.search(node.id):
            return {"s"}
        return {"o:name '%s' is not traceable to a seed" % node.id}
    if isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        label = dotted if dotted is not None else node.attr
        if _SEEDLIKE.search(label):
            return {"s"}
        if node.attr.isupper():
            return {"c"}
        return {"o:attribute '%s' is not traceable to a seed" % label}
    if isinstance(node, ast.Call):
        target = resolve_call_target(node.func, origins)
        name = dotted_name(node.func) or ""
        if target is not None and _classify_banned(target, node, "") is not None:
            return {"b:entropy source %s()" % target}
        if target in _PASSTHROUGH_CALLS and node.args:
            tags: Set[str] = set()
            for arg in node.args:
                tags |= recurse(arg)
            return tags
        if _SEED_DERIVER.search(name.rsplit(".", 1)[-1]):
            return {"s"}
        last = name.rsplit(".", 1)[-1]
        return {"o:call to %s() is not a recognized seed derivation" % (last or "?")}
    if isinstance(node, ast.BinOp):
        return recurse(node.left) | recurse(node.right)
    if isinstance(node, ast.UnaryOp):
        return recurse(node.operand)
    if isinstance(node, ast.IfExp):
        return recurse(node.body) | recurse(node.orelse)
    if isinstance(node, (ast.Tuple, ast.List)):
        tags = set()
        for element in node.elts:
            tags |= recurse(element)
        return tags or {"c"}
    if isinstance(node, ast.Subscript):
        return recurse(node.value)
    if isinstance(node, ast.JoinedStr):
        return {"c"}
    return {"o:%s expression is not traceable to a seed" % type(node).__name__}


# ---------------------------------------------------------------------------
# RNG-across-worker-boundary extraction (RNG101, per-file half)


def _extract_boundary_rng(
    tree: ast.Module, origins: Dict[str, str], facts: FileFacts
) -> None:
    rng_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            target_path = resolve_call_target(node.value.func, origins)
            if target_path == "random.Random":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rng_names.add(target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name in BOUNDARY_CLASSES:
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                annotation = ast.dump(statement.annotation)
                if "Random" in annotation:
                    facts.boundary_rng.append(
                        {
                            "line": statement.lineno,
                            "cls": node.name,
                            "detail": "field declared with a Random type",
                        }
                    )
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.rsplit(".", 1)[-1] not in BOUNDARY_CLASSES:
            continue
        cls = name.rsplit(".", 1)[-1]
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            detail = _rng_valued(value, origins, rng_names)
            if detail is not None:
                facts.boundary_rng.append(
                    {"line": node.lineno, "cls": cls, "detail": detail}
                )
    facts.boundary_rng.sort(key=lambda item: (item["line"], item["cls"]))


def _rng_valued(
    node: ast.AST, origins: Dict[str, str], rng_names: Set[str]
) -> Optional[str]:
    if isinstance(node, ast.Call):
        target = resolve_call_target(node.func, origins)
        if target == "random.Random":
            return "a random.Random(...) instance"
    if isinstance(node, ast.Name):
        if node.id in rng_names:
            return "local '%s' holding a random.Random instance" % node.id
        if re.search(r"(^|_)rng$", node.id, re.IGNORECASE):
            return "RNG-named value '%s'" % node.id
    return None


# ---------------------------------------------------------------------------
# OBS101 extraction (telemetry is observe-only)


def _extract_obs_flows(
    tree: ast.Module, origins: Dict[str, str], facts: FileFacts
) -> None:
    obs_names = {
        local
        for local, origin in origins.items()
        if _OBS_ORIGIN.search(origin) and local in OBS_TYPES
    }
    if not obs_names and not _any_obs_annotation(tree):
        return
    for scope_node, _, _ in list(_iter_functions(tree)) + [(tree, "<module>", False)]:
        _obs_scan_scope(scope_node, origins, obs_names, facts)
    facts.obs_flows.sort(key=lambda item: (item["line"], item["col"]))


def _any_obs_annotation(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.arg) and node.annotation is not None:
            label = _annotation_label(node.annotation)
            if label in OBS_TYPES:
                return True
        if isinstance(node, ast.AnnAssign):
            label = _annotation_label(node.annotation)
            if label in OBS_TYPES:
                return True
    return False


def _annotation_label(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Subscript):  # Optional[MetricsRegistry]
        for child in ast.walk(node):
            label = _bare_label(child)
            if label in OBS_TYPES:
                return label
        return None
    return _bare_label(node)


def _bare_label(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("[]")
    return None


def _obs_scan_scope(
    scope: ast.AST,
    origins: Dict[str, str],
    obs_names: Set[str],
    facts: FileFacts,
) -> None:
    handles: Set[str] = set()  # plain names and "self.x" paths
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in (
            list(getattr(scope.args, "posonlyargs", []))
            + scope.args.args
            + scope.args.kwonlyargs
        ):
            if arg.annotation is not None and _annotation_label(arg.annotation) in OBS_TYPES:
                handles.add(arg.arg)
    own = list(_own_nodes(scope))
    # Pass 1: find handles (assignments from obs constructors/factories).
    for node in own:
        if isinstance(node, ast.AnnAssign) and node.target is not None:
            label = _annotation_label(node.annotation)
            path = _name_or_self_path(node.target)
            if label in OBS_TYPES and path is not None:
                handles.add(path)
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if _is_obs_handle_expr(node.value, origins, obs_names, handles):
            for target in node.targets:
                path = _name_or_self_path(target)
                if path is not None:
                    handles.add(path)
    # Pass 2: find tainted readback values and their one-level aliases.
    tainted: Set[str] = set()
    for node in own:
        if isinstance(node, ast.Assign) and _is_readback(node.value, handles):
            for target in node.targets:
                path = _name_or_self_path(target)
                if path is not None and "." not in path:
                    tainted.add(path)
    # Pass 3: flag readback values steering the simulation.  ``reported``
    # holds node ids of readback expressions already flagged, so an
    # ``if reg.total() > 0`` reports once (branch condition), not again
    # for the Compare operand inside it.
    reported: Set[int] = set()
    for node in own:
        if isinstance(node, (ast.If, ast.While)):
            found = _readback_within(node.test, handles, tainted, reported)
            if found is not None:
                facts.obs_flows.append(
                    _flow(node.test, "telemetry readback %s used in a branch "
                          "condition" % found)
                )
        elif isinstance(node, ast.IfExp):
            found = _readback_within(node.test, handles, tainted, reported)
            if found is not None:
                facts.obs_flows.append(
                    _flow(node.test, "telemetry readback %s used in a "
                          "conditional expression" % found)
                )
        elif isinstance(node, (ast.BinOp, ast.Compare, ast.BoolOp)):
            found = _readback_operand(node, handles, tainted, reported)
            if found is not None:
                facts.obs_flows.append(
                    _flow(node, "telemetry readback %s used as an arithmetic/"
                          "comparison operand" % found)
                )
        elif isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Attribute) for t in node.targets):
                found = _direct_readback(node.value, handles, tainted, reported)
                if found is not None:
                    facts.obs_flows.append(
                        _flow(node, "telemetry readback %s assigned into object "
                              "state" % found)
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = _name_or_self_path(node.func.value)
            if receiver in handles:
                continue  # mutating telemetry itself is the whole point
            if node.func.attr in OBS_FACTORY_METHODS:
                continue
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                found = _direct_readback(value, handles, tainted, reported)
                if found is not None:
                    facts.obs_flows.append(
                        _flow(node, "telemetry readback %s passed into .%s() on "
                              "simulation state" % (found, node.func.attr))
                    )


def _flow(node: ast.AST, detail: str) -> Dict[str, Any]:
    return {
        "line": getattr(node, "lineno", 1),
        "col": getattr(node, "col_offset", 0) + 1,
        "detail": detail,
    }


def _name_or_self_path(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return "self." + node.attr
    return None


def _is_obs_handle_expr(
    node: ast.Call,
    origins: Dict[str, str],
    obs_names: Set[str],
    handles: Set[str],
) -> bool:
    if isinstance(node.func, ast.Name) and node.func.id in obs_names:
        return True
    if isinstance(node.func, ast.Attribute):
        receiver = _name_or_self_path(node.func.value)
        if receiver in handles and node.func.attr in OBS_FACTORY_METHODS:
            return True
        origin = resolve_call_target(node.func, origins)
        if (
            origin is not None
            and _OBS_ORIGIN.search(origin)
            and origin.rsplit(".", 1)[-1] in OBS_TYPES
        ):
            return True
    return False


def _is_readback(node: ast.AST, handles: Set[str]) -> bool:
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return False
    receiver = _name_or_self_path(node.func.value)
    return receiver in handles and node.func.attr in OBS_READBACK_METHODS


def _direct_readback(
    node: ast.AST, handles: Set[str], tainted: Set[str], reported: Set[int]
) -> Optional[str]:
    if id(node) in reported:
        return None
    if _is_readback(node, handles):
        reported.add(id(node))
        func = node.func  # type: ignore[union-attr]
        receiver = _name_or_self_path(func.value)
        return "%s.%s()" % (receiver, func.attr)
    if isinstance(node, ast.Name) and node.id in tainted:
        reported.add(id(node))
        return "'%s'" % node.id
    return None


def _readback_within(
    node: ast.AST, handles: Set[str], tainted: Set[str], reported: Set[int]
) -> Optional[str]:
    for child in ast.walk(node):
        detail = _direct_readback(child, handles, tainted, reported)
        if detail is not None:
            return detail
    return None


def _readback_operand(
    node: ast.AST, handles: Set[str], tainted: Set[str], reported: Set[int]
) -> Optional[str]:
    if isinstance(node, ast.BinOp):
        operands = [node.left, node.right]
    elif isinstance(node, ast.Compare):
        operands = [node.left] + list(node.comparators)
    elif isinstance(node, ast.BoolOp):
        operands = list(node.values)
    else:
        return None
    for operand in operands:
        detail = _direct_readback(operand, handles, tainted, reported)
        if detail is not None:
            return detail
    return None
