"""Shared machinery for the mutation rules: world model + reachability.

The three MUT rules answer one question from three directions: *which
writes can touch the shared world, and does the RunState registry
account for them?*  This module owns the pieces they share:

* :class:`WorldModel` — every class declaration in the program joined
  with its ``@run_state(...)`` registration (fields rewound per run,
  ``shared=`` caches that survive the rewind, ``constructed_per_run``
  instances that never outlive a run);
* :func:`reachable_from` — forward reachability over the call graph
  with the **build cut** applied: edges into ``repro.netsim.build`` or
  into constructors (``__init__`` / ``__post_init__`` / ``from_config``
  / ``build_internet``) are not followed, because build-phase writes
  construct the world rather than mutate it mid-run (ShardSan applies
  the identical exemption at runtime);
* :func:`expand` — alias expansion of store paths against the
  function's single-assignment alias map (``slots = self._slots`` makes
  ``slots.append(cb)`` a write to ``self._slots``);
* :func:`resolve_store` — the store-to-world-field resolution the rules
  interpret: a write is attributed to registered per-run state, to a
  ``shared`` cache, to unregistered world state (a finding), or skipped
  when it provably targets non-world state.

Resolution order for an expanded dotted path:

1. single-component paths are locals — skipped;
2. ``self.field`` inside a world class checks ``field`` against the
   class's own registration;
3. longer paths pass if any *intermediate* component is a registered
   field program-wide (the **handle rule**: ``self.stats.probes += 1``
   mutates through the registered per-run handle ``stats``);
4. otherwise the final field name is looked up program-wide: if it is
   declared by at least one world class and by **no** non-world class,
   the write is attributed to those world declarers (``router.limiter.
   observer = None`` resolves through ``observer`` to the bucket
   classes); a field declared on both sides of the world boundary is
   ambiguous and skipped — the rules only report what they can prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .facts import FileFacts
from .graph import ProgramGraph

#: Modules whose classes make up the shared simulated world.
WORLD_PREFIX = "repro.netsim"

#: The build cut: writes reached only through these are world
#: *construction*, not mid-run mutation.
BUILD_CUT_MODULES = frozenset({"repro.netsim.build"})
BUILD_CUT_NAMES = frozenset(
    {"__init__", "__post_init__", "from_config", "build_internet"}
)

#: Shard-worker entry points (MUT101 roots): everything a worker process
#: executes is reachable from these.
WORKER_ROOTS = (
    "repro.prober.parallel.run_shard",
    "repro.prober.parallel.run_single",
    "repro.prober.supervise._supervised_worker",
)

#: The rewind entry point (MUT102 root).
REWIND_ROOTS = ("repro.netsim.internet.Internet.fresh_run_state",)

#: Alias chains longer than this are degenerate (`x = x.next` style);
#: expansion stops rather than looping.
ALIAS_EXPANSION_LIMIT = 4


def is_world_module(module: str) -> bool:
    return module == WORLD_PREFIX or module.startswith(WORLD_PREFIX + ".")


@dataclass
class ClassModel:
    """One class declaration joined with its RunState registration."""

    module: str
    name: str
    line: int
    path: str  # defining file
    fields: Dict[str, int]  # declared field -> declaration line
    registered: bool
    reg_line: Optional[int]
    run_state: Set[str]
    run_shared: Set[str]
    per_run: bool

    @property
    def world(self) -> bool:
        return is_world_module(self.module)

    @property
    def label(self) -> str:
        return "%s.%s" % (self.module.rsplit(".", 1)[-1], self.name)

    def covers(self, name: str) -> bool:
        return name in self.run_state or name in self.run_shared


@dataclass
class WorldModel:
    """All class declarations in the program, indexed for resolution."""

    classes: Dict[Tuple[str, str], ClassModel] = field(default_factory=dict)
    #: field name -> classes declaring it (world and non-world alike).
    by_field: Dict[str, List[ClassModel]] = field(default_factory=dict)
    #: union of per-run fields over registered world classes.
    registered_union: Set[str] = field(default_factory=set)
    #: union of ``shared=`` fields over registered world classes.
    shared_union: Set[str] = field(default_factory=set)

    @classmethod
    def from_facts(cls, facts: Dict[str, FileFacts]) -> "WorldModel":
        model = cls()
        for path in sorted(facts):
            file_facts = facts[path]
            for info in file_facts.classes:
                entry = ClassModel(
                    module=file_facts.module,
                    name=info["name"],
                    line=info["line"],
                    path=path,
                    fields=dict(info["fields"]),
                    registered=info["registered"],
                    reg_line=info["reg_line"],
                    run_state=set(info["run_state"]),
                    run_shared=set(info["run_shared"]),
                    per_run=info["per_run"],
                )
                key = (entry.module, entry.name)
                if key in model.classes:
                    continue  # duplicate class name in one module
                model.classes[key] = entry
                declared = set(entry.fields) | entry.run_state | entry.run_shared
                for name in declared:
                    model.by_field.setdefault(name, []).append(entry)
                if entry.registered and entry.world:
                    model.registered_union |= entry.run_state
                    model.shared_union |= entry.run_shared
        for declarers in model.by_field.values():
            declarers.sort(key=lambda item: (item.module, item.name))
        return model

    def registered_world_classes(self) -> List[ClassModel]:
        return sorted(
            (
                entry
                for entry in self.classes.values()
                if entry.registered and entry.world
            ),
            key=lambda item: (item.module, item.name),
        )

    def owner_of(self, graph: ProgramGraph, full: str) -> Optional[ClassModel]:
        """The ClassModel enclosing a method node, if any."""
        fact, module, _ = graph.nodes[full]
        if not fact.method or "." not in fact.qname:
            return None
        class_name = fact.qname.rsplit(".", 2)[-2]
        return self.classes.get((module, class_name))


# ---------------------------------------------------------------------------
# reachability with the build cut


@dataclass
class Reach:
    """How a function was reached: the root plus a parent pointer."""

    root: str
    parent: Optional[str]
    line: int  # call line in the parent (0 for roots)


def is_cut(graph: ProgramGraph, full: str) -> bool:
    fact, module, _ = graph.nodes[full]
    if module in BUILD_CUT_MODULES:
        return True
    return fact.qname.rsplit(".", 1)[-1] in BUILD_CUT_NAMES


def reachable_from(
    graph: ProgramGraph, roots: Sequence[str]
) -> Dict[str, Reach]:
    """Forward BFS from the roots present in the graph, never following
    an edge into the build cut.  Deterministic: roots and edges are
    visited in sorted/recorded order, so parent pointers (and therefore
    witness chains) are stable."""
    reached: Dict[str, Reach] = {}
    for root in sorted(roots):
        if root not in graph.nodes or root in reached:
            continue
        queue = [root]
        reached[root] = Reach(root=root, parent=None, line=0)
        while queue:
            current = queue.pop(0)
            for edge in graph.edges.get(current, ()):
                if edge.dst in reached or is_cut(graph, edge.dst):
                    continue
                reached[edge.dst] = Reach(
                    root=root, parent=current, line=edge.line
                )
                queue.append(edge.dst)
    return reached


def witness_chain(
    graph: ProgramGraph, reached: Dict[str, Reach], full: str
) -> List[str]:
    """Display names from the root down to ``full`` (inclusive)."""
    chain: List[str] = []
    current: Optional[str] = full
    seen: Set[str] = set()
    while current is not None and current not in seen:
        seen.add(current)
        chain.append(graph.display(current))
        current = reached[current].parent
    chain.reverse()
    return chain


# ---------------------------------------------------------------------------
# store path resolution


def expand(path: str, aliases: Dict[str, str]) -> str:
    """Expand the leading component of ``path`` through the alias map."""
    for _ in range(ALIAS_EXPANSION_LIMIT):
        head, sep, rest = path.partition(".")
        replacement = aliases.get(head)
        if replacement is None or replacement.partition(".")[0] == head:
            break
        path = replacement + sep + rest
    return path


#: resolve_store verdicts.
OK = "ok"
SKIP = "skip"
UNREGISTERED = "unregistered"


@dataclass
class StoreResolution:
    verdict: str  # OK | SKIP | UNREGISTERED
    #: world classes the write is attributed to (empty for handle-rule
    #: passes, where the write goes through a registered handle).
    classes: List[ClassModel] = field(default_factory=list)
    #: final field the write targets (None when skipped).  Declared last:
    #: the annotation binds ``field`` in the class namespace, which would
    #: shadow :func:`dataclasses.field` for any later default_factory.
    field: Optional[str] = None


def resolve_store(
    parts: Sequence[str],
    owner: Optional[ClassModel],
    model: WorldModel,
) -> StoreResolution:
    """Classify one alias-expanded store path (see module docstring)."""
    if len(parts) < 2:
        return StoreResolution(SKIP)  # bare local
    known = model.registered_union | model.shared_union
    if parts[0] == "self":
        if owner is None or not owner.world:
            return StoreResolution(SKIP)  # a class's own non-world state
        target = parts[1]
        if len(parts) == 2:
            if owner.covers(target):
                return StoreResolution(OK, field=target, classes=[owner])
            return StoreResolution(UNREGISTERED, field=target, classes=[owner])
        # handle rule: writing *through* registered per-run state.
        if any(component in known for component in parts[1:-1]):
            return StoreResolution(OK, field=parts[-1])
        return StoreResolution(UNREGISTERED, field=parts[-1], classes=[owner])
    # Non-self path: handle rule first, then name-based attribution.
    if len(parts) > 2 and any(component in known for component in parts[1:-1]):
        return StoreResolution(OK, field=parts[-1])
    target = parts[-1]
    declarers = model.by_field.get(target, [])
    world = [entry for entry in declarers if entry.world]
    outside = [entry for entry in declarers if not entry.world]
    if not world or outside:
        # Not world state, or ambiguous across the world boundary.
        return StoreResolution(SKIP)
    if any(entry.covers(target) for entry in world):
        return StoreResolution(
            OK, field=target, classes=[e for e in world if e.covers(target)]
        )
    return StoreResolution(UNREGISTERED, field=target, classes=world)
