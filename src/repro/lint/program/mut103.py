"""MUT103: nothing may mutate objects that crossed the pickle boundary.

``run_parallel`` hands each worker a :class:`CampaignSpec` — by design a
frozen value object, because under a fork start method the parent and
all workers *share* the pre-fork spec pages, and under spawn each worker
gets an independent copy.  A write through the spec (or any object
reachable from it, like the embedded ``InternetConfig``) therefore
diverges silently between start methods and between parent and worker.
DET003 already bans declaring mutable-typed fields on the boundary
classes; this rule tightens that from *types* to *actual writes*: it
taints the spec parameter at each worker entry point, propagates the
taint through call arguments (alias-expanded, positionally mapped with
the ``self``/``cls`` offset for method calls), and flags any store fact
whose expanded path is rooted at a tainted name::

    'parallel.run_shard' writes 'spec.targets' through the CampaignSpec
    pickle boundary (tainted via parallel._shard_worker ->
    parallel.run_shard); workers must treat the spec as frozen

Taint does not follow the build cut — ``build_internet`` consumes the
config to construct a fresh world, and its writes are construction, not
boundary mutation (MUT101's cut, applied to the same edges).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import Violation
from . import escape
from .facts import FileFacts
from .graph import ProgramGraph, _resolve

RULE = "MUT103"
VERSION = 1
DESCRIPTION = (
    "whole-program: worker code must never write through the "
    "CampaignSpec handed across the pickle boundary (frozen by "
    "contract; DET003 tightened from field types to actual mutations)"
)

#: Entry points whose ``spec`` parameter is the boundary object.
BOUNDARY_ROOTS = (
    "repro.prober.parallel.run_shard",
    "repro.prober.parallel.run_single",
    "repro.prober.parallel._shard_worker",
)

#: The boundary parameter name at the roots.
BOUNDARY_PARAM = "spec"

#: taint witness: how a (function, param) became tainted.
_Witness = Tuple[Optional[str], int]  # (caller full name or None, line)


def check(
    graph: ProgramGraph, facts: Dict[str, FileFacts]
) -> List[Violation]:
    tainted = _propagate(graph)
    violations: List[Violation] = []
    for full in sorted(tainted):
        fact, _, path = graph.nodes[full]
        params = tainted[full]
        for store in fact.stores:
            expanded = escape.expand(store["path"], fact.aliases)
            parts = expanded.split(".")
            if len(parts) < 2 or parts[0] not in params:
                continue
            chain = _chain(graph, tainted, full)
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=store["line"],
                    column=1,
                    message=(
                        "'%s' writes '%s' through the CampaignSpec pickle "
                        "boundary (tainted via %s); workers must treat the "
                        "spec as frozen"
                        % (graph.display(full), expanded, " -> ".join(chain))
                    ),
                )
            )
    return violations


def _propagate(graph: ProgramGraph) -> Dict[str, Dict[str, _Witness]]:
    """function full name -> {tainted param -> witness}, to a fixpoint."""
    tainted: Dict[str, Dict[str, _Witness]] = {}
    queue: List[str] = []
    for root in BOUNDARY_ROOTS:
        node = graph.nodes.get(root)
        if node is not None and BOUNDARY_PARAM in node[0].params:
            tainted[root] = {BOUNDARY_PARAM: (None, node[0].line)}
            queue.append(root)
    while queue:
        src = queue.pop(0)
        fact, module, _ = graph.nodes[src]
        names = set(tainted[src])
        for call in fact.calls:
            flows = _tainted_args(call, fact.aliases, names)
            if not flows:
                continue
            for dst in _resolve(graph, module, fact, call):
                if escape.is_cut(graph, dst):
                    continue
                dst_fact = graph.nodes[dst][0]
                offset = (
                    1
                    if dst_fact.method
                    and call.get("attr") is not None
                    and dst_fact.params
                    and dst_fact.params[0] in ("self", "cls")
                    else 0
                )
                entry = tainted.setdefault(dst, {})
                grew = False
                for index, kwarg in flows:
                    if kwarg is not None:
                        param = kwarg if kwarg in dst_fact.params else None
                    else:
                        position = index + offset
                        param = (
                            dst_fact.params[position]
                            if position < len(dst_fact.params)
                            else None
                        )
                    if param is not None and param not in entry:
                        entry[param] = (src, call["line"])
                        grew = True
                if grew and dst not in queue:
                    queue.append(dst)
    return tainted


def _tainted_args(
    call: Dict[str, object],
    aliases: Dict[str, str],
    names: set,
) -> List[Tuple[int, Optional[str]]]:
    """(positional index, kwarg name or None) of spec-rooted arguments."""
    flows: List[Tuple[int, Optional[str]]] = []
    arg_paths = call.get("arg_paths") or []
    for index, path in enumerate(arg_paths):
        if isinstance(path, str):
            root = escape.expand(path, aliases).partition(".")[0]
            if root in names:
                flows.append((index, None))
    kwarg_paths = call.get("kwarg_paths") or {}
    if isinstance(kwarg_paths, dict):
        for kwarg in sorted(kwarg_paths):
            path = kwarg_paths[kwarg]
            if isinstance(path, str):
                root = escape.expand(path, aliases).partition(".")[0]
                if root in names:
                    flows.append((0, kwarg))
    return flows


def _chain(
    graph: ProgramGraph,
    tainted: Dict[str, Dict[str, _Witness]],
    start: str,
) -> List[str]:
    """Display names from the boundary root down to ``start``."""
    chain: List[str] = []
    current: Optional[str] = start
    seen = set()
    while current is not None and current not in seen:
        seen.add(current)
        chain.append(graph.display(current))
        witnesses = tainted[current]
        # Deterministic: follow the first witness in sorted param order.
        current = witnesses[sorted(witnesses)[0]][0]
    chain.reverse()
    return chain
