"""OBS101: telemetry is observe-only inside ``netsim``/``prober``.

``repro.obs`` exists so a campaign can *report* what happened; the
moment a counter value steers a branch, feeds arithmetic, or lands in
simulation state, disabling metrics changes the run — the exact
Heisenberg failure PR 3's decoupling property-tests guard against at
runtime.  OBS101 is the static half: inside any ``netsim``/``prober``
module, no value read back from a telemetry handle (``to_dict()``,
``total()``, ``elapsed_seconds()``, ...) may flow into control flow,
arithmetic, object state, or mutating calls on non-telemetry objects.

Building handles (``registry.counter(...)``) and shipping readbacks out
through plain function calls or return values (``CampaignResult(metrics=
registry.to_dict())``) stay legal — that is the observe path.

The dataflow facts are extracted per file (cacheable); this module only
applies the module scope and renders violations.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import Violation
from .facts import FileFacts

RULE = "OBS101"
DESCRIPTION = (
    "whole-program: no dataflow from repro.obs readbacks into netsim/"
    "prober control flow or state (telemetry is observe-only)"
)

#: Bumped when this checker's logic changes; folded into the facts-cache
#: key so stale cached analysis never survives a rule edit.
VERSION = 2


def in_scope(module: str) -> bool:
    parts = module.split(".")
    if "obs" in parts:
        return False
    return "netsim" in parts or "prober" in parts


def check(files: Dict[str, FileFacts]) -> List[Violation]:
    violations: List[Violation] = []
    for path in sorted(files):
        facts = files[path]
        if not in_scope(facts.module):
            continue
        for flow in facts.obs_flows:
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=flow["line"],
                    column=flow["col"],
                    message="%s; repro.obs is observe-only in simulation "
                    "code (guarantee: metrics on/off cannot change the run)"
                    % flow["detail"],
                )
            )
    return violations
