"""PERF101: no per-iteration allocation in hot regions.

The columnar fast paths (PR 5) exist because the scalar hot path spent
most of its time constructing throwaway Python objects — one tuple, one
bytes, one packed header per probe.  This rule keeps the hot region
allocation-free *statically*: every function reachable from a hot root
(``# repro-lint: hot-loop`` or :data:`~repro.lint.program.perf.
DEFAULT_HOT_ROOTS`, build cut applied) is scanned for allocation sites
that execute once per iteration:

* list/set/dict comprehensions and non-empty container literals inside
  a loop — or anywhere in a hot *root's* body, since the root function
  is itself the body of a per-probe/per-batch loop;
* object construction (CapWords calls) in the same positions, excluding
  the raise path;
* ``struct.pack``, which allocates a fresh packed buffer per call where
  a prebuilt :class:`~repro.prober.encoding.ProbeTemplate` patch exists.

Findings are anchored at the allocation with the witness call chain
from the hot root in the message.  Amortized or output-carrying
allocations (the batch's result list, a per-response record) are the
caller's call — suppress with ``# repro-lint: disable=PERF101`` and a
written reason.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import Violation
from . import perf
from .facts import FileFacts
from .graph import ProgramGraph

RULE = "PERF101"
VERSION = 1
DESCRIPTION = (
    "whole-program: no per-iteration allocation (throwaway "
    "comprehensions/literals, object construction, struct.pack) in "
    "functions reachable from a # repro-lint: hot-loop root"
)

#: Site kinds (see :func:`repro.lint.program.perf.perf_sites`) this rule owns.
KINDS = frozenset({"comprehension", "display", "construction", "struct-pack"})


def check(
    graph: ProgramGraph, facts: Dict[str, FileFacts]
) -> List[Violation]:
    from . import escape

    roots, reached = perf.hot_region(graph)
    violations: List[Violation] = []
    for full in sorted(reached):
        fact, _, path = graph.nodes[full]
        is_root = full in roots
        for site in fact.perf:
            if site["rule"] != RULE or site["kind"] not in KINDS:
                continue
            if not (site["loop"] or is_root):
                continue
            chain = escape.witness_chain(graph, reached, full)
            root = reached[full].root
            violations.append(
                Violation(
                    rule=RULE,
                    path=path,
                    line=site["line"],
                    column=1,
                    message=(
                        "'%s' is in the hot region rooted at '%s' and "
                        "allocates %s per iteration via %s — hoist it out "
                        "of the hot loop or patch a reused buffer"
                        % (
                            graph.display(full),
                            graph.display(root),
                            site["detail"],
                            " -> ".join(chain),
                        )
                    ),
                )
            )
    return violations
