"""Per-function mutation and aliasing fact extraction.

The mutation half of the whole-program analysis: every function is
distilled into a list of **store facts** — attribute stores, subscript
stores (including slice assignment), augmented assignments, ``del``
targets, and calls to container-mutating methods (``append`` /
``update`` / ``setdefault`` / ``clear`` / …) or functions that mutate
their first argument in place (``heappush`` and friends) — plus an
**alias map** from single-assigned locals to the pure attribute chains
they alias (``slots = self._slots`` means ``slots.append(x)`` mutates
``self._slots``).

Each store fact is a plain dict (JSON-cacheable alongside the rest of
:class:`~repro.lint.program.facts.FileFacts`)::

    {"path": "self.stats.probes", "line": 17, "kind": "attr"}
    {"path": "self._path_cache",  "line": 90, "kind": "subscript"}
    {"path": "router.interfaces", "line": 42, "kind": "call:append"}

``path`` is the dotted chain being written through, **before** alias
expansion — expansion happens at rule time against the function's alias
map so the facts stay a pure function of the file's bytes.

The same pass records **class facts** per file: declared fields (from
``__slots__``, dataclass-style annotated class bodies, and ``self.X``
stores inside ``__init__``/``__post_init__``) and any
``@run_state(...)`` registration (fields, ``shared=`` survivors,
``constructed_per_run=`` flag).  The rules in :mod:`.escape` join these
into the world model MUT101/MUT102/MUT103 check against.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional

#: Method names whose call mutates the receiver container in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

#: Free functions that mutate their first positional argument in place.
MUTATOR_FUNCTIONS = frozenset(
    {
        "heappush",
        "heappop",
        "heapify",
        "heapreplace",
        "heappushpop",
        "insort",
        "insort_left",
        "insort_right",
    }
)


def dotted_path(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_path(node.value)
        return None if base is None else base + "." + node.attr
    return None


def store_facts(own_nodes: Iterable[ast.AST]) -> List[Dict[str, Any]]:
    """Every mutation this scope performs, in (line, path) order."""
    stores: List[Dict[str, Any]] = []

    def emit(path: Optional[str], line: int, kind: str) -> None:
        if path is not None:
            stores.append({"path": path, "line": line, "kind": kind})

    def target_store(target: ast.AST, line: int) -> None:
        if isinstance(target, ast.Attribute):
            emit(dotted_path(target), line, "attr")
        elif isinstance(target, ast.Subscript):
            emit(dotted_path(target.value), line, "subscript")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                target_store(element, line)
        elif isinstance(target, ast.Starred):
            target_store(target.value, line)

    for node in own_nodes:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                target_store(target, node.lineno)
        elif isinstance(node, ast.AugAssign):
            target_store(node.target, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                target_store(node.target, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                target_store(target, node.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                emit(
                    dotted_path(func.value),
                    node.lineno,
                    "call:%s" % func.attr,
                )
            elif (
                isinstance(func, (ast.Name, ast.Attribute))
                and (dotted_path(func) or "").rsplit(".", 1)[-1]
                in MUTATOR_FUNCTIONS
                and node.args
            ):
                name = (dotted_path(func) or "").rsplit(".", 1)[-1]
                emit(dotted_path(node.args[0]), node.lineno, "call:%s" % name)
    stores.sort(key=lambda item: (item["line"], item["path"], item["kind"]))
    return stores


def alias_facts(env: Dict[str, ast.AST]) -> Dict[str, str]:
    """local name -> dotted chain, for single-assigned pure-chain locals.

    ``env`` is the scope's single-assignment map (see
    :func:`~repro.lint.program.facts._single_assignments`).
    """
    aliases: Dict[str, str] = {}
    for name, value in env.items():
        path = dotted_path(value)
        if path is not None and path != name:
            aliases[name] = path
    return aliases


# ---------------------------------------------------------------------------
# class facts: declared fields + @run_state registrations


def class_facts(tree: ast.Module) -> List[Dict[str, Any]]:
    """One dict per class defined anywhere in the file."""
    found: List[Dict[str, Any]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            found.append(_class_fact(node))
    found.sort(key=lambda item: (item["line"], item["name"]))
    return found


def _class_fact(node: ast.ClassDef) -> Dict[str, Any]:
    info: Dict[str, Any] = {
        "name": node.name,
        "line": node.lineno,
        "fields": {},
        "registered": False,
        "reg_line": None,
        "run_state": [],
        "run_shared": [],
        "per_run": False,
    }
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = dotted_path(deco.func)
        if name is None or name.rsplit(".", 1)[-1] != "run_state":
            continue
        info["registered"] = True
        info["reg_line"] = deco.lineno
        info["run_state"] = sorted(_string_items(deco.args))
        for keyword in deco.keywords:
            if keyword.arg == "shared":
                items = (
                    keyword.value.elts
                    if isinstance(keyword.value, (ast.Tuple, ast.List))
                    else []
                )
                info["run_shared"] = sorted(_string_items(items))
            elif keyword.arg == "constructed_per_run":
                if isinstance(keyword.value, ast.Constant):
                    info["per_run"] = bool(keyword.value.value)
    fields: Dict[str, int] = info["fields"]
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    for slot in _string_items(
                        statement.value.elts
                        if isinstance(statement.value, (ast.Tuple, ast.List))
                        else []
                    ):
                        fields.setdefault(slot, statement.lineno)
        elif isinstance(statement, ast.AnnAssign):
            # dataclass-style declared field
            if isinstance(statement.target, ast.Name):
                fields.setdefault(statement.target.id, statement.lineno)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if statement.name in ("__init__", "__post_init__"):
                for attr, line in _init_self_stores(statement):
                    fields.setdefault(attr, line)
    return info


def _string_items(nodes: Iterable[ast.AST]) -> List[str]:
    items: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            items.append(node.value)
    return items


def _init_self_stores(func: ast.AST) -> List[Any]:
    """(attr, line) for every ``self.X = ...`` directly in a constructor."""
    stores: List[Any] = []
    for node in ast.walk(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                stores.append((target.attr, node.lineno))
    return stores
