"""ShardSan — the runtime shared-world write sanitizer.

MUT101 proves statically that worker-reachable code only writes
registered per-run state; ShardSan checks what a *running* campaign
actually writes.  Inside a ``ShardSan`` region every class registered
via :func:`repro.netsim.runstate.run_state` gets a guarded
``__setattr__``: an attribute write that is neither a registered
per-run field, a ``shared=`` cache, nor part of object construction is
recorded (and, in ``raise`` mode, aborts on the spot)::

    with ShardSan(mode="record", scope="repro") as san:
        world = _world_for(spec.internet)
        san.watch(world)                  # wrap unregistered containers
        run_parallel(spec, shards=4, processes=1)
    assert not san.reports

``watch`` covers the half ``__setattr__`` cannot see: mutating the
*contents* of an unregistered container field (``router.interfaces
.append(...)``, ``truth.routers[...] = ...``) never triggers a setattr.
Watching a built world replaces every plain ``list``/``dict`` attribute
that is **not** covered by a ``@run_state`` registration with a tracked
subclass whose mutators report before delegating; registered containers
(``Router.atomic_frag_until``) and ``shared=`` caches
(``Internet._path_cache``) stay untouched because mutating them is the
sanctioned contract.  On exit every tracked container is converted back
to its plain type, preserving whatever mutations record mode let
through.

Two standing exemptions mirror the static build cut exactly:

* callers in ``repro.netsim.build`` — constructing a world is not
  mutating one (MUT101 cuts the same edges);
* this module itself, so wrapping/unwrapping cannot trip the wires.

Scoping follows DetSan: ``scope="repro"`` trips only on calls from
``repro.*`` modules, so the test harness and stdlib internals pass
through.
"""

from __future__ import annotations

import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Set, Tuple

from ..netsim.runstate import RunState

#: Caller-module prefixes that never trip (see module docstring).
_EXEMPT_PREFIXES = ("repro.lint.shardsan", "repro.netsim.build")

#: Container mutators guarded on tracked lists.
_LIST_MUTATORS = (
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "__setitem__",
    "__delitem__",
    "__iadd__",
    "__imul__",
)

#: Container mutators guarded on tracked dicts.
_DICT_MUTATORS = (
    "__setitem__",
    "__delitem__",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "__ior__",
)


class ShardSanViolation(RuntimeError):
    """An unregistered world write happened inside a ShardSan region."""


class ShardSanUsageError(RuntimeError):
    """ShardSan itself was misconfigured."""


@dataclass
class ShardSanReport:
    """One recorded unregistered write."""

    kind: str  # "setattr" | "list" | "dict"
    target: str  # e.g. "Internet.counter" or "Router.interfaces.append"
    caller: str  # __name__ of the calling module
    stack: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return "unregistered %s write %s from %s" % (
            self.kind,
            self.target,
            self.caller,
        )


def _slot_names(cls: type) -> List[str]:
    """All slot names declared along the MRO (deduplicated, in order)."""
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in names:
                names.append(name)
    return names


def _allowed_fields(cls: type) -> Set[str]:
    """Fields a registered class may write outside construction."""
    allowed: Set[str] = set()
    for klass in cls.__mro__:
        if RunState.is_registered(klass):
            allowed |= set(RunState.fields(klass))
            allowed |= set(RunState.shared(klass))
    return allowed


class ShardSan:
    """Context manager guarding writes to the shared simulated world."""

    def __init__(
        self,
        mode: str = "raise",
        scope: str = "repro",
        max_stack_frames: int = 12,
    ) -> None:
        if mode not in ("raise", "record"):
            raise ShardSanUsageError(
                "mode must be 'raise' or 'record', got %r" % mode
            )
        if scope not in ("repro", "all"):
            raise ShardSanUsageError(
                "scope must be 'repro' or 'all', got %r" % scope
            )
        self.mode = mode
        self.scope = scope
        self.max_stack_frames = max_stack_frames
        self.reports: List[ShardSanReport] = []
        #: LIFO (cls, name, original or None) class-attribute restore stack.
        self._patched: List[Tuple[type, str, Any]] = []
        #: (object, attr, plain type) of containers wrapped by watch().
        self._watched: List[Tuple[Any, str, type]] = []
        #: ids of instances currently inside __init__ (writes exempt).
        self._constructing: Set[int] = set()

    # -- region management -------------------------------------------------

    def __enter__(self) -> "ShardSan":
        try:
            for cls in RunState.classes():
                self._guard_class(cls)
        except Exception:
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unwatch()
        self._restore()

    def _guard_class(self, cls: type) -> None:
        allowed = _allowed_fields(cls)
        original_setattr = cls.__setattr__
        guarded = self._make_setattr(cls, allowed, original_setattr)
        self._patch(cls, "__setattr__", guarded)
        original_init = cls.__dict__.get("__init__")
        if original_init is not None:
            self._patch(cls, "__init__", self._make_init(original_init))

    def _patch(self, cls: type, name: str, value: Any) -> None:
        self._patched.append((cls, name, cls.__dict__.get(name)))
        setattr(cls, name, value)

    def _restore(self) -> None:
        while self._patched:
            cls, name, original = self._patched.pop()
            if original is None:
                delattr(cls, name)
            else:
                setattr(cls, name, original)

    # -- tripwires ---------------------------------------------------------

    def _make_setattr(
        self, cls: type, allowed: Set[str], original: Callable[..., None]
    ) -> Callable[..., None]:
        sanitizer = self

        def guarded_setattr(obj: Any, name: str, value: Any) -> None:
            if name not in allowed and id(obj) not in sanitizer._constructing:
                caller = sys._getframe(1).f_globals.get("__name__", "")
                if sanitizer._trips(caller):
                    sanitizer._report(
                        "setattr", "%s.%s" % (cls.__name__, name), caller
                    )
            original(obj, name, value)

        return guarded_setattr

    def _make_init(self, original: Callable[..., None]) -> Callable[..., None]:
        sanitizer = self

        def guarded_init(obj: Any, *args: Any, **kwargs: Any) -> None:
            sanitizer._constructing.add(id(obj))
            try:
                original(obj, *args, **kwargs)
            finally:
                sanitizer._constructing.discard(id(obj))

        return guarded_init

    def _trips(self, caller: str) -> bool:
        if caller.startswith(_EXEMPT_PREFIXES):
            return False
        if self.scope == "repro" and not (
            caller == "repro" or caller.startswith("repro.")
        ):
            return False
        return True

    def _report(self, kind: str, target: str, caller: str) -> None:
        report = ShardSanReport(
            kind=kind,
            target=target,
            caller=caller,
            stack=traceback.format_stack(
                sys._getframe(2), limit=self.max_stack_frames
            ),
        )
        self.reports.append(report)
        if self.mode == "raise":
            raise ShardSanViolation(
                "ShardSan: %s — worker-side code may only write state "
                "registered via @run_state (see repro.netsim.runstate and "
                "docs/determinism.md)" % report.summary()
            )

    # -- container watching ------------------------------------------------

    def watch(self, internet: Any) -> int:
        """Wrap every unregistered plain list/dict attribute reachable
        from ``internet``'s world objects; returns the number wrapped."""
        wrapped = 0
        for obj in self._world_objects(internet):
            wrapped += self._watch_object(obj)
        return wrapped

    def unwatch(self) -> None:
        """Convert every tracked container back to its plain type."""
        while self._watched:
            obj, name, plain = self._watched.pop()
            current = getattr(obj, name)
            object.__setattr__(obj, name, plain(current))

    def _world_objects(self, internet: Any) -> Iterable[Any]:
        yield internet
        built = getattr(internet, "built", None)
        if built is not None:
            yield built
        truth = getattr(internet, "truth", None)
        if truth is None:
            return
        yield truth
        for asys in truth.ases.values():
            yield asys
            yield asys.plan
        for router in truth.routers.values():
            yield router
        for subnet in truth.subnets.values():
            yield subnet

    def _watch_object(self, obj: Any) -> int:
        cls = type(obj)
        allowed = _allowed_fields(cls)
        names = _slot_names(cls) or sorted(vars(obj))
        wrapped = 0
        for name in names:
            if name in allowed:
                continue  # mutating registered state is the contract
            value = getattr(obj, name, None)
            label = "%s.%s" % (cls.__name__, name)
            if type(value) is list:
                tracked: Any = _TrackedList(value)
                tracked.__dict__["_shardsan"] = (self, label)
            elif type(value) is dict:
                tracked = _TrackedDict(value)
                tracked._shardsan = (self, label)
            else:
                continue
            object.__setattr__(obj, name, tracked)
            self._watched.append((obj, name, type(value)))
            wrapped += 1
        return wrapped


def _make_container_mutator(
    base: type, method: str, kind: str
) -> Callable[..., Any]:
    original = getattr(base, method)

    def guarded(self: Any, *args: Any, **kwargs: Any) -> Any:
        hook = getattr(self, "_shardsan", None)
        if hook is not None:
            sanitizer, label = hook
            caller = sys._getframe(1).f_globals.get("__name__", "")
            if sanitizer._trips(caller):
                sanitizer._report(
                    kind, "%s.%s" % (label, method.strip("_")), caller
                )
        return original(self, *args, **kwargs)

    guarded.__name__ = method
    return guarded


class _TrackedList(list):
    """A list whose mutators report to the owning ShardSan."""

    #: set post-construction to (sanitizer, label); plain lists created
    #: by slicing/copying a tracked list have no hook and pass through.
    _shardsan: Any = None


class _TrackedDict(dict):
    """A dict whose mutators report to the owning ShardSan."""

    _shardsan: Any = None


for _method in _LIST_MUTATORS:
    setattr(
        _TrackedList, _method, _make_container_mutator(list, _method, "list")
    )
for _method in _DICT_MUTATORS:
    setattr(
        _TrackedDict, _method, _make_container_mutator(dict, _method, "dict")
    )
del _method
