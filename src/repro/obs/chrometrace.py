"""Chrome ``trace_event`` export for wall-clock profiles.

Converts a :class:`~repro.obs.profiler.WallProfiler` — parent phases
plus absorbed shard-worker exports — into the JSON object format that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly: complete events (``"ph": "X"``) with microsecond timestamps
and durations, one track per process.

The parent renders as pid 0; shard workers render as pid ``shard + 1``,
with metadata events naming each track.  Timestamps are the profiler's
raw ``time.perf_counter()`` readings rebased to the earliest span.  On
Linux (and macOS) ``perf_counter`` is a boot-relative monotonic clock
shared by fork children, so parent and worker spans line up on one
timeline; under a spawn start method the clocks still share an epoch on
those platforms, but the alignment guarantee is per-OS, not universal —
treat cross-process skew under exotic start methods as cosmetic.

Like every wall-clock view, the trace file is reporting-only output:
nothing in the simulation reads it back (OBS101), and its bytes are
host-dependent by nature — never compare traces for determinism.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .profiler import WallProfiler


def _complete_event(
    name: str,
    start_s: float,
    end_s: float,
    epoch_s: float,
    pid: int,
    args: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "ph": "X",
        "name": name,
        "cat": "wallclock",
        "ts": (start_s - epoch_s) * 1e6,
        "dur": max(0.0, end_s - start_s) * 1e6,
        "pid": pid,
        "tid": 0,
        "args": args,
    }


def _metadata_event(pid: int, label: str) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": "process_name",
        "pid": pid,
        "tid": 0,
        "args": {"name": label},
    }


def trace_events(profiler: WallProfiler) -> List[Dict[str, Any]]:
    """The profile as a flat ``traceEvents`` list."""
    tracks: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    starts: List[float] = []

    if profiler.spans:
        tracks.append(_metadata_event(0, "parent"))
    for span in profiler.spans:
        args: Dict[str, Any] = dict(span.attrs) if span.attrs else {}
        if span.bytes:
            args["bytes"] = span.bytes
        starts.append(span.start_s)
        spans.append(
            _complete_event(span.name, span.start_s, span.end_s, 0.0, 0, args)
        )
    for shard, export, pickle_bytes in sorted(
        profiler._workers, key=lambda item: item[0]
    ):
        pid = shard + 1
        tracks.append(_metadata_event(pid, "shard %d worker" % shard))
        for row in export.get("spans", []):
            name, start_s, end_s, _, byte_count, attrs = row
            args = dict(attrs) if attrs else {}
            if byte_count:
                args["bytes"] = byte_count
            if pickle_bytes:
                args.setdefault("shard_pickle_bytes", pickle_bytes)
            starts.append(float(start_s))
            spans.append(
                _complete_event(
                    str(name), float(start_s), float(end_s), 0.0, pid, args
                )
            )
    epoch_us = min(starts) * 1e6 if starts else 0.0
    for event in spans:
        event["ts"] -= epoch_us
    return tracks + spans


def chrome_trace(profiler: WallProfiler) -> Dict[str, Any]:
    """The full Chrome/Perfetto trace document."""
    return {
        "traceEvents": trace_events(profiler),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str, profiler: WallProfiler) -> str:
    """Write the Perfetto-loadable JSON trace to ``path``; returns it."""
    with open(path, "w") as sink:
        json.dump(chrome_trace(profiler), sink, indent=1, sort_keys=True)
        sink.write("\n")
    return path
