"""Hierarchical wall-clock profiling for the parallel pipeline.

The virtual-time :class:`~repro.obs.trace.Tracer` answers "where in the
simulated schedule did time go"; this module answers the *other*
question — where the **host's** time goes when a campaign runs: world
build vs. pool startup vs. shard execution vs. pickling the results
back over the pipe.  That breakdown is what turns the ROADMAP's
"profile pickle/IPC and pool startup" item into measured numbers.

A :class:`WallProfiler` mirrors the tracer's shape: nested ``phase()``
spans opened with ``with``, strictly stacked because the pipeline is
sequential in each process.  Two additions earn their keep on the hot
path:

* ``agg()`` handles — reusable aggregate accumulators for per-block
  work (``emit.craft`` runs thousands of times per campaign; recording
  one span per block would swamp the trace, so an aggregate keeps just
  count and total under the enclosing phase);
* byte accounting — ``add_bytes()`` attributes payload sizes (from
  :func:`pickled_bytes`, a counting pickler that never materializes the
  bytes) to the innermost open phase, so "how big is the IPC result
  traffic" is a first-class column, not a guess.

Worker processes build their own profiler (``CampaignSpec.profile``),
ship it home through :meth:`export` on the result, and the parent folds
the shards in with :meth:`add_worker`.  Exported views: a phase tree
with self/total time and attribution coverage (:meth:`report`), a
machine-readable dict for the run manifest's quarantined wall-clock
block (:meth:`to_profile_dict`), and Chrome-trace JSON via
:mod:`repro.obs.chrometrace`.

Determinism contract: like :mod:`repro.obs.wallclock`, this module is
an explicitly allowlisted wall-clock consumer (DET001/DetSan both
exempt ``repro.obs.profiler``; entropy stays banned).  Reads happen
here and only here, values flow strictly *outward* (report, manifest
``wallclock`` section, BENCH payloads), and profiling a campaign leaves
its ``.yrp6`` dump byte-identical — enforced by OBS101 statically and
the profiler test suite under ``pytest --detsan``.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

#: One recorded span, flattened for export: (name, start_s, end_s,
#: parent index, bytes, attrs-or-None).
SpanRow = Tuple[str, float, float, int, int, Optional[Dict[str, Any]]]


class WallProfileError(ValueError):
    """Raised for malformed profiles (unclosed or misnested phases)."""


def _now() -> float:
    """Monotonic host seconds (the same clock as ``repro.obs.wallclock``).

    Called dynamically — never captured at import — so the DetSan
    runtime sanitizer sees every read and can verify the allowlist
    exemption for this module is doing its job.
    """
    return time.perf_counter()


class WallSpan:
    """One named wall-clock interval."""

    __slots__ = ("name", "start_s", "end_s", "parent", "bytes", "attrs")

    def __init__(
        self,
        name: str,
        start_s: float,
        parent: int,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start_s = start_s
        #: Set on close; -1.0 while the span is open.
        self.end_s = -1.0
        #: Index of the enclosing span in the profile, or -1 for roots.
        self.parent = parent
        #: Payload bytes attributed to this span via ``add_bytes``.
        self.bytes = 0
        self.attrs = attrs

    def duration_s(self) -> float:
        return self.end_s - self.start_s


class _PhaseHandle:
    """Context manager closing one phase span on exit."""

    __slots__ = ("_profiler", "_index")

    def __init__(self, profiler: "WallProfiler", index: int) -> None:
        self._profiler = profiler
        self._index = index

    def __enter__(self) -> "_PhaseHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler._close(self._index)


class _AggHandle:
    """Reusable accumulator: each ``with`` adds one interval to the
    aggregate keyed under the phase that was open at creation time."""

    __slots__ = ("_entry", "_started")

    def __init__(self, entry: List[float]) -> None:
        self._entry = entry
        self._started = 0.0

    def __enter__(self) -> "_AggHandle":
        self._started = _now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        entry = self._entry
        entry[0] += 1
        entry[1] += _now() - self._started


class _NullHandle:
    """Shared no-op for both phases and aggregates when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class WallProfiler:
    """Records nested wall-clock phases, per-phase aggregates, and
    payload byte counts for one process of the pipeline."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[WallSpan] = []
        self._stack: List[int] = []
        #: (parent span index, name) -> [count, total_seconds]
        self._aggs: Dict[Tuple[int, str], List[float]] = {}
        #: (shard, exported worker profile, pickled bytes of its outcome)
        self._workers: List[Tuple[int, Dict[str, Any], int]] = []

    # -- recording -------------------------------------------------------
    def phase(self, name: str, **attrs: Any) -> Any:
        """Open a nested phase; close it by exiting the ``with`` block."""
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        self.spans.append(WallSpan(name, _now(), parent, attrs or None))
        self._stack.append(index)
        return _PhaseHandle(self, index)

    def agg(self, name: str) -> Any:
        """A reusable aggregate handle bound under the open phase; each
        ``with`` on it adds one interval (count + total, no span)."""
        parent = self._stack[-1] if self._stack else -1
        entry = self._aggs.setdefault((parent, name), [0.0, 0.0])
        return _AggHandle(entry)

    def add_bytes(self, count: int) -> None:
        """Attribute ``count`` payload bytes to the innermost open phase."""
        if self._stack:
            self.spans[self._stack[-1]].bytes += count

    def _close(self, index: int) -> None:
        if not self._stack or self._stack[-1] != index:
            raise WallProfileError(
                "phase %d closed out of order (open stack: %r)"
                % (index, self._stack)
            )
        self._stack.pop()
        self.spans[index].end_s = _now()

    # -- worker absorption ----------------------------------------------
    def add_worker(
        self, shard: int, export: Dict[str, Any], pickle_bytes: int
    ) -> None:
        """Fold one shard worker's exported profile into this one."""
        self._workers.append((shard, export, pickle_bytes))

    def export(self) -> Dict[str, Any]:
        """This process's raw profile as a compact picklable dict —
        what a shard worker attaches to its result for the parent."""
        rows: List[List[Any]] = [
            [span.name, span.start_s, span.end_s, span.parent, span.bytes,
             span.attrs]
            for span in self.spans
        ]
        aggs = [
            [key[0], key[1], int(entry[0]), entry[1]]
            for key, entry in sorted(self._aggs.items())
        ]
        return {"spans": rows, "aggs": aggs}

    def complete(self) -> bool:
        """True once every opened phase has closed — the profile is safe
        to snapshot (``run_parallel`` attaches one to its merged result
        only when its own root was the outermost phase)."""
        return not self._stack

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants: every phase closed, children
        inside their parents."""
        if self._stack:
            raise WallProfileError(
                "profile has %d unclosed phase(s)" % len(self._stack)
            )
        for index, span in enumerate(self.spans):
            if span.end_s < span.start_s:
                raise WallProfileError(
                    "phase %d (%s) ends before it starts" % (index, span.name)
                )
            if span.parent >= index:
                raise WallProfileError(
                    "phase %d (%s) references a later parent"
                    % (index, span.name)
                )

    # -- analysis --------------------------------------------------------
    def _span_rows(self) -> List[SpanRow]:
        return [
            (span.name, span.start_s, span.end_s, span.parent, span.bytes,
             span.attrs)
            for span in self.spans
        ]

    def _agg_rows(self) -> List[Tuple[int, str, int, float]]:
        return [
            (key[0], key[1], int(entry[0]), entry[1])
            for key, entry in sorted(self._aggs.items())
        ]

    def total_seconds(self) -> float:
        """Wall time covered by root phases (the profile's denominator)."""
        return sum(
            span.duration_s() for span in self.spans if span.parent == -1
        )

    def coverage(self, name: Optional[str] = None) -> float:
        """Fraction of a phase's duration attributed to named children
        (child phases plus aggregates).  ``name`` picks the first span
        with that name; default is the first root phase.  The acceptance
        bar for the pipeline is >= 0.95 at the top-level phase.
        """
        index = -1
        for i, span in enumerate(self.spans):
            if (span.name == name) if name is not None else (span.parent == -1):
                index = i
                break
        if index < 0:
            return 0.0
        duration = self.spans[index].duration_s()
        if duration <= 0.0:
            return 1.0
        attributed = sum(
            span.duration_s()
            for span in self.spans
            if span.parent == index
        )
        attributed += sum(
            entry[1]
            for key, entry in self._aggs.items()
            if key[0] == index
        )
        return min(1.0, attributed / duration)

    def phase_rows(self) -> List[Dict[str, Any]]:
        """The aggregated phase tree for this process (workers excluded):
        one row per distinct phase path, sorted so parents precede their
        children."""
        return _tree_rows(self._span_rows(), self._agg_rows())

    def to_profile_dict(self) -> Dict[str, Any]:
        """The machine-readable profile: phases, coverage, and per-shard
        worker breakdowns — the ``wallclock.profile`` manifest block and
        the BENCH ``wallclock_profile`` payload."""
        workers: List[Dict[str, Any]] = []
        for shard, export, pickle_bytes in sorted(
            self._workers, key=lambda item: item[0]
        ):
            spans = [_row_tuple(row) for row in export.get("spans", [])]
            aggs = [
                (int(row[0]), str(row[1]), int(row[2]), float(row[3]))
                for row in export.get("aggs", [])
            ]
            workers.append(
                {
                    "shard": shard,
                    "pickle_bytes": pickle_bytes,
                    "total_seconds": sum(
                        row[2] - row[1] for row in spans if row[3] == -1
                    ),
                    "phases": _tree_rows(spans, aggs),
                }
            )
        profile: Dict[str, Any] = {
            "total_seconds": self.total_seconds(),
            "coverage": self.coverage(),
            "phases": self.phase_rows(),
        }
        if workers:
            profile["workers"] = workers
            profile["pickle_bytes_total"] = sum(
                worker["pickle_bytes"] for worker in workers
            )
        return profile

    def report(self) -> str:
        """Human-readable phase tree with self/total time, attribution
        percentages, and pickled byte counts."""
        profile = self.to_profile_dict()
        total = profile["total_seconds"]
        lines = [
            "wall-clock profile: %.4fs total, %.1f%% attributed at the top "
            "phase" % (total, 100.0 * profile["coverage"])
        ]
        lines.append(_format_rows(profile["phases"], total))
        workers = profile.get("workers")
        if workers:
            lines.append(
                "workers: %d shard(s), %d bytes pickled over IPC"
                % (len(workers), profile["pickle_bytes_total"])
            )
            for worker in workers:
                lines.append(
                    "  shard %d: %.4fs, %d bytes pickled"
                    % (
                        worker["shard"],
                        worker["total_seconds"],
                        worker["pickle_bytes"],
                    )
                )
            lines.append(
                "worker phases (all shards summed; self%% of the parent's "
                "%.4fs wall, so overlap can exceed 100%%):" % total
            )
            lines.append(_format_rows(_sum_worker_rows(workers), total))
        return "\n".join(lines)


class NullWallProfiler(WallProfiler):
    """The default: every operation is a no-op."""

    enabled = False

    def phase(self, name: str, **attrs: Any) -> Any:
        return _NULL_HANDLE

    def agg(self, name: str) -> Any:
        return _NULL_HANDLE

    def add_bytes(self, count: int) -> None:
        pass

    def add_worker(
        self, shard: int, export: Dict[str, Any], pickle_bytes: int
    ) -> None:
        pass


#: Shared no-op profiler; safe to hand to any number of components.
NULL_PROFILER = NullWallProfiler()

#: Shared no-op aggregate handle for hot loops that rebind their handles
#: only when profiling is on.
NULL_AGG = _NULL_HANDLE


# ---------------------------------------------------------------------------
# byte accounting


class _CountingSink:
    """A write sink that counts bytes without keeping them."""

    __slots__ = ("bytes",)

    def __init__(self) -> None:
        self.bytes = 0

    def write(self, data: bytes) -> int:
        self.bytes += len(data)
        return len(data)


def pickled_bytes(obj: Any, protocol: Optional[int] = None) -> int:
    """Size of ``pickle.dumps(obj, protocol)`` without materializing it.

    ``protocol=None`` matches :mod:`multiprocessing`'s default wire
    format, so measuring a ``ShardOutcome`` here reports the bytes the
    pool actually pushed through its pipe (modulo framing overhead).
    Deterministic for a fixed object graph.
    """
    sink = _CountingSink()
    pickle.Pickler(sink, protocol).dump(obj)
    return sink.bytes


# ---------------------------------------------------------------------------
# tree aggregation (shared by the parent profile and worker exports)


def _row_tuple(row: List[Any]) -> SpanRow:
    return (
        str(row[0]),
        float(row[1]),
        float(row[2]),
        int(row[3]),
        int(row[4]),
        row[5],
    )


def _tree_rows(
    spans: List[SpanRow], aggs: List[Tuple[int, str, int, float]]
) -> List[Dict[str, Any]]:
    """Aggregate spans + aggs into one row per phase *path*.

    ``self_seconds`` is a span's duration minus its children's and its
    attached aggregates' totals — host time spent in the phase's own
    code.  Sorted by path components, so a parent row always precedes
    its children.
    """
    paths: List[str] = []
    child_time = [0.0] * len(spans)
    agg_time = [0.0] * len(spans)
    for parent, _, _, total in aggs:
        if 0 <= parent < len(spans):
            agg_time[parent] += total
    for name, start, end, parent, _, _ in spans:
        paths.append(name if parent < 0 else paths[parent] + "/" + name)
        if parent >= 0:
            child_time[parent] += end - start
    rows: Dict[str, List[float]] = {}
    for index, (name, start, end, parent, byte_count, _) in enumerate(spans):
        duration = end - start
        row = rows.setdefault(paths[index], [0.0, 0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += duration
        row[2] += duration - child_time[index] - agg_time[index]
        row[3] += byte_count
    for parent, name, count, total in aggs:
        path = paths[parent] + "/" + name if 0 <= parent < len(paths) else name
        row = rows.setdefault(path, [0.0, 0.0, 0.0, 0.0])
        row[0] += count
        row[1] += total
        row[2] += total
    return [
        {
            "path": path,
            "count": int(rows[path][0]),
            "total_seconds": rows[path][1],
            "self_seconds": rows[path][2],
            "bytes": int(rows[path][3]),
        }
        for path in sorted(rows, key=_path_key)
    ]


def _path_key(path: str) -> List[str]:
    return path.split("/")


def _format_rows(rows: List[Dict[str, Any]], total: float) -> str:
    """Aligned text table for a phase-row list; ``total`` scales self%."""
    width = max([24] + [
        2 * row["path"].count("/") + len(_leaf(row["path"])) for row in rows
    ])
    lines = [
        "%-*s  %7s  %10s  %10s  %6s  %10s"
        % (width, "phase", "count", "total(s)", "self(s)", "self%", "bytes")
    ]
    for row in rows:
        depth = row["path"].count("/")
        share = 100.0 * row["self_seconds"] / total if total > 0 else 0.0
        lines.append(
            "%-*s  %7d  %10.4f  %10.4f  %5.1f%%  %10s"
            % (
                width,
                "  " * depth + _leaf(row["path"]),
                row["count"],
                row["total_seconds"],
                row["self_seconds"],
                share,
                str(row["bytes"]) if row["bytes"] else "-",
            )
        )
    return "\n".join(lines)


def _leaf(path: str) -> str:
    return path.rsplit("/", 1)[-1]


def _sum_worker_rows(workers: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Worker phase rows summed across shards (path-aligned)."""
    merged: Dict[str, List[float]] = {}
    for worker in workers:
        for row in worker["phases"]:
            entry = merged.setdefault(row["path"], [0.0, 0.0, 0.0, 0.0])
            entry[0] += row["count"]
            entry[1] += row["total_seconds"]
            entry[2] += row["self_seconds"]
            entry[3] += row["bytes"]
    return [
        {
            "path": path,
            "count": int(merged[path][0]),
            "total_seconds": merged[path][1],
            "self_seconds": merged[path][2],
            "bytes": int(merged[path][3]),
        }
        for path in sorted(merged, key=_path_key)
    ]
