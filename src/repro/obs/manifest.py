"""Run manifests: one JSON document describing a campaign run.

A manifest is written next to the ``.yrp6`` record file and captures
everything needed to reproduce and audit the run: the world spec and
seed, the prober setup, the headline result counters, the full metrics
dump, and — in its own clearly quarantined section — the wall-clock
duration measured at the top-level boundary via
:mod:`repro.obs.wallclock`.

Everything except the ``wallclock`` and ``failures`` sections is a pure
function of the spec: :func:`deterministic_view` strips those, and
:func:`manifest_dumps` of the stripped view is byte-identical across
reruns and across parallel shard counts (for decoupled worlds, the same
contract as ``run_parallel``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Optional

from .metrics import MetricDump

if TYPE_CHECKING:  # avoid a runtime package cycle: obs never imports prober
    from ..prober.campaign import CampaignResult

#: Format identifier, bumped on breaking schema changes.
MANIFEST_FORMAT = "repro-manifest/1"

Manifest = Dict[str, Any]


class ManifestError(ValueError):
    """Raised for unreadable or wrong-format manifest files."""


def build_manifest(
    result: "CampaignResult",
    seed: int,
    metrics: Optional[MetricDump] = None,
    world: Optional[Dict[str, Any]] = None,
    records_file: Optional[str] = None,
    workers: int = 1,
    wall_seconds: Optional[float] = None,
    wall_profile: Optional[Dict[str, Any]] = None,
    failures: Optional[Dict[str, Any]] = None,
) -> Manifest:
    """Assemble the manifest document for one finished campaign."""
    manifest: Manifest = {
        "format": MANIFEST_FORMAT,
        "run": {
            "name": result.name,
            "vantage": result.vantage,
            "prober": result.prober,
            "pps": result.pps,
            "targets": result.targets,
            "sent": result.sent,
            "responses": len(result.records),
            "interfaces": len(result.interfaces),
            "duration_us": result.duration_us,
            "workers": workers,
        },
        "seed": seed,
        "summary": dict(result.summary),
        "metrics": metrics if metrics is not None else {},
    }
    if world is not None:
        manifest["world"] = world
    if records_file is not None:
        manifest["records_file"] = records_file
    if failures is not None:
        # The supervised runner's FailureReport: which workers crashed,
        # timed out or vanished, and what the supervisor did about it.
        # Host-dependent (a fact about this machine's scheduler and
        # memory pressure, not about the spec), so deterministic_view
        # strips it like the wallclock block.
        manifest["failures"] = failures
    if wall_seconds is not None or wall_profile is not None:
        # Host-dependent numbers live under ONE quarantined key, so
        # deterministic_view strips the whole block (profile included).
        wallclock: Dict[str, Any] = {}
        if wall_seconds is not None:
            wallclock["seconds"] = wall_seconds
        if wall_profile is not None:
            wallclock["profile"] = wall_profile
        manifest["wallclock"] = wallclock
    return manifest


def deterministic_view(manifest: Manifest) -> Manifest:
    """The manifest minus host-dependent fields (the wall-clock section,
    the records-file path, and the supervision failure report): the part
    covered by byte-identity."""
    return {
        key: value
        for key, value in manifest.items()
        if key not in ("wallclock", "records_file", "failures")
    }


def manifest_dumps(manifest: Manifest) -> str:
    """Canonical JSON: sorted keys, stable separators, trailing newline."""
    return (
        json.dumps(manifest, sort_keys=True, separators=(",", ": "), indent=1)
        + "\n"
    )


def write_manifest(path: str, manifest: Manifest) -> None:
    with open(path, "w") as sink:
        sink.write(manifest_dumps(manifest))


def read_manifest(path: str) -> Manifest:
    with open(path) as source:
        try:
            data = json.load(source)
        except json.JSONDecodeError as error:
            raise ManifestError("not a JSON manifest: %s" % error) from error
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise ManifestError("not a %s file: %s" % (MANIFEST_FORMAT, path))
    return data
