"""Observability over virtual time: metrics, spans, and run manifests.

The simulator measures itself the same way it measures the paper's
probers — on the virtual clock.  :mod:`~repro.obs.metrics` carries the
counters/series registry, :mod:`~repro.obs.trace` records nested
virtual-time spans, :mod:`~repro.obs.manifest` writes the per-run JSON
manifest, and :mod:`~repro.obs.wallclock` is the one allowlisted place
host time may be read (reporting only).  See ``docs/observability.md``.
"""

from .manifest import (
    MANIFEST_FORMAT,
    Manifest,
    ManifestError,
    build_manifest,
    deterministic_view,
    manifest_dumps,
    read_manifest,
    write_manifest,
)
from .metrics import (
    DEFAULT_BUCKET_US,
    NULL_REGISTRY,
    SCOPE_MERGE,
    SCOPE_RUN,
    Counter,
    CounterMap,
    Gauge,
    Histogram,
    MetricDump,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    TimeSeries,
    dump_to_json,
    merge_dumps,
    series_cumulative,
    series_points,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceError, Tracer
from .wallclock import Stopwatch

__all__ = [
    "Counter",
    "CounterMap",
    "DEFAULT_BUCKET_US",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "Manifest",
    "ManifestError",
    "MetricDump",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "SCOPE_MERGE",
    "SCOPE_RUN",
    "Span",
    "Stopwatch",
    "TimeSeries",
    "TraceError",
    "Tracer",
    "build_manifest",
    "deterministic_view",
    "dump_to_json",
    "manifest_dumps",
    "merge_dumps",
    "read_manifest",
    "series_cumulative",
    "series_points",
    "write_manifest",
]
