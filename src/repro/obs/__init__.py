"""Observability over virtual time: metrics, spans, and run manifests.

The simulator measures itself the same way it measures the paper's
probers — on the virtual clock.  :mod:`~repro.obs.metrics` carries the
counters/series registry, :mod:`~repro.obs.trace` records nested
virtual-time spans, :mod:`~repro.obs.manifest` writes the per-run JSON
manifest, and :mod:`~repro.obs.wallclock` is the one allowlisted place
host time may be read (reporting only).  See ``docs/observability.md``.
"""

from .manifest import (
    MANIFEST_FORMAT,
    Manifest,
    ManifestError,
    build_manifest,
    deterministic_view,
    manifest_dumps,
    read_manifest,
    write_manifest,
)
from .metrics import (
    DEFAULT_BUCKET_US,
    NULL_REGISTRY,
    SCOPE_MERGE,
    SCOPE_RUN,
    Counter,
    CounterMap,
    Gauge,
    Histogram,
    MetricDump,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    TimeSeries,
    dump_to_json,
    merge_dumps,
    series_cumulative,
    series_points,
)
from .chrometrace import chrome_trace, trace_events, write_chrome_trace
from .failures import FAILURES_FORMAT, FailureReport
from .profiler import (
    NULL_PROFILER,
    NullWallProfiler,
    WallProfileError,
    WallProfiler,
    WallSpan,
    pickled_bytes,
)
from .trace import NULL_TRACER, NullTracer, Span, TraceError, Tracer
from .wallclock import Stopwatch

__all__ = [
    "Counter",
    "CounterMap",
    "DEFAULT_BUCKET_US",
    "FAILURES_FORMAT",
    "FailureReport",
    "Gauge",
    "Histogram",
    "MANIFEST_FORMAT",
    "Manifest",
    "ManifestError",
    "MetricDump",
    "MetricError",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "NullWallProfiler",
    "SCOPE_MERGE",
    "SCOPE_RUN",
    "Span",
    "Stopwatch",
    "TimeSeries",
    "TraceError",
    "Tracer",
    "WallProfileError",
    "WallProfiler",
    "WallSpan",
    "build_manifest",
    "chrome_trace",
    "deterministic_view",
    "dump_to_json",
    "manifest_dumps",
    "merge_dumps",
    "pickled_bytes",
    "read_manifest",
    "series_cumulative",
    "series_points",
    "trace_events",
    "write_chrome_trace",
    "write_manifest",
]
