"""Virtual-time span tracing with nested context.

A :class:`Tracer` records intervals of **virtual time** as spans —
``campaign`` wrapping the whole run, ``tick`` for one pacing-loop
iteration, ``emit``/``probe`` inside it, zero-width ``limiter.decision``
events inside ``probe`` — so a trace shows *where in the virtual
schedule* things happened, never how long they took on the host CPU
(wall time is banned from sim code; see DET001).

Because the engine is a single-threaded run-to-completion scheduler, a
simple open-span stack gives strict nesting by construction: a span
closes before its parent, siblings never interleave, and virtual time
only advances between events, so spans opened and closed inside one
callback are zero-width.  The exported trace is deterministic: same
spec, same bytes.

The default is :data:`NULL_TRACER`, whose ``span()`` returns a shared
no-op context manager — tracing stays wired into the hot paths at the
cost of one method call per span.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional


class TraceError(ValueError):
    """Raised for malformed traces (unclosed or misnested spans)."""


class Span:
    """One named virtual-time interval."""

    __slots__ = ("name", "start_us", "end_us", "parent", "attrs")

    def __init__(
        self,
        name: str,
        start_us: int,
        parent: int,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start_us = start_us
        #: Set on close; -1 while the span is open.
        self.end_us = -1
        #: Index of the enclosing span in the trace, or -1 for roots.
        self.parent = parent
        self.attrs = attrs or {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "parent": self.parent,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
        }


class _SpanHandle:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "_index")

    def __init__(self, tracer: "Tracer", index: int) -> None:
        self._tracer = tracer
        self._index = index

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._index)


class Tracer:
    """Records spans against a virtual clock.

    The clock is bound late (:meth:`bind_clock`) because the engine that
    owns virtual time is usually created inside ``run_campaign`` after
    the tracer already exists.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self._clock: Callable[[], int] = clock if clock is not None else (lambda: 0)
        self.spans: List[Span] = []
        self._stack: List[int] = []

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point the tracer at a virtual clock (e.g. ``lambda: engine.now``)."""
        self._clock = clock

    # -- recording -------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span; close it by exiting the ``with`` block."""
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        self.spans.append(Span(name, self._clock(), parent, attrs or None))
        self._stack.append(index)
        return _SpanHandle(self, index)

    def event(self, name: str, when: Optional[int] = None, **attrs: Any) -> None:
        """Record a zero-width span at ``when`` (default: the clock now)."""
        at = self._clock() if when is None else when
        parent = self._stack[-1] if self._stack else -1
        span = Span(name, at, parent, attrs or None)
        span.end_us = at
        self.spans.append(span)

    def _close(self, index: int) -> None:
        if not self._stack or self._stack[-1] != index:
            raise TraceError(
                "span %d closed out of order (open stack: %r)"
                % (index, self._stack)
            )
        self._stack.pop()
        self.spans[index].end_us = self._clock()

    # -- export ----------------------------------------------------------
    def to_list(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def dumps(self) -> str:
        """Deterministic JSON trace (creation order, sorted attrs)."""
        return json.dumps(
            {"spans": self.to_list()},
            sort_keys=True,
            separators=(",", ": "),
            indent=1,
        )

    def validate(self) -> None:
        """Check the structural invariants: every span closed, children
        inside their parents, siblings non-overlapping in open order."""
        if self._stack:
            raise TraceError("trace has %d unclosed span(s)" % len(self._stack))
        last_sibling_end: Dict[int, int] = {}
        for index, span in enumerate(self.spans):
            if span.end_us < span.start_us:
                raise TraceError(
                    "span %d (%s) ends before it starts" % (index, span.name)
                )
            if span.parent >= 0:
                if span.parent >= index:
                    raise TraceError(
                        "span %d (%s) references a later parent" % (index, span.name)
                    )
                parent = self.spans[span.parent]
                if span.start_us < parent.start_us or span.end_us > parent.end_us:
                    raise TraceError(
                        "span %d (%s) escapes its parent %d (%s)"
                        % (index, span.name, span.parent, parent.name)
                    )
            previous_end = last_sibling_end.get(span.parent)
            if previous_end is not None and span.start_us < previous_end:
                raise TraceError(
                    "span %d (%s) overlaps its preceding sibling" % (index, span.name)
                )
            last_sibling_end[span.parent] = span.end_us


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class NullTracer(Tracer):
    """The default: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> Any:
        return _NULL_HANDLE

    def event(self, name: str, when: Optional[int] = None, **attrs: Any) -> None:
        pass

    def bind_clock(self, clock: Callable[[], int]) -> None:
        pass


#: Shared no-op tracer; safe to hand to any number of components.
NULL_TRACER = NullTracer()
