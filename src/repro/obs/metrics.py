"""Virtual-time metrics: counters, gauges, bucketed series, histograms.

The registry is the simulator's instrument panel.  Every metric is keyed
to the **virtual clock** — the only clock simulation code may read (see
DET001 and ``docs/observability.md``); wall time exists solely at the
top-level run boundary in :mod:`repro.obs.wallclock`.  That restriction
is what makes a metrics dump a *result* rather than a log: the same
campaign spec produces the same dump, byte for byte, on any machine and
in any process layout.

Two properties the rest of the system builds on:

**Deterministic dumps.**  :meth:`MetricsRegistry.to_dict` renders every
metric into plain JSON-able values with fully ordered keys, and
:func:`dump_to_json` serializes with sorted keys, so equal registries
produce equal bytes.

**Deterministic merges.**  :func:`merge_dumps` combines per-shard dumps
from the parallel runner into one dump by per-kind semantics: counters,
counter maps, series buckets, and histogram counts are summed.  Metrics
carry a *scope*: ``"merge"`` metrics count per-probe events that
partition exactly across permutation shards (their sums reproduce the
single-process dump bit for bit over decoupled worlds); ``"run"``
metrics — and every gauge — are per-process diagnostics (engine queue
depth, event totals) that are *dropped* at merge time because
aggregating them across processes has no meaning.

The default registry everywhere is :data:`NULL_REGISTRY`, whose metric
objects are shared no-op singletons, so instrumentation stays on the hot
paths at the cost of one method call per event.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: A metric dump: metric name -> rendered payload (plain JSON values).
MetricDump = Dict[str, Dict[str, Any]]

#: Metrics with this scope merge exactly across permutation shards.
SCOPE_MERGE = "merge"
#: Per-process diagnostics, dropped when shard dumps are merged.
SCOPE_RUN = "run"

#: Default virtual-time bucket width for time series: one virtual second.
DEFAULT_BUCKET_US = 1_000_000


class MetricError(ValueError):
    """Raised for inconsistent metric declarations or unmergeable dumps."""


class Metric:
    """Base class: a named instrument with a merge scope."""

    kind = ""

    __slots__ = ("name", "scope")

    def __init__(self, name: str, scope: str) -> None:
        if scope not in (SCOPE_MERGE, SCOPE_RUN):
            raise MetricError("unknown scope %r for metric %r" % (scope, name))
        self.name = name
        self.scope = scope

    def payload(self) -> Dict[str, Any]:
        """Kind-specific rendered values (JSON-able, fully ordered)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "scope": self.scope}
        data.update(self.payload())
        return data


class Counter(Metric):
    """A monotonically growing tally."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, scope: str = SCOPE_MERGE) -> None:
        super().__init__(name, scope)
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def payload(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge(Metric):
    """A point-in-time observation (queue depth, token level).

    Gauges are always run-scoped: the maximum queue depth of one shard's
    engine says nothing about the campaign as a whole, so merges drop
    them by construction.
    """

    kind = "gauge"

    __slots__ = ("last", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        super().__init__(name, SCOPE_RUN)
        self.last: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.samples = 0

    def set(self, value: Number) -> None:
        self.last = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def payload(self) -> Dict[str, Any]:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


class CounterMap(Metric):
    """A family of tallies keyed by a small integer (e.g. per-TTL yield)."""

    kind = "counter_map"

    __slots__ = ("values",)

    def __init__(self, name: str, scope: str = SCOPE_MERGE) -> None:
        super().__init__(name, scope)
        self.values: Dict[int, Number] = {}

    def inc(self, key: int, amount: Number = 1) -> None:
        self.values[key] = self.values.get(key, 0) + amount

    def total(self) -> Number:
        return sum(self.values.values())

    def payload(self) -> Dict[str, Any]:
        return {
            "values": [[key, self.values[key]] for key in sorted(self.values)]
        }


class TimeSeries(Metric):
    """Event amounts accumulated into fixed virtual-time buckets.

    ``record(now, amount)`` adds ``amount`` to the bucket containing the
    virtual timestamp ``now``; the rendered payload is a sorted list of
    ``[bucket_start_us, value]`` points.  Because cooperating shards emit
    on exactly the virtual-clock slots the single process would use, the
    per-bucket sums of shard series reproduce the single-process series.
    """

    kind = "series"

    __slots__ = ("bucket_us", "buckets")

    def __init__(
        self,
        name: str,
        bucket_us: int = DEFAULT_BUCKET_US,
        scope: str = SCOPE_MERGE,
    ) -> None:
        super().__init__(name, scope)
        if bucket_us < 1:
            raise MetricError("bucket_us must be >= 1: %r" % bucket_us)
        self.bucket_us = bucket_us
        self.buckets: Dict[int, Number] = {}

    def record(self, now: int, amount: Number = 1) -> None:
        bucket = (now // self.bucket_us) * self.bucket_us
        self.buckets[bucket] = self.buckets.get(bucket, 0) + amount

    def total(self) -> Number:
        return sum(self.buckets.values())

    def points(self) -> List[List[Number]]:
        return [[bucket, self.buckets[bucket]] for bucket in sorted(self.buckets)]

    def payload(self) -> Dict[str, Any]:
        return {"bucket_us": self.bucket_us, "points": self.points()}


class Histogram(Metric):
    """Value-distribution counts over fixed bounds.

    ``bounds`` are ascending upper edges; observations land in the first
    bucket whose bound is >= the value, or in the overflow bucket past
    the last bound.
    """

    kind = "histogram"

    __slots__ = ("bounds", "counts")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float],
        scope: str = SCOPE_MERGE,
    ) -> None:
        super().__init__(name, scope)
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise MetricError(
                "histogram bounds must be non-empty and strictly ascending: %r"
                % (bounds,)
            )
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def total(self) -> int:
        return sum(self.counts)

    def payload(self) -> Dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Re-requesting a name returns the existing instrument; requesting it
    with a different kind (or incompatible parameters) raises, so two
    call sites can never silently split one logical metric.
    """

    #: False on :class:`NullRegistry`: lets callers skip optional work
    #: (set maintenance, dump assembly) when nobody is listening.
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- factories -------------------------------------------------------
    def counter(self, name: str, scope: str = SCOPE_MERGE) -> Counter:
        metric = self._get(name, Counter)
        if metric is None:
            metric = Counter(name, scope)
            self._metrics[name] = metric
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge)
        if metric is None:
            metric = Gauge(name)
            self._metrics[name] = metric
        return metric

    def counter_map(self, name: str, scope: str = SCOPE_MERGE) -> CounterMap:
        metric = self._get(name, CounterMap)
        if metric is None:
            metric = CounterMap(name, scope)
            self._metrics[name] = metric
        return metric

    def series(
        self,
        name: str,
        bucket_us: int = DEFAULT_BUCKET_US,
        scope: str = SCOPE_MERGE,
    ) -> TimeSeries:
        metric = self._get(name, TimeSeries)
        if metric is None:
            metric = TimeSeries(name, bucket_us, scope)
            self._metrics[name] = metric
        elif metric.bucket_us != bucket_us:
            raise MetricError(
                "series %r already registered with bucket_us=%d (requested %d)"
                % (name, metric.bucket_us, bucket_us)
            )
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float],
        scope: str = SCOPE_MERGE,
    ) -> Histogram:
        metric = self._get(name, Histogram)
        if metric is None:
            metric = Histogram(name, bounds, scope)
            self._metrics[name] = metric
        elif metric.bounds != tuple(float(bound) for bound in bounds):
            raise MetricError(
                "histogram %r already registered with bounds %r"
                % (name, metric.bounds)
            )
        return metric

    def _get(self, name: str, expected: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            return None
        if type(metric) is not expected:
            raise MetricError(
                "metric %r already registered as %s, requested as %s"
                % (name, metric.kind, expected.__name__)
            )
        return metric

    # -- inspection ------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def to_dict(self, include_run_scoped: bool = True) -> MetricDump:
        """Render every metric; key order is sorted and value rendering
        is canonical, so equal registries dump equal bytes."""
        dump: MetricDump = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if not include_run_scoped and metric.scope == SCOPE_RUN:
                continue
            dump[name] = metric.to_dict()
        return dump

    def dumps(self, include_run_scoped: bool = True) -> str:
        return dump_to_json(self.to_dict(include_run_scoped=include_run_scoped))


# ---------------------------------------------------------------------------
# No-op instruments: the always-on default.
# ---------------------------------------------------------------------------
class NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass


class NullCounterMap(CounterMap):
    __slots__ = ()

    def inc(self, key: int, amount: Number = 1) -> None:
        pass


class NullTimeSeries(TimeSeries):
    __slots__ = ()

    def record(self, now: int, amount: Number = 1) -> None:
        pass


class NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = NullCounter("null")
_NULL_GAUGE = NullGauge("null")
_NULL_COUNTER_MAP = NullCounterMap("null")
_NULL_SERIES = NullTimeSeries("null")
_NULL_HISTOGRAM = NullHistogram("null", bounds=(1.0,))


class NullRegistry(MetricsRegistry):
    """The default: hands out shared no-op instruments and dumps empty."""

    enabled = False

    def counter(self, name: str, scope: str = SCOPE_MERGE) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def counter_map(self, name: str, scope: str = SCOPE_MERGE) -> CounterMap:
        return _NULL_COUNTER_MAP

    def series(
        self,
        name: str,
        bucket_us: int = DEFAULT_BUCKET_US,
        scope: str = SCOPE_MERGE,
    ) -> TimeSeries:
        return _NULL_SERIES

    def histogram(
        self,
        name: str,
        bounds: Sequence[float],
        scope: str = SCOPE_MERGE,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def to_dict(self, include_run_scoped: bool = True) -> MetricDump:
        return {}


#: Shared no-op registry; safe to hand to any number of components.
NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# Dump serialization and merging.
# ---------------------------------------------------------------------------
def dump_to_json(dump: MetricDump) -> str:
    """Canonical JSON for a dump: sorted keys, no whitespace drift."""
    return json.dumps(dump, sort_keys=True, separators=(",", ": "), indent=1)


def merge_dumps(dumps: Sequence[MetricDump]) -> MetricDump:
    """Merge per-shard dumps into one, by per-kind semantics.

    Counters, counter maps, series buckets, and histogram counts are
    summed; run-scoped metrics and gauges are dropped (per-process
    diagnostics).  Series bucket widths and histogram bounds must agree
    across shards — a mismatch raises :class:`MetricError` rather than
    producing a silently wrong aggregate.
    """
    merged: MetricDump = {}
    for dump in dumps:
        for name in sorted(dump):
            entry = dump[name]
            if entry.get("scope") != SCOPE_MERGE or entry.get("kind") == "gauge":
                continue
            current = merged.get(name)
            if current is None:
                merged[name] = _copy_entry(entry)
            else:
                _merge_entry(name, current, entry)
    return merged


def _copy_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    copied: Dict[str, Any] = {}
    for key, value in entry.items():
        if isinstance(value, list):
            copied[key] = [list(item) if isinstance(item, list) else item for item in value]
        else:
            copied[key] = value
    return copied


def _merge_entry(name: str, current: Dict[str, Any], entry: Dict[str, Any]) -> None:
    kind = current.get("kind")
    if entry.get("kind") != kind:
        raise MetricError(
            "metric %r has conflicting kinds across shards: %r vs %r"
            % (name, kind, entry.get("kind"))
        )
    if kind == "counter":
        current["value"] = current["value"] + entry["value"]
    elif kind == "counter_map":
        values = {key: value for key, value in current["values"]}
        for key, value in entry["values"]:
            values[key] = values.get(key, 0) + value
        current["values"] = [[key, values[key]] for key in sorted(values)]
    elif kind == "series":
        if current["bucket_us"] != entry["bucket_us"]:
            raise MetricError(
                "series %r has conflicting bucket widths across shards: %d vs %d"
                % (name, current["bucket_us"], entry["bucket_us"])
            )
        buckets = {bucket: value for bucket, value in current["points"]}
        for bucket, value in entry["points"]:
            buckets[bucket] = buckets.get(bucket, 0) + value
        current["points"] = [[bucket, buckets[bucket]] for bucket in sorted(buckets)]
    elif kind == "histogram":
        if current["bounds"] != entry["bounds"]:
            raise MetricError(
                "histogram %r has conflicting bounds across shards: %r vs %r"
                % (name, current["bounds"], entry["bounds"])
            )
        current["counts"] = [
            a + b for a, b in zip(current["counts"], entry["counts"])
        ]
    else:
        raise MetricError("metric %r has unmergeable kind %r" % (name, kind))


def series_points(dump: MetricDump, name: str) -> List[Tuple[int, Number]]:
    """The ``[bucket_start_us, value]`` points of a series in a dump."""
    entry = dump.get(name)
    if entry is None or entry.get("kind") != "series":
        return []
    return [(int(bucket), value) for bucket, value in entry["points"]]


def series_cumulative(dump: MetricDump, name: str) -> List[Tuple[int, Number]]:
    """Cumulative view of a series — e.g. the Figure 7 discovery curve
    reconstructed from the ``campaign.discovery`` telemetry."""
    running: Number = 0
    out: List[Tuple[int, Number]] = []
    for bucket, value in series_points(dump, name):
        running += value
        out.append((bucket, running))
    return out
