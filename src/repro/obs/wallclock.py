"""The single allowlisted wall-clock boundary.

Everything under the virtual clock is banned from reading host time
(DET001), because one wall-clock read in a path that feeds probe bytes
or event order silently breaks the bit-identity contracts.  But a run
manifest legitimately wants to record *how long the host took* — a
statement about the machine, not about the simulated campaign.  This
module is the one place that read may happen; the DET001 checker
allowlists exactly the module path ``repro.obs.wallclock`` and nothing
else.

Rules for callers:

* call only at the top-level run boundary (CLI, benchmark harness) —
  never from engine, netsim, prober, campaign, or analysis code;
* the value may be *reported* (manifest ``wallclock`` section, bench
  JSON) but must never influence simulation behaviour;
* determinism-sensitive consumers compare manifests through
  :func:`repro.obs.manifest.deterministic_view`, which strips the
  wall-clock section.
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic host seconds; meaningful only as a difference."""
    return time.perf_counter()


class Stopwatch:
    """Measures host duration across a top-level run boundary."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = now()

    def elapsed_seconds(self) -> float:
        return now() - self._started
