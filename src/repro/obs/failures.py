"""Failure telemetry for the supervised parallel runner.

A :class:`FailureReport` records what the supervisor in
:mod:`repro.prober.supervise` had to do to finish a campaign: every
worker fault (crash, timeout, silent death, corrupt result), every
retry, and every shard that fell back to in-parent serial execution.
The counters live in an ordinary :class:`~repro.obs.metrics.
MetricsRegistry`, so the report speaks the same dialect as the rest of
the telemetry layer, but the registry is *private to the report* — a
faulted-and-recovered campaign must produce a merged metrics dump
byte-identical to an unfaulted run, so supervision counters never mix
into the campaign's own registries.

The report rides home on ``CampaignResult.failures`` (as
:meth:`FailureReport.to_dict`) and lands in the run manifest's
``failures`` block, which :func:`repro.obs.manifest.deterministic_view`
strips alongside ``wallclock``: how often the host lost a worker is a
fact about the host, not about the spec.

Observe-only, like every ``repro.obs`` type: prober code may *write*
to a report (``record_*``) but must never read it back to steer
execution — OBS101 flags readbacks (``to_dict``, ``counts``,
``faults``) that flow into control or state.  The supervisor's retry
decisions come from its own local bookkeeping.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .metrics import MetricsRegistry

#: Format identifier for the ``failures`` block, bumped on schema change.
FAILURES_FORMAT = "repro-failures/1"

#: Fault causes, as recorded per attempt and counted per cause.
CAUSE_CRASH = "crash"
CAUSE_TIMEOUT = "timeout"
CAUSE_WORKER_DIED = "worker-died"
CAUSE_CORRUPT = "corrupt-result"

_CAUSE_COUNTERS = {
    CAUSE_CRASH: "shard.crashes",
    CAUSE_TIMEOUT: "shard.timeouts",
    CAUSE_WORKER_DIED: "shard.worker_deaths",
    CAUSE_CORRUPT: "shard.corrupt_results",
}

#: Every counter a report carries, pre-registered so a clean run dumps
#: explicit zeros (an absent counter would be ambiguous in a manifest).
COUNTER_NAMES = (
    "shard.crashes",
    "shard.corrupt_results",
    "shard.degraded",
    "shard.retries",
    "shard.timeouts",
    "shard.worker_deaths",
)

#: Tracebacks are clipped to their tail: the raising frame is at the
#: bottom, and manifests should stay human-sized.
MAX_DETAIL_CHARS = 4000


class FailureReport:
    """Per-shard attempt history plus cause counters for one campaign."""

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        for name in COUNTER_NAMES:
            self._registry.counter(name)
        self._attempts: List[Dict[str, Any]] = []
        self._degraded: List[int] = []

    # -- write side (the supervisor) ------------------------------------

    def record_fault(
        self, shard: int, attempt: int, cause: str, detail: str = ""
    ) -> None:
        """One failed attempt: ``attempt`` is 1-based, ``cause`` is one of
        the ``CAUSE_*`` constants, ``detail`` a traceback or diagnostic."""
        if len(detail) > MAX_DETAIL_CHARS:
            detail = "...[truncated]...\n" + detail[-MAX_DETAIL_CHARS:]
        self._attempts.append(
            {"shard": shard, "attempt": attempt, "cause": cause, "detail": detail}
        )
        counter = _CAUSE_COUNTERS.get(cause)
        if counter is not None:
            self._registry.counter(counter).inc()

    def record_retry(self, shard: int) -> None:
        """The supervisor decided to re-dispatch ``shard``."""
        self._registry.counter("shard.retries").inc()

    def record_degraded(self, shard: int) -> None:
        """``shard`` exhausted its retries and ran serially in-parent."""
        self._degraded.append(shard)
        self._registry.counter("shard.degraded").inc()

    # -- read side (reporting only; see OBS101) -------------------------

    def counts(self) -> Dict[str, int]:
        """Counter values by name (all counters, zeros included)."""
        return {
            name: int(entry["value"])
            for name, entry in self._registry.to_dict().items()
        }

    def faults(self) -> List[Dict[str, Any]]:
        """Attempt records sorted by (shard, attempt)."""
        return sorted(
            (dict(entry) for entry in self._attempts),
            key=lambda entry: (entry["shard"], entry["attempt"]),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The manifest ``failures`` block: canonical, JSON-ready."""
        return {
            "format": FAILURES_FORMAT,
            "metrics": self._registry.to_dict(),
            "attempts": self.faults(),
            "degraded": sorted(self._degraded),
        }
