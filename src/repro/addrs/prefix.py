"""IPv6 prefixes (base address + length) and prefix arithmetic.

A :class:`Prefix` is a hashable, totally ordered value object.  Ordering is
by (base, length), which groups covering prefixes immediately before their
more-specifics — the property both the radix trie construction and the
aggregation routines rely on.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence

from . import address
from .address import ADDRESS_BITS, MAX_ADDRESS, AddressError


class Prefix:
    """An IPv6 prefix: a base address and a length in bits (0..128).

    The base is always stored masked to the prefix length, so two
    prefixes constructed from different host addresses within the same
    block compare equal.
    """

    __slots__ = ("base", "length")

    def __init__(self, base: int, length: int):
        if not 0 <= length <= ADDRESS_BITS:
            raise AddressError("prefix length out of range: %r" % length)
        if not 0 <= base <= MAX_ADDRESS:
            raise AddressError("prefix base out of range: %r" % base)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "base", base & mask_for(length))

    def __setattr__(self, name, value):
        raise AttributeError("Prefix is immutable")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``addr/len`` text; a bare address implies /128."""
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise AddressError("invalid prefix length %r" % len_text) from None
            return cls(address.parse(addr_text), length)
        return cls(address.parse(text), ADDRESS_BITS)

    def __str__(self) -> str:
        return "%s/%d" % (address.format_address(self.base), self.length)

    def __repr__(self) -> str:
        return "Prefix(%s)" % self

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Prefix)
            and self.base == other.base
            and self.length == other.length
        )

    def __lt__(self, other: "Prefix") -> bool:
        return (self.base, self.length) < (other.base, other.length)

    def __le__(self, other: "Prefix") -> bool:
        return (self.base, self.length) <= (other.base, other.length)

    def __hash__(self) -> int:
        # Ints hash to themselves: PYTHONHASHSEED-independent, and the
        # value never escapes the process anyway.
        return hash((self.base, self.length))  # repro-lint: disable=DET001

    @property
    def last(self) -> int:
        """Highest address covered by this prefix."""
        return self.base | host_mask_for(self.length)

    @property
    def size(self) -> int:
        """Number of addresses covered (2**(128-length))."""
        return 1 << (ADDRESS_BITS - self.length)

    def contains(self, value: int) -> bool:
        """True if the address integer falls inside this prefix."""
        return (value & mask_for(self.length)) == self.base

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.base)

    def extend(self, length: int) -> "Prefix":
        """Lengthen to ``length`` keeping the same base (zero-extension).

        This is the ``zn`` transformation for a too-short prefix: the base
        address is unchanged (bits past the original length are already
        zero).  Raises if ``length`` is shorter than the current length.
        """
        if length < self.length:
            raise AddressError(
                "cannot extend /%d to shorter /%d" % (self.length, length)
            )
        return Prefix(self.base, length)

    def truncate(self, length: int) -> "Prefix":
        """Shorten (aggregate) to ``length``.

        This is the ``zn`` transformation for a too-long prefix.  Raises if
        ``length`` is longer than the current length.
        """
        if length > self.length:
            raise AddressError(
                "cannot truncate /%d to longer /%d" % (self.length, length)
            )
        return Prefix(self.base, length)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subdivisions of this prefix at ``new_length``.

        Careful with large expansions: a /32 has 2**32 /64 subnets.
        """
        if new_length < self.length:
            raise AddressError(
                "subnet length /%d shorter than /%d" % (new_length, self.length)
            )
        step = 1 << (ADDRESS_BITS - new_length)
        count = 1 << (new_length - self.length)
        for index in range(count):
            yield Prefix(self.base + index * step, new_length)

    def nth_subnet(self, new_length: int, index: int) -> "Prefix":
        """The ``index``-th subdivision at ``new_length`` without iterating."""
        if new_length < self.length:
            raise AddressError(
                "subnet length /%d shorter than /%d" % (new_length, self.length)
            )
        count = 1 << (new_length - self.length)
        if not 0 <= index < count:
            raise IndexError("subnet index %d out of range" % index)
        step = 1 << (ADDRESS_BITS - new_length)
        return Prefix(self.base + index * step, new_length)

    def random_address(self, rng: random.Random) -> int:
        """A uniformly random address within this prefix."""
        return self.base | rng.getrandbits(ADDRESS_BITS - self.length) \
            if self.length < ADDRESS_BITS else self.base

    def random_subnet(self, new_length: int, rng: random.Random) -> "Prefix":
        """A uniformly random subdivision of this prefix at ``new_length``."""
        if new_length < self.length:
            raise AddressError(
                "subnet length /%d shorter than /%d" % (new_length, self.length)
            )
        index = rng.getrandbits(new_length - self.length) if new_length > self.length else 0
        step = 1 << (ADDRESS_BITS - new_length)
        return Prefix(self.base + index * step, new_length)


def mask_for(length: int) -> int:
    """Network mask integer for a prefix length."""
    if length == 0:
        return 0
    return MAX_ADDRESS ^ ((1 << (ADDRESS_BITS - length)) - 1)


def host_mask_for(length: int) -> int:
    """Host (inverse) mask integer for a prefix length."""
    return (1 << (ADDRESS_BITS - length)) - 1


def aggregate(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Minimal covering set: drop prefixes covered by another in the input.

    Does not merge adjacent siblings; it only removes redundancy, which is
    what hitlist de-duplication needs.
    """
    result: List[Prefix] = []
    for prefix in sorted(set(prefixes)):
        if result and result[-1].covers(prefix):
            continue
        result.append(prefix)
    return result


def merge_adjacent(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Fully aggregate: also merge sibling pairs into their parent.

    Standard CIDR aggregation, iterated to a fixed point.
    """
    work = aggregate(prefixes)
    merged = True
    while merged:
        merged = False
        out: List[Prefix] = []
        index = 0
        while index < len(work):
            current = work[index]
            if (
                index + 1 < len(work)
                and current.length == work[index + 1].length
                and current.length > 0
            ):
                parent = Prefix(current.base, current.length - 1)
                if parent.covers(work[index + 1]) and parent.base == current.base:
                    out.append(parent)
                    index += 2
                    merged = True
                    continue
            out.append(current)
            index += 1
        work = aggregate(out)
    return work


def spanning_prefix(addresses: Sequence[int]) -> Optional[Prefix]:
    """Smallest single prefix covering every address in the sequence."""
    if not addresses:
        return None
    low, high = min(addresses), max(addresses)
    length = address.common_prefix_length(low, high)
    return Prefix(low, length)
