"""Binary radix (Patricia-style) trie over IPv6 prefixes.

Used as the routing/lookup substrate everywhere a "does this address fall
in an advertised prefix, and which one?" question arises: BGP tables,
routed-target classification (Table 5), target-to-ASN attribution, and the
per-router forwarding tables of the network simulator.

The implementation is a path-compressed binary trie keyed on prefix bits.
Each stored prefix may carry an arbitrary value (e.g. an origin ASN or a
next-hop).  Lookup returns the longest matching stored prefix.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

from .address import ADDRESS_BITS
from .prefix import Prefix, mask_for

V = TypeVar("V")


class _Node:
    __slots__ = ("prefix", "value", "has_value", "children")

    def __init__(self, prefix: Prefix):
        self.prefix = prefix
        self.value: Any = None
        self.has_value = False
        self.children: List[Optional["_Node"]] = [None, None]


def _branch_bit(value: int, depth: int) -> int:
    """Bit of ``value`` at ``depth`` from the MSB (depth 0 = bit 127)."""
    return (value >> (ADDRESS_BITS - 1 - depth)) & 1


class PrefixTrie(Generic[V]):
    """Longest-prefix-match trie mapping :class:`Prefix` to values.

    Supports insertion, exact lookup, longest-prefix match on addresses,
    covered-prefix enumeration, and iteration in sorted prefix order.
    """

    def __init__(self):
        self._root = _Node(Prefix(0, 0))
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def insert(self, prefix: Prefix, value: V = None) -> None:
        """Insert (or replace) ``prefix`` with an associated ``value``."""
        node = self._root
        while True:
            if node.prefix == prefix:
                if not node.has_value:
                    self._count += 1
                node.value = value
                node.has_value = True
                return
            bit = _branch_bit(prefix.base, node.prefix.length)
            child = node.children[bit]
            if child is None:
                leaf = _Node(prefix)
                leaf.value = value
                leaf.has_value = True
                node.children[bit] = leaf
                self._count += 1
                return
            shared = _common_length(prefix, child.prefix)
            if shared >= child.prefix.length:
                node = child
                continue
            # Split: the new prefix diverges inside the compressed edge.
            fork = _Node(Prefix(prefix.base, shared))
            node.children[bit] = fork
            fork.children[_branch_bit(child.prefix.base, shared)] = child
            if shared == prefix.length:
                fork.value = value
                fork.has_value = True
                self._count += 1
            else:
                leaf = _Node(prefix)
                leaf.value = value
                leaf.has_value = True
                fork.children[_branch_bit(prefix.base, shared)] = leaf
                self._count += 1
            return

    def get(self, prefix: Prefix) -> Optional[V]:
        """Exact-match lookup; None when the prefix is not stored."""
        node = self._find_exact(prefix)
        return node.value if node is not None and node.has_value else None

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find_exact(prefix)
        return node is not None and node.has_value

    def _find_exact(self, prefix: Prefix) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if node.prefix.length > prefix.length:
                return None
            if not node.prefix.contains(prefix.base) and node.prefix.length > 0:
                return None
            if node.prefix.length == prefix.length:
                return node if node.prefix == prefix else None
            node = node.children[_branch_bit(prefix.base, node.prefix.length)]
        return None

    def longest_match(self, value: int) -> Optional[Tuple[Prefix, V]]:
        """Longest stored prefix covering address ``value``, with its value."""
        best: Optional[_Node] = None
        node: Optional[_Node] = self._root
        while node is not None:
            if not node.prefix.contains(value):
                break
            if node.has_value:
                best = node
            if node.prefix.length >= ADDRESS_BITS:
                break
            node = node.children[_branch_bit(value, node.prefix.length)]
        if best is None:
            return None
        return best.prefix, best.value

    def lookup(self, value: int) -> Optional[V]:
        """Value of the longest matching prefix, or None."""
        match = self.longest_match(value)
        return match[1] if match is not None else None

    def covers(self, value: int) -> bool:
        """True if any stored prefix covers the address."""
        return self.longest_match(value) is not None

    def covered_by(self, covering: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Iterate stored (prefix, value) pairs covered by ``covering``."""
        for prefix, value in self.items():
            if covering.covers(prefix):
                yield prefix, value

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All stored (prefix, value) pairs in sorted prefix order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node.prefix, node.value
            for child in (node.children[1], node.children[0]):
                if child is not None:
                    stack.append(child)

    def prefixes(self) -> List[Prefix]:
        """All stored prefixes in sorted order."""
        return [prefix for prefix, _ in self.items()]


def _common_length(a: Prefix, b: Prefix) -> int:
    """Length of the longest common prefix of two prefixes."""
    limit = min(a.length, b.length)
    diff = (a.base ^ b.base) & mask_for(limit)
    if diff == 0:
        return limit
    return ADDRESS_BITS - diff.bit_length()
