"""IPv6 address primitives.

Addresses are represented as plain 128-bit Python integers throughout the
library: campaigns manipulate tens of millions of addresses and integer
keys are both the fastest and the most memory-frugal representation
available in pure Python.  This module provides parsing and formatting
(RFC 5952 canonical text form, including zero compression), byte
conversion, and the bit-level helpers the rest of the library builds on.
"""

from __future__ import annotations

from typing import Iterable, List

#: Number of bits in an IPv6 address.
ADDRESS_BITS = 128

#: Largest representable address value (all-ones).
MAX_ADDRESS = (1 << ADDRESS_BITS) - 1

#: Number of bits in the interface identifier (low half) of an address.
IID_BITS = 64

#: Mask selecting the interface identifier bits.
IID_MASK = (1 << IID_BITS) - 1

#: Mask selecting the subnet-prefix (high 64) bits.
PREFIX_MASK = MAX_ADDRESS ^ IID_MASK


class AddressError(ValueError):
    """Raised when text cannot be parsed as an IPv6 address."""


def _parse_hex_group(group: str) -> int:
    if not group or len(group) > 4:
        raise AddressError("invalid group %r" % group)
    try:
        return int(group, 16)
    except ValueError:
        raise AddressError("invalid group %r" % group) from None


def _parse_ipv4_tail(text: str) -> List[int]:
    octets = text.split(".")
    if len(octets) != 4:
        raise AddressError("invalid embedded IPv4 %r" % text)
    values = []
    for octet in octets:
        if not octet.isdigit() or (len(octet) > 1 and octet[0] == "0"):
            raise AddressError("invalid embedded IPv4 octet %r" % octet)
        value = int(octet)
        if value > 255:
            raise AddressError("invalid embedded IPv4 octet %r" % octet)
        values.append(value)
    return [(values[0] << 8) | values[1], (values[2] << 8) | values[3]]


def parse(text: str) -> int:
    """Parse IPv6 text (any RFC 4291 form) into a 128-bit integer.

    Accepts full, zero-compressed (``::``), and IPv4-embedded forms.
    Raises :class:`AddressError` on malformed input.
    """
    text = text.strip()
    if not text:
        raise AddressError("empty address")
    if "::" in text:
        head_text, _, tail_text = text.partition("::")
        if "::" in tail_text:
            raise AddressError("multiple '::' in %r" % text)
        head = _parse_side(head_text, allow_ipv4=False)
        tail = _parse_side(tail_text)
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise AddressError("'::' compresses nothing in %r" % text)
        groups = head + [0] * missing + tail
    else:
        groups = _parse_side(text)
        if len(groups) != 8:
            raise AddressError("expected 8 groups in %r" % text)
    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


def _parse_side(text: str, allow_ipv4: bool = True) -> List[int]:
    """Parse one side of a (possibly compressed) address into 16-bit groups."""
    if not text:
        return []
    parts = text.split(":")
    groups: List[int] = []
    for index, part in enumerate(parts):
        if "." in part:
            if not allow_ipv4 or index != len(parts) - 1:
                raise AddressError("embedded IPv4 must be last in %r" % text)
            groups.extend(_parse_ipv4_tail(part))
        else:
            groups.append(_parse_hex_group(part))
    return groups


def format_address(value: int) -> str:
    """Render a 128-bit integer in RFC 5952 canonical text form.

    Lower-case hex, longest run of two-or-more zero groups compressed
    (leftmost run wins ties).
    """
    if not 0 <= value <= MAX_ADDRESS:
        raise AddressError("address out of range: %r" % value)
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]

    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0

    if best_len < 2:
        return ":".join("%x" % group for group in groups)
    head = ":".join("%x" % group for group in groups[:best_start])
    tail = ":".join("%x" % group for group in groups[best_start + best_len:])
    return head + "::" + tail


def to_bytes(value: int) -> bytes:
    """Pack an address integer into 16 network-order bytes."""
    return value.to_bytes(16, "big")


def from_bytes(data: bytes) -> int:
    """Unpack 16 network-order bytes into an address integer."""
    if len(data) != 16:
        raise AddressError("expected 16 bytes, got %d" % len(data))
    return int.from_bytes(data, "big")


def subnet_prefix(value: int) -> int:
    """Return the high 64 bits (subnet prefix) with the IID zeroed."""
    return value & PREFIX_MASK


def interface_identifier(value: int) -> int:
    """Return the low 64 bits (interface identifier) of an address."""
    return value & IID_MASK


def with_iid(value: int, iid: int) -> int:
    """Combine an address's subnet prefix with the given 64-bit IID."""
    return (value & PREFIX_MASK) | (iid & IID_MASK)


def common_prefix_length(a: int, b: int) -> int:
    """Number of leading bits shared by two addresses (0..128)."""
    diff = a ^ b
    if diff == 0:
        return ADDRESS_BITS
    return ADDRESS_BITS - diff.bit_length()


def bit_at(value: int, position: int) -> int:
    """Bit of ``value`` at ``position`` counted from the left (0 = MSB)."""
    if not 0 <= position < ADDRESS_BITS:
        raise IndexError("bit position out of range: %d" % position)
    return (value >> (ADDRESS_BITS - 1 - position)) & 1


def sort_unique(addresses: Iterable[int]) -> List[int]:
    """Sorted, de-duplicated list of address integers."""
    return sorted(set(addresses))


#: The canonical low-byte interface identifier (``::1``).
LOWBYTE1_IID = 0x0000_0000_0000_0001

#: The fixed pseudo-random IID the paper uses for target synthesis
#: (``:1234:5678:1234:5678``, Section 3.1).
FIXED_IID = 0x1234_5678_1234_5678
