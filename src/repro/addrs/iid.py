"""Interface-identifier (IID) classification, after the ``addr6`` tool.

The paper classifies seed and result addresses by the apparent structure
of their low 64 bits (Table 1, Table 7):

* ``EUI64``    — modified EUI-64 with an embedded IEEE MAC address,
                 recognisable by the ``ff:fe`` marker in the middle of the
                 IID (RFC 4291 Appendix A);
* ``LOWBYTE``  — a run of zeroes followed only by a small value in the low
                 byte(s), e.g. ``::1`` — typical manually assigned router
                 addresses;
* ``EMBEDDED_IPV4`` — the IID encodes the IPv4 dotted quad of the node;
* ``RANDOMIZED``    — no discernible pattern (SLAAC privacy addresses and
                 anything unrecognised).

The classifier is deliberately heuristic, mirroring addr6's behaviour and
precedence.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict, Iterable, Tuple

from .address import interface_identifier


class IIDClass(enum.Enum):
    """Structural class of an interface identifier."""

    EUI64 = "eui64"
    LOWBYTE = "lowbyte"
    EMBEDDED_IPV4 = "embedded-ipv4"
    RANDOMIZED = "randomized"


#: Threshold below which a zero-run IID counts as "low byte".  addr6 treats
#: IIDs whose upper bytes are zero and low value small as lowbyte; we admit
#: the low 16 bits.
LOWBYTE_LIMIT = 1 << 16


def classify_iid(iid: int) -> IIDClass:
    """Classify a 64-bit interface identifier."""
    iid &= (1 << 64) - 1
    # EUI-64: bytes 3..4 of the IID are 0xff, 0xfe.
    if (iid >> 24) & 0xFFFF == 0xFFFE:
        return IIDClass.EUI64
    if 0 <= iid < LOWBYTE_LIMIT:
        return IIDClass.LOWBYTE
    if _looks_embedded_ipv4(iid):
        return IIDClass.EMBEDDED_IPV4
    return IIDClass.RANDOMIZED


def classify_address(value: int) -> IIDClass:
    """Classify the IID of a full 128-bit address."""
    return classify_iid(interface_identifier(value))


def _looks_embedded_ipv4(iid: int) -> bool:
    """Heuristic for IPv4-embedded IIDs: high 32 bits zero and the low 32
    bits reading as a plausible dotted quad when taken per-nybble-pair
    (e.g. ``::c0a8:0001`` or the BCD style ``::192:168:0:1``)."""
    if iid >> 32 == 0:
        return iid >= LOWBYTE_LIMIT
    # BCD style: each 16-bit group is a decimal 0..255 rendered in hex.
    groups = [(iid >> shift) & 0xFFFF for shift in (48, 32, 16, 0)]
    for group in groups:
        text = "%x" % group
        if not text.isdigit() or int(text) > 255:
            return False
    return True


def eui64_mac(iid: int) -> Tuple[int, ...]:
    """Recover the embedded MAC octets from an EUI-64 IID.

    The universal/local bit (bit 6 of the first octet) is flipped back per
    RFC 4291.  Raises ValueError for non-EUI-64 IIDs.
    """
    if classify_iid(iid) is not IIDClass.EUI64:
        raise ValueError("IID %x is not EUI-64" % iid)
    octets = [(iid >> shift) & 0xFF for shift in range(56, -8, -8)]
    mac = [octets[0] ^ 0x02, octets[1], octets[2], octets[5], octets[6], octets[7]]
    return tuple(mac)


def eui64_oui(iid: int) -> int:
    """The 24-bit Organizationally Unique Identifier of an EUI-64 IID,
    identifying the device manufacturer (Section 5.1, Section 7.1)."""
    mac = eui64_mac(iid)
    return (mac[0] << 16) | (mac[1] << 8) | mac[2]


def make_eui64_iid(mac: Tuple[int, ...]) -> int:
    """Forge a modified EUI-64 IID from six MAC octets (for simulation)."""
    if len(mac) != 6 or any(not 0 <= octet <= 0xFF for octet in mac):
        raise ValueError("MAC must be six octets")
    octets = [mac[0] ^ 0x02, mac[1], mac[2], 0xFF, 0xFE, mac[3], mac[4], mac[5]]
    iid = 0
    for octet in octets:
        iid = (iid << 8) | octet
    return iid


def classify_set(addresses: Iterable[int]) -> Dict[IIDClass, int]:
    """Count IID classes across a set of addresses (Table 1 row)."""
    counts: Counter = Counter(classify_address(value) for value in addresses)
    return {cls: counts.get(cls, 0) for cls in IIDClass}


def class_fractions(addresses: Iterable[int]) -> Dict[IIDClass, float]:
    """IID class mix as fractions summing to 1 (0 for an empty set)."""
    counts = classify_set(addresses)
    total = sum(counts.values())
    if total == 0:
        return {cls: 0.0 for cls in IIDClass}
    return {cls: count / total for cls, count in counts.items()}
