"""Target-set algebra: coverage, exclusivity and feature accounting.

The paper characterizes target sets along several "features" (Table 5,
Figures 2 and 6): unique targets, routed targets (covered by a BGP
prefix), represented BGP prefixes and ASNs, 6to4 addresses, and for each
feature the portion *exclusive* to a single set.  This module computes all
of those given a collection of named address sets and a routing table.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .prefix import Prefix
from .trie import PrefixTrie

#: 2002::/16 — the 6to4 transition prefix the paper tallies per set.
SIXTOFOUR = Prefix.parse("2002::/16")


class SetFeatures:
    """Feature summary of one named target set (one row of Table 5)."""

    __slots__ = (
        "name",
        "unique_targets",
        "routed_targets",
        "bgp_prefixes",
        "asns",
        "sixtofour",
        "exclusive_targets",
        "exclusive_routed",
        "exclusive_prefixes",
        "exclusive_asns",
    )

    def __init__(self, name: str):
        self.name = name
        self.unique_targets = 0
        self.routed_targets = 0
        self.bgp_prefixes: Set[Prefix] = set()
        self.asns: Set[int] = set()
        self.sixtofour = 0
        self.exclusive_targets = 0
        self.exclusive_routed = 0
        self.exclusive_prefixes: Set[Prefix] = set()
        self.exclusive_asns: Set[int] = set()

    def as_dict(self) -> Dict[str, int]:
        """Numeric view suitable for table rendering."""
        return {
            "unique_targets": self.unique_targets,
            "exclusive_targets": self.exclusive_targets,
            "routed_targets": self.routed_targets,
            "exclusive_routed": self.exclusive_routed,
            "bgp_prefixes": len(self.bgp_prefixes),
            "exclusive_prefixes": len(self.exclusive_prefixes),
            "asns": len(self.asns),
            "exclusive_asns": len(self.exclusive_asns),
            "sixtofour": self.sixtofour,
        }


def characterize_sets(
    sets: Mapping[str, Iterable[int]],
    bgp: PrefixTrie,
    exclusive_among: Optional[Sequence[str]] = None,
) -> Dict[str, SetFeatures]:
    """Compute per-set features and cross-set exclusivity.

    ``bgp`` maps advertised prefixes to origin ASNs.  ``exclusive_among``
    names the subset of sets participating in exclusivity accounting; the
    paper excludes derived collections (Combined, TUM) so they do not mask
    the exclusive contributions of their constituents.
    """
    frozen: Dict[str, Set[int]] = {name: set(values) for name, values in sets.items()}
    participants = list(exclusive_among) if exclusive_among is not None else list(frozen)

    target_owners: Counter = Counter()
    routed_owners: Counter = Counter()
    prefix_owners: Dict[Prefix, Set[str]] = defaultdict(set)
    asn_owners: Dict[int, Set[str]] = defaultdict(set)

    results: Dict[str, SetFeatures] = {}
    routed_cache: Dict[int, Optional[Tuple[Prefix, int]]] = {}

    for name, addresses in frozen.items():
        features = SetFeatures(name)
        features.unique_targets = len(addresses)
        participating = name in participants
        for value in addresses:
            if value in routed_cache:
                match = routed_cache[value]
            else:
                match = bgp.longest_match(value)
                routed_cache[value] = match
            if SIXTOFOUR.contains(value):
                features.sixtofour += 1
            if match is None:
                continue
            prefix, asn = match
            features.routed_targets += 1
            features.bgp_prefixes.add(prefix)
            features.asns.add(asn)
            if participating:
                prefix_owners[prefix].add(name)
                asn_owners[asn].add(name)
        if participating:
            for value in addresses:
                target_owners[value] += 1
                if routed_cache[value] is not None:
                    routed_owners[value] += 1
        results[name] = features

    for name in participants:
        features = results[name]
        addresses = frozen[name]
        features.exclusive_targets = sum(
            1 for value in addresses if target_owners[value] == 1
        )
        features.exclusive_routed = sum(
            1
            for value in addresses
            if routed_cache[value] is not None and routed_owners[value] == 1
        )
        features.exclusive_prefixes = {
            prefix
            for prefix in features.bgp_prefixes
            if prefix_owners[prefix] == {name}
        }
        features.exclusive_asns = {
            asn for asn in features.asns if asn_owners[asn] == {name}
        }
    return results


def shared_counts(
    sets: Mapping[str, Iterable[int]], bgp: PrefixTrie
) -> Dict[str, Dict[str, int]]:
    """For Figures 2/6 insets: per feature, how much is shared by two or
    more sets versus exclusive to each single set."""
    features = characterize_sets(sets, bgp)
    all_prefixes: Dict[Prefix, Set[str]] = defaultdict(set)
    all_asns: Dict[int, Set[str]] = defaultdict(set)
    for name, summary in features.items():
        for prefix in summary.bgp_prefixes:
            all_prefixes[prefix].add(name)
        for asn in summary.asns:
            all_asns[asn].add(name)
    return {
        "bgp_prefixes": _ownership_histogram(all_prefixes),
        "asns": _ownership_histogram(all_asns),
    }


def _ownership_histogram(owners: Mapping[object, Set[str]]) -> Dict[str, int]:
    histogram: Dict[str, int] = {"shared": 0}
    for owner_set in owners.values():
        if len(owner_set) > 1:
            histogram["shared"] += 1
        else:
            (name,) = owner_set
            histogram[name] = histogram.get(name, 0) + 1
    return histogram


def union_size(sets: Mapping[str, Iterable[int]]) -> int:
    """Total unique addresses across all sets ("Total" row of Table 5)."""
    union: Set[int] = set()
    for values in sets.values():
        union.update(values)
    return len(union)
