"""Discriminating Prefix Length (DPL) computation.

An address's DPL within a set is the position of the first (leftmost) bit
at which it differs from its *nearest* neighbour in the sorted set — i.e.
one more than the longest common prefix it shares with either adjacent
address (Kohler et al., "Observed Structure of Addresses in IP Traffic";
Section 3.4.1 of the reproduced paper).

High DPLs mean tightly clustered addresses; the DPL distribution of a
target set predicts its power to discriminate subnets (Figures 3 and 8).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from .address import ADDRESS_BITS, common_prefix_length


def pairwise_dpl(a: int, b: int) -> int:
    """DPL between two distinct addresses: index of the first differing bit,
    counted from 1 (so equal top-63-bit /64 neighbours have DPL 64).

    For identical addresses the convention is ``ADDRESS_BITS`` (128): no bit
    discriminates them, so they are indistinguishable at full length.
    """
    shared = common_prefix_length(a, b)
    if shared == ADDRESS_BITS:
        return ADDRESS_BITS
    return shared + 1


def dpl_list(addresses: Iterable[int]) -> List[int]:
    """Per-address DPL values for a set of addresses.

    Duplicates are removed first (a duplicate discriminates at nothing).
    A singleton set yields ``[1]``: a lone address is discriminated by its
    very first bit.  The returned list is aligned with the sorted unique
    address order.
    """
    unique = sorted(set(addresses))
    if not unique:
        return []
    if len(unique) == 1:
        return [1]
    result: List[int] = []
    for index, value in enumerate(unique):
        best_shared = -1
        if index > 0:
            best_shared = common_prefix_length(value, unique[index - 1])
        if index + 1 < len(unique):
            shared = common_prefix_length(value, unique[index + 1])
            if shared > best_shared:
                best_shared = shared
        result.append(min(best_shared + 1, ADDRESS_BITS))
    return result


def dpl_map(addresses: Iterable[int]) -> Dict[int, int]:
    """Mapping of unique address -> DPL within the set."""
    unique = sorted(set(addresses))
    return dict(zip(unique, dpl_list(unique)))


def dpl_against(addresses: Sequence[int], universe: Sequence[int]) -> Dict[int, int]:
    """DPL of each address in ``addresses`` measured inside the sorted
    union of ``addresses`` and ``universe``.

    This is the "combined" view of Figure 3b: how much discriminating power
    each set's addresses gain when other sets' addresses are interleaved
    amongst them.
    """
    combined = sorted(set(addresses) | set(universe))
    full = dict(zip(combined, dpl_list(combined)))
    return {value: full[value] for value in set(addresses)}


def dpl_cdf(dpls: Iterable[int], bins: Sequence[int]) -> List[Tuple[int, float]]:
    """Cumulative fraction of DPL values ≤ each bin edge.

    ``bins`` is a sorted sequence of DPL values (the paper plots 24..64).
    Returns (bin, cumulative_fraction) pairs.
    """
    values = sorted(dpls)
    if not values:
        return [(edge, 0.0) for edge in bins]
    total = len(values)
    result = []
    for edge in bins:
        count = bisect_left(values, edge + 1)
        result.append((edge, count / total))
    return result


def capped_dpl(value: int, cap: int = 64) -> int:
    """Clamp a DPL to ``cap``; the paper's plots treat /64 as the floor of
    subnet granularity (IIDs below bit 64 never discriminate subnets)."""
    return min(value, cap)
