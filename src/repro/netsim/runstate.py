"""Declarative registry of per-run (campaign-scoped) mutable state.

The build-once shared-world design (see ``docs/performance.md``) is
correct only while two properties hold: no worker mutates world state
another shard can observe, and :meth:`Internet.fresh_run_state
<repro.netsim.internet.Internet.fresh_run_state>` rewinds *every* field
a campaign can dirty.  This module makes the set of run-scoped fields a
first-class, machine-readable declaration instead of a comment: world
classes annotate themselves with :func:`run_state`, and two enforcers
read the registry back —

* **MUT101/MUT102** (``repro.lint.program``) statically prove that every
  worker-reachable write lands on a registered field and that the
  registered set and the ``fresh_run_state`` reset set coincide;
* **ShardSan** (``repro.lint.shardsan``) wraps the registered classes at
  runtime and trips on any unregistered ``__setattr__``/container write.

Three categories exist:

``run_state(*fields)``
    campaign-scoped state that ``fresh_run_state`` must rewind
    (limiter tokens, stats counters, the loss RNG);
``shared=(...)``
    state that deliberately **survives** the rewind because it is a pure
    function of the immutable topology (the compiled-path cache) —
    mutating it is idempotent and observationally invisible;
``constructed_per_run=True``
    classes whose *instances* are created fresh for every run (the
    engine, the stats block) — their fields are legal write targets but
    are exempt from the rewind-completeness check, since no instance
    outlives a run.

The decorator itself lives here (dependency-free) so ``topology``,
``ratelimit`` and ``engine`` can import it without cycling through
:mod:`repro.netsim.internet`, which re-exports it as the public name.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Sequence, Tuple, Type, TypeVar

_C = TypeVar("_C", bound=type)

#: Class attributes the decorator installs (introspect via :class:`RunState`).
RUN_STATE_ATTR = "__run_state_fields__"
RUN_SHARED_ATTR = "__run_shared_fields__"
RUN_PER_RUN_ATTR = "__run_state_per_run__"

_REGISTERED: List[type] = []


def run_state(
    *fields: str,
    shared: Sequence[str] = (),
    constructed_per_run: bool = False,
) -> Callable[[_C], _C]:
    """Class decorator declaring which attributes are per-run state.

    ``fields`` are the attributes a campaign run may write and the
    rewind must reset; ``shared`` are attributes that intentionally
    survive the rewind (pure caches); ``constructed_per_run`` marks
    classes whose instances never outlive a single run.
    """
    declared = frozenset(fields)
    surviving = frozenset(shared)
    overlap = declared & surviving
    if overlap:
        raise ValueError(
            "fields cannot be both per-run and shared: %s"
            % ", ".join(sorted(overlap))
        )

    def mark(cls: _C) -> _C:
        setattr(cls, RUN_STATE_ATTR, declared)
        setattr(cls, RUN_SHARED_ATTR, surviving)
        setattr(cls, RUN_PER_RUN_ATTR, constructed_per_run)
        _REGISTERED.append(cls)
        return cls

    return mark


class RunState:
    """Introspection facade over the :func:`run_state` registry."""

    @staticmethod
    def fields(cls: type) -> FrozenSet[str]:
        """Registered per-run fields of ``cls`` (empty if unregistered)."""
        value = getattr(cls, RUN_STATE_ATTR, frozenset())
        return value if isinstance(value, frozenset) else frozenset()

    @staticmethod
    def shared(cls: type) -> FrozenSet[str]:
        """Registered rewind-surviving fields of ``cls``."""
        value = getattr(cls, RUN_SHARED_ATTR, frozenset())
        return value if isinstance(value, frozenset) else frozenset()

    @staticmethod
    def constructed_per_run(cls: type) -> bool:
        return bool(getattr(cls, RUN_PER_RUN_ATTR, False))

    @staticmethod
    def is_registered(cls: type) -> bool:
        return RUN_STATE_ATTR in cls.__dict__

    @staticmethod
    def classes() -> Tuple[Type[object], ...]:
        """Every class registered so far, in registration order."""
        return tuple(_REGISTERED)
