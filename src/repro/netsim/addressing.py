"""Address assignment: router interface and host IID generation.

Interface numbering follows each AS's :class:`~repro.netsim.topology.
AddressPlan`; host numbering follows per-host :class:`HostKind`.  The mix
of plans across the internet is what makes Table 1's and Table 7's IID
class distributions (lowbyte vs EUI-64 vs randomized) come out.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..addrs.iid import make_eui64_iid
from ..addrs.prefix import Prefix
from .topology import AddressPlan, HostKind

#: Per-manufacturer OUIs for CPE fleets: two dominant vendors, mirroring
#: the paper's finding that 59% of EUI-64 router addresses came from just
#: two manufacturers.
CPE_OUIS = (0x00259E, 0xF4CA24, 0x3C9066, 0x8C59C3)


def random_mac(rng: random.Random, oui: int) -> Tuple[int, ...]:
    """A MAC with the given 24-bit OUI and random NIC-specific half."""
    return (
        (oui >> 16) & 0xFF,
        (oui >> 8) & 0xFF,
        oui & 0xFF,
        rng.getrandbits(8),
        rng.getrandbits(8),
        rng.getrandbits(8),
    )


def interface_iid(plan: AddressPlan, position: int, rng: random.Random, oui: int = 0) -> int:
    """IID for the ``position``-th interface on a point-to-point /64.

    * lowbyte — ::1, ::2, … (the very common operational practice);
    * random  — an opaque 64-bit identifier;
    * eui64   — embedded-MAC identifier from the AS's CPE vendor.
    """
    if plan is AddressPlan.LOWBYTE:
        return position + 1
    if plan is AddressPlan.RANDOM:
        return rng.getrandbits(64) or 1
    if plan is AddressPlan.EUI64:
        return make_eui64_iid(random_mac(rng, oui or CPE_OUIS[0]))
    raise ValueError("unknown plan %r" % plan)


def interface_address(
    link_prefix: Prefix, plan: AddressPlan, position: int, rng: random.Random, oui: int = 0
) -> int:
    """Full interface address on a /64 link prefix."""
    return link_prefix.base | interface_iid(plan, position, rng, oui)


def host_iid(kind: HostKind, rng: random.Random, oui: int = 0) -> int:
    """IID for an end host of the given kind."""
    if kind is HostKind.SLAAC_PRIVACY:
        # RFC 4941 temporary addresses: uniformly random IIDs.  Clear the
        # ff:fe EUI-64 marker position so classification stays honest.
        iid = rng.getrandbits(64)
        if (iid >> 24) & 0xFFFF == 0xFFFE:
            iid ^= 1 << 30
        return iid or 1
    if kind is HostKind.EUI64:
        return make_eui64_iid(random_mac(rng, oui or CPE_OUIS[1]))
    if kind is HostKind.LOWBYTE_SERVER:
        return rng.randint(1, 0x200)
    raise ValueError("unknown host kind %r" % kind)


def pick_host_kind(rng: random.Random, privacy_fraction: float, eui64_fraction: float) -> HostKind:
    """Sample a host kind given a deployment's address-technique mix."""
    roll = rng.random()
    if roll < privacy_fraction:
        return HostKind.SLAAC_PRIVACY
    if roll < privacy_fraction + eui64_fraction:
        return HostKind.EUI64
    return HostKind.LOWBYTE_SERVER
