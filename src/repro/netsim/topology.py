"""Ground-truth topology data model for the simulated IPv6 internet.

The builder (:mod:`repro.netsim.build`) populates these structures; the
packet-level simulator (:mod:`repro.netsim.internet`) walks them; the
evaluation harness reads them back as *ground truth* — e.g. Section 6's
subnet-inference validation compares inferred prefixes against each AS's
:class:`SubnetPlan`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from ..addrs.prefix import Prefix
from ..addrs.trie import PrefixTrie
from .ratelimit import TokenBucket
from .runstate import run_state

#: Multiplier seeding each router's fragment Identification counter from
#: its id — a pure function of the topology, so a rewound router replays
#: the identical ID stream.
_FRAG_SEED_MULT = 2246822519


class RouterRole(enum.Enum):
    """Where a router sits in the hierarchy (drives its address plan and
    rate-limiter provisioning)."""

    BORDER = "border"
    CORE = "core"
    DISTRIBUTION = "distribution"
    AGGREGATION = "aggregation"
    GATEWAY = "gateway"
    CPE = "cpe"


class AddressPlan(enum.Enum):
    """How an AS numbers its router interfaces (Section 5.1, Section 7.1)."""

    LOWBYTE = "lowbyte"
    RANDOM = "random"
    EUI64 = "eui64"


class HostKind(enum.Enum):
    """End-host address assignment technique."""

    SLAAC_PRIVACY = "slaac-privacy"
    EUI64 = "eui64"
    LOWBYTE_SERVER = "lowbyte-server"


@run_state("atomic_frag_until", "_frag_value", "_frag_last")
class Router:
    """A packet forwarder: interfaces, an ICMPv6 error rate limiter, and
    response behaviour knobs.

    Campaign-scoped state — the RFC 6946 atomic-fragment holds and the
    fragment Identification counter — is declared via :func:`run_state`
    and rewound by :meth:`reset_probing_state`; everything else (the
    interface list, response knobs) is immutable after the build.
    """

    __slots__ = (
        "router_id",
        "asn",
        "role",
        "limiter",
        "interfaces",
        "respond_protocols",
        "response_probability",
        "frag_drift",
        "atomic_frag_until",
        "_frag_value",
        "_frag_last",
    )

    def __init__(
        self,
        router_id: int,
        asn: int,
        role: RouterRole,
        limiter: TokenBucket,
        respond_protocols: Optional[Set[int]] = None,
        response_probability: float = 1.0,
    ) -> None:
        self.router_id = router_id
        self.asn = asn
        self.role = role
        self.limiter = limiter
        self.interfaces: List[int] = []
        #: None = respond regardless of probe protocol; otherwise the set of
        #: next-header values that elicit errors (one paper vantage saw a
        #: hop answering only ICMPv6 probes).
        self.respond_protocols = respond_protocols
        #: Baseline per-packet response probability before rate limiting
        #: (models loss and silent hops).
        self.response_probability = response_probability
        #: Fragment Identification drift (IDs/second) from the router's
        #: own background traffic — what speedtrap's velocity tolerance
        #: must ride over.  Deterministic per router.
        self.frag_drift = (router_id * 2654435761 % 400) / 100.0
        #: Per-source expiry of the RFC 6946 atomic-fragment state set by
        #: a sub-1280 Packet Too Big.
        self.atomic_frag_until: Dict[int, int] = {}
        # The router-wide Identification counter all interfaces share —
        # the very property alias resolution exploits.
        self._frag_value = (router_id * _FRAG_SEED_MULT) & 0xFFFFFFFF
        self._frag_last = 0

    def reset_probing_state(self) -> None:
        """Rewind the per-campaign probing state: clear the RFC 6946
        atomic-fragment holds and reseed the fragment Identification
        counter to its just-built value, so a rewound shared world emits
        the same ID stream a freshly built one would."""
        self.atomic_frag_until.clear()
        self._frag_value = (self.router_id * _FRAG_SEED_MULT) & 0xFFFFFFFF
        self._frag_last = 0

    def add_interface(self, addr: int) -> None:
        self.interfaces.append(addr)

    def note_packet_too_big(self, source: int, now: int, hold_us: int = 600_000_000) -> None:
        """Record that ``source`` sent a PTB below the minimum MTU: replies
        to it carry atomic fragments for the holding period (RFC 6946)."""
        self.atomic_frag_until[source] = now + hold_us

    def atomic_active(self, source: int, now: int) -> bool:
        return self.atomic_frag_until.get(source, -1) >= now

    def frag_identification(self, now: int) -> int:
        """Next fragment Identification: one shared, monotonically
        advancing counter per router, plus background-traffic drift."""
        if now > self._frag_last:
            self._frag_value += int(
                self.frag_drift * (now - self._frag_last) / 1_000_000
            )
            self._frag_last = now
        self._frag_value = (self._frag_value + 1) & 0xFFFFFFFF
        return self._frag_value

    def __repr__(self) -> str:
        return "Router(%d, AS%d, %s, %d ifaces)" % (
            self.router_id,
            self.asn,
            self.role.value,
            len(self.interfaces),
        )


class Subnet:
    """A leaf /64 LAN: its gateway hop and the hosts on it."""

    __slots__ = (
        "prefix",
        "gateway",
        "gateway_addr",
        "host_iids",
        "www_client_iids",
        "aliased",
    )

    def __init__(self, prefix: Prefix, gateway: Router, gateway_addr: int) -> None:
        if prefix.length != 64:
            raise ValueError("leaf subnets are /64, got %s" % prefix)
        self.prefix = prefix
        self.gateway = gateway
        #: Gateway's interface address *on this LAN* — the source of its
        #: ICMPv6 errors, and what the IA hack recognises.
        self.gateway_addr = gateway_addr
        self.host_iids: List[int] = []
        #: IIDs of hosts that act as WWW clients (feed the CDN seed).
        self.www_client_iids: List[int] = []
        #: An "aliased prefix" (Gasser et al.): a middlebox answers for
        #: *every* address in the /64, polluting hitlists with phantom
        #: hosts.
        self.aliased = False

    def host_addresses(self) -> List[int]:
        return [self.prefix.base | iid for iid in self.host_iids]

    def has_host(self, addr: int) -> bool:
        if not self.prefix.contains(addr):
            return False
        return (addr & ((1 << 64) - 1)) in set(self.host_iids)

    def __repr__(self) -> str:
        return "Subnet(%s, %d hosts)" % (self.prefix, len(self.host_iids))


class SubnetPlan:
    """An AS's internal address plan: the ground truth for Section 6.

    ``distribution`` prefixes are the intermediate subnets (the paper's
    "city-level" truth data); ``allocations`` the per-customer prefixes;
    ``leaves`` the active /64 LANs.
    """

    __slots__ = ("asn", "distribution", "allocations", "leaves")

    def __init__(self, asn: int) -> None:
        self.asn = asn
        self.distribution: List[Prefix] = []
        self.allocations: List[Prefix] = []
        self.leaves: List[Subnet] = []


class ASPolicy:
    """Border filtering policy (drives the protocol comparison, §4.2)."""

    __slots__ = ("blocked_protocols", "prohibit_action")

    def __init__(
        self,
        blocked_protocols: Optional[Set[int]] = None,
        prohibit_action: str = "drop",
    ) -> None:
        self.blocked_protocols = blocked_protocols or set()
        #: "drop" (silent) or "admin" (ICMPv6 administratively prohibited).
        self.prohibit_action = prohibit_action


class AutonomousSystem:
    """An AS: prefixes it originates, its routers, providers, and policy."""

    __slots__ = (
        "asn",
        "name",
        "tier",
        "prefixes",
        "internal_prefixes",
        "providers",
        "routers",
        "plan",
        "policy",
        "address_plan",
        "cpe_oui",
        "link_mtu",
    )

    def __init__(self, asn: int, name: str, tier: int, address_plan: AddressPlan) -> None:
        self.asn = asn
        self.name = name
        #: 1 = backbone, 2 = regional transit, 3 = edge/stub.
        self.tier = tier
        #: BGP-advertised prefixes.
        self.prefixes: List[Prefix] = []
        #: RIR-registered but not globally advertised infrastructure space
        #: (Section 6's record-keeping complication).
        self.internal_prefixes: List[Prefix] = []
        #: Provider ASNs (upstreams); tier-1s have none.
        self.providers: List[int] = []
        self.routers: List[Router] = []
        self.plan = SubnetPlan(asn)
        self.policy = ASPolicy()
        self.address_plan = address_plan
        #: For CPE ISPs: the single manufacturer OUI of deployed CPE.
        self.cpe_oui: Optional[int] = None
        #: MTU of this AS's internal links; tunnel-based networks (6to4,
        #: 6in4 transition infrastructure) run below the Ethernet 1500.
        self.link_mtu: int = 1500

    def __repr__(self) -> str:
        return "AS%d(%s, tier %d, %d routers)" % (
            self.asn,
            self.name,
            self.tier,
            len(self.routers),
        )


class GroundTruth:
    """Everything the evaluation may compare against."""

    __slots__ = (
        "ases",
        "bgp",
        "registry",
        "routers",
        "router_addresses",
        "subnets",
        "equivalent_asns",
    )

    def __init__(self) -> None:
        self.ases: Dict[int, AutonomousSystem] = {}
        #: Advertised prefix -> origin ASN (the public BGP table).
        self.bgp: PrefixTrie = PrefixTrie()
        #: Advertised + RIR-only prefixes -> ASN (what §6's augmentation
        #: recovers).
        self.registry: PrefixTrie = PrefixTrie()
        self.routers: Dict[int, Router] = {}
        #: Interface address -> Router (the complete discoverable surface).
        self.router_addresses: Dict[int, Router] = {}
        #: Leaf /64 base -> Subnet.
        self.subnets: Dict[int, Subnet] = {}
        #: ASN -> canonical ASN for operationally-equivalent AS families
        #: (mergers; §6's "equivalent ASNs" augmentation).
        self.equivalent_asns: Dict[int, int] = {}

    def register_router(self, router: Router) -> None:
        self.routers[router.router_id] = router

    def register_interface(self, router: Router, addr: int) -> None:
        router.add_interface(addr)
        self.router_addresses[addr] = router

    def register_subnet(self, subnet: Subnet) -> None:
        self.subnets[subnet.prefix.base] = subnet

    def canonical_asn(self, asn: int) -> int:
        return self.equivalent_asns.get(asn, asn)

    def all_router_addresses(self) -> Set[int]:
        return set(self.router_addresses)

    def all_host_addresses(self) -> List[int]:
        result: List[int] = []
        for subnet in self.subnets.values():
            result.extend(subnet.host_addresses())
        return result

    def subnet_of(self, addr: int) -> Optional[Subnet]:
        return self.subnets.get(addr & ~((1 << 64) - 1))

    def origin_asn(self, addr: int) -> Optional[int]:
        match = self.bgp.longest_match(addr)
        return match[1] if match else None


#: A single forwarding hop as materialized in a path: the router, the
#: interface address sourcing its ICMPv6 errors on this path, and the
#: one-way cumulative propagation delay from the vantage in microseconds.
Hop = Tuple[Router, int, int]
