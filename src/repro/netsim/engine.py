"""Virtual-time discrete-event engine.

The reproduction's central substitution (see DESIGN.md): probing "speed"
in the paper is wall-clock packets-per-second against real routers whose
ICMPv6 rate limiters drain in real time.  Here both sides run against a
simulated clock measured in integer microseconds, so a 100kpps campaign
is exactly as cheap to simulate as a 20pps one, while burstiness — the
phenomenon that separates sequential from randomized probing in Figure 5
— is preserved faithfully.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..obs.metrics import NULL_REGISTRY, SCOPE_RUN, MetricsRegistry

#: Microseconds per second, the engine's clock unit.
US_PER_SECOND = 1_000_000


class Engine:
    """A minimal run-to-completion event scheduler over virtual time.

    ``metrics`` attaches run-scoped instruments (events scheduled/fired,
    queue depth); the default is the shared no-op registry, so the
    telemetry costs one null method call per event when off.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._now = 0
        self._sequence = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_scheduled = registry.counter("engine.events_scheduled", scope=SCOPE_RUN)
        self._m_fired = registry.counter("engine.events_fired", scope=SCOPE_RUN)
        self._m_depth = registry.gauge("engine.queue_depth")

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    def schedule_at(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when`` (µs).

        Events scheduled in the past run at the current time; ordering
        between same-time events follows scheduling order.
        """
        if when < self._now:
            when = self._now
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback))
        self._m_scheduled.inc()
        self._m_depth.set(len(self._queue))

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        self.schedule_at(self._now + delay, callback)

    def run(self, until: Optional[int] = None) -> int:  # repro-lint: program-root
        """Drain the event queue; stop once virtual time would pass ``until``.

        Returns the final virtual time.  With no ``until`` the engine runs
        until no events remain.
        """
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self._now = when
            self._m_fired.inc()
            callback()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:  # repro-lint: program-root
        """Run exactly one event; False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self._now = when
        self._m_fired.inc()
        callback()
        return True

    @property
    def pending(self) -> int:
        """Number of events awaiting execution."""
        return len(self._queue)


def seconds(value: float) -> int:
    """Convert seconds to engine microseconds."""
    return int(round(value * US_PER_SECOND))


def pps_interval(packets_per_second: float) -> int:
    """Microseconds between packets at the given rate (at least 1)."""
    if packets_per_second <= 0:
        raise ValueError("rate must be positive: %r" % packets_per_second)
    return max(1, int(round(US_PER_SECOND / packets_per_second)))
