"""Virtual-time discrete-event engine.

The reproduction's central substitution (see DESIGN.md): probing "speed"
in the paper is wall-clock packets-per-second against real routers whose
ICMPv6 rate limiters drain in real time.  Here both sides run against a
simulated clock measured in integer microseconds, so a 100kpps campaign
is exactly as cheap to simulate as a 20pps one, while burstiness — the
phenomenon that separates sequential from randomized probing in Figure 5
— is preserved faithfully.

**Columnar event queue.**  The queue is not a heap of
``(when, sequence, callback)`` tuples: every pending event costs a tuple
allocation and a three-way lexicographic comparison per heap operation,
which dominates the campaign inner loop at high probe rates.  Instead
the heap holds plain integers — ``(when << _SLOT_BITS) | slot`` — whose
ordering encodes (time, FIFO) directly, while callbacks live in a
parallel append-only slot array.  Slots are handed out monotonically, so
integer comparison alone reproduces the exact (time, scheduling-order)
event order the tuple heap produced; fired slots are nulled to release
references and the slot array is compacted in place once it is mostly
dead.  The event *order* — and therefore every campaign artifact — is
bit-identical to the tuple implementation; see
``docs/performance.md``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional

from ..obs.metrics import NULL_REGISTRY, SCOPE_RUN, MetricsRegistry
from .runstate import run_state

#: Microseconds per second, the engine's clock unit.
US_PER_SECOND = 1_000_000

#: Low bits of a heap key addressing the callback slot array.  40 bits of
#: slots between compactions is unreachable (the array would not fit in
#: memory long before), so keys never collide and FIFO order holds.
_SLOT_BITS = 40
_SLOT_MASK = (1 << _SLOT_BITS) - 1

#: Compact the slot array when it holds at least this many entries and
#: at most a quarter of them are still pending.
_COMPACT_MIN = 4096


@run_state("_now", "_heap", "_slots", "_live", constructed_per_run=True)
class Engine:
    """A minimal run-to-completion event scheduler over virtual time.

    ``metrics`` attaches run-scoped instruments (events scheduled/fired,
    queue depth); the default is the shared no-op registry, so the
    telemetry costs one null method call per event when off.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._now = 0
        #: Heap of ``(when << _SLOT_BITS) | slot`` integer keys.
        self._heap: List[int] = []
        #: Slot array: parallel, append-only callback storage.  A fired
        #: or compacted-away slot is ``None``.
        self._slots: List[Optional[Callable[[], None]]] = []
        self._live = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_scheduled = registry.counter("engine.events_scheduled", scope=SCOPE_RUN)
        self._m_fired = registry.counter("engine.events_fired", scope=SCOPE_RUN)
        self._m_depth = registry.gauge("engine.queue_depth")

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    def schedule_at(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when`` (µs).

        Events scheduled in the past run at the current time; ordering
        between same-time events follows scheduling order.
        """
        if when < self._now:
            when = self._now
        slots = self._slots
        heappush(self._heap, (when << _SLOT_BITS) | len(slots))
        slots.append(callback)
        self._live += 1
        self._m_scheduled.inc()
        self._m_depth.set(self._live)
        if len(slots) >= _COMPACT_MIN and self._live * 4 <= len(slots):
            self._compact()

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        self.schedule_at(self._now + delay, callback)

    def _compact(self) -> None:
        """Reassign pending slots to the low indices, dropping dead ones.

        Heap keys sort as (when, slot) and slots are issued in scheduling
        order, so re-slotting in sorted-key order preserves both the heap
        invariant (a sorted list is a heap) and FIFO among equal times.
        The lists are mutated in place: :meth:`run` holds aliases.
        """
        heap = self._heap
        slots = self._slots
        heap.sort()
        pending = [slots[key & _SLOT_MASK] for key in heap]
        heap[:] = [
            (key & ~_SLOT_MASK) | index for index, key in enumerate(heap)
        ]
        slots[:] = pending

    def run(self, until: Optional[int] = None) -> int:  # repro-lint: program-root
        """Drain the event queue; stop once virtual time would pass ``until``.

        Returns the final virtual time.  With no ``until`` the engine runs
        until no events remain.
        """
        heap = self._heap
        slots = self._slots
        fired = 0
        try:
            while heap:
                key = heap[0]
                when = key >> _SLOT_BITS
                if until is not None and when > until:
                    break
                heappop(heap)
                slot = key & _SLOT_MASK
                callback = slots[slot]
                slots[slot] = None
                self._live -= 1
                self._now = when
                fired += 1
                assert callback is not None
                callback()
        finally:
            self._m_fired.inc(fired)
            if not heap:
                slots.clear()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    # repro-lint: hot-loop
    def run_batch(self) -> int:  # repro-lint: program-root
        """Fire every event sharing the earliest pending timestamp.

        One clock update and one metrics flush cover the whole batch —
        no per-event dispatch beyond the heap pop itself.  Returns the
        number of events fired (0 when the queue is empty).
        """
        heap = self._heap
        if not heap:
            return 0
        slots = self._slots
        when = heap[0] >> _SLOT_BITS
        self._now = when
        fired = 0
        try:
            while heap and heap[0] >> _SLOT_BITS == when:
                key = heappop(heap)
                slot = key & _SLOT_MASK
                callback = slots[slot]
                slots[slot] = None
                self._live -= 1
                fired += 1
                assert callback is not None
                callback()
        finally:
            self._m_fired.inc(fired)
            if not heap:
                slots.clear()
        return fired

    def step(self) -> bool:  # repro-lint: program-root
        """Run exactly one event; False when the queue is empty."""
        heap = self._heap
        if not heap:
            return False
        key = heappop(heap)
        slot = key & _SLOT_MASK
        callback = self._slots[slot]
        self._slots[slot] = None
        self._live -= 1
        self._now = key >> _SLOT_BITS
        self._m_fired.inc()
        assert callback is not None
        callback()
        if not self._heap:
            self._slots.clear()
        return True

    @property
    def pending(self) -> int:
        """Number of events awaiting execution."""
        return self._live


def seconds(value: float) -> int:
    """Convert seconds to engine microseconds."""
    return int(round(value * US_PER_SECOND))


def pps_interval(packets_per_second: float) -> int:
    """Microseconds between packets at the given rate (at least 1)."""
    if packets_per_second <= 0:
        raise ValueError("rate must be positive: %r" % packets_per_second)
    return max(1, int(round(US_PER_SECOND / packets_per_second)))
