"""Simulated IPv6 internet: topology generation, virtual-time engine,
rate limiting, ECMP, and byte-level packet handling."""

from .build import (
    BuiltInternet,
    InternetConfig,
    Vantage,
    VantageConfig,
    build_internet,
    decoupled_dynamics,
)
from .ecmp import VARIANTS, flow_hash, flow_variant
from .engine import Engine, US_PER_SECOND, pps_interval, seconds
from .internet import CompiledPath, Internet, Response, TerminalKind
from .ratelimit import TokenBucket, UnlimitedBucket
from .topology import (
    AddressPlan,
    AutonomousSystem,
    GroundTruth,
    HostKind,
    Router,
    RouterRole,
    Subnet,
    SubnetPlan,
)

__all__ = [
    "AddressPlan",
    "AutonomousSystem",
    "BuiltInternet",
    "CompiledPath",
    "Engine",
    "GroundTruth",
    "HostKind",
    "Internet",
    "InternetConfig",
    "Response",
    "Router",
    "RouterRole",
    "Subnet",
    "SubnetPlan",
    "TerminalKind",
    "TokenBucket",
    "US_PER_SECOND",
    "UnlimitedBucket",
    "VARIANTS",
    "Vantage",
    "VantageConfig",
    "build_internet",
    "decoupled_dynamics",
    "flow_hash",
    "flow_variant",
    "pps_interval",
    "seconds",
]
