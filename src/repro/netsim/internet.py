"""The packet-level simulated internet.

:class:`Internet` accepts raw IPv6 packet bytes injected at a vantage
point and returns the (virtual-time-delayed) response bytes a real
network would produce: ICMPv6 Time Exceeded from the hop where the hop
limit expires (subject to that router's token bucket), Destination
Unreachable flavours from route/allocation/neighbour failures and
firewalls, Echo Replies / port unreachables / TCP RSTs from end hosts.

Paths are compiled lazily per (vantage, destination /64, ECMP variant)
and cached; per-probe work after the first probe to a /64 is O(1) plus
packet parse/build.  ECMP choice points (multi-homing, parallel cores)
are resolved by the packet's flow hash, so a Paris-style prober with
constant headers sees a stable path while a naive prober flaps.
"""

from __future__ import annotations

import enum
import random
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..addrs.prefix import Prefix
from ..obs.metrics import DEFAULT_BUCKET_US, MetricsRegistry
from ..obs.profiler import NULL_PROFILER, WallProfiler
from ..obs.trace import NULL_TRACER, Tracer
from ..packet import fragment, icmpv6, ipv6, tcp, udp
from ..packet.icmpv6 import UnreachableCode
from ..packet.ipv6 import PROTO_ICMPV6, PROTO_TCP, PROTO_UDP, IPv6Header
from .build import BuiltInternet, InternetConfig, Vantage, build_internet
from .ecmp import flow_variant
from .runstate import RunState, run_state  # noqa: F401  (public re-export)
from .topology import Hop, Router, RouterRole, Subnet


class TerminalKind(enum.Enum):
    """What happens to a probe that outlives every hop on its path."""

    LAN = "lan"          # delivered onto the destination /64
    ROUTER = "router"    # the destination is a router's own interface
    ERROR = "error"      # ICMPv6 error from the last hop router
    SILENT = "silent"    # blackholed (e.g. a relay with no onward state)


class CompiledPath:
    """A materialized forwarding path for one (vantage, /64, variant)."""

    __slots__ = (
        "hops",
        "terminal",
        "error_code",
        "subnet",
        "filter_index",
        "filter_action",
        "blocked",
        "mtu_profile",
    )

    def __init__(
        self,
        hops: List[Tuple[Router, int, int]],
        terminal: TerminalKind,
        error_code: Optional[UnreachableCode] = None,
        subnet: Optional[Subnet] = None,
        filter_index: Optional[int] = None,
        filter_action: str = "drop",
        blocked: Optional[frozenset] = None,
        mtu_profile: Optional[List[int]] = None,
    ) -> None:
        #: [(router, source interface address, one-way cumulative µs)].
        self.hops = hops
        self.terminal = terminal
        self.error_code = error_code
        self.subnet = subnet
        #: 1-based hop position of the filtering border, if any; probes
        #: needing to travel past it with a blocked protocol are filtered.
        self.filter_index = filter_index
        self.filter_action = filter_action
        self.blocked = blocked or frozenset()
        #: Per-hop MTU of the link each hop forwards onto (defaults 1500).
        self.mtu_profile = mtu_profile or [1500] * len(hops)

    @property
    def length(self) -> int:
        return len(self.hops)

    @property
    def path_mtu(self) -> int:
        """The bottleneck MTU along the whole path."""
        return min(self.mtu_profile, default=1500)

    def mtu_break(self, size: int, hop_limit: int) -> Optional[int]:
        """Index of the hop that must reject a packet of ``size`` before
        it can travel ``hop_limit`` hops, or None when it fits."""
        travel = min(hop_limit, len(self.hops))
        for index in range(travel):
            if size > self.mtu_profile[index]:
                return index
        return None


class Response:
    """A response packet headed back to the vantage."""

    __slots__ = ("delay_us", "data", "kind")

    def __init__(self, delay_us: int, data: bytes, kind: str) -> None:
        self.delay_us = delay_us
        self.data = data
        #: "icmp6" for ICMPv6 packets, "tcp" for RST/SYN-ACK from hosts.
        self.kind = kind


@run_state(
    "probes",
    "time_exceeded",
    "echo_replies",
    "unreachables",
    "rate_limited",
    "filtered",
    "silent_terminal",
    "tcp_responses",
    "lost",
    "packet_too_big",
    constructed_per_run=True,
)
class InternetStats:
    """Aggregate counters over everything the internet saw.

    A fresh block replaces ``Internet.stats`` wholesale on every rewind,
    so every counter is per-run by construction."""

    __slots__ = (
        "probes",
        "time_exceeded",
        "echo_replies",
        "unreachables",
        "rate_limited",
        "filtered",
        "silent_terminal",
        "tcp_responses",
        "lost",
        "packet_too_big",
    )

    def __init__(self) -> None:
        self.probes = 0
        self.time_exceeded = 0
        self.echo_replies = 0
        self.unreachables = 0
        self.rate_limited = 0
        self.filtered = 0
        self.silent_terminal = 0
        self.tcp_responses = 0
        self.lost = 0
        self.packet_too_big = 0


def _covering(sorted_prefixes: Sequence[Prefix], value: int) -> Optional[Prefix]:
    """Find the prefix in a sorted list covering ``value``, if any."""
    if not sorted_prefixes:
        return None
    index = bisect_right(sorted_prefixes, Prefix(value, 128)) - 1
    if index >= 0 and sorted_prefixes[index].contains(value):
        return sorted_prefixes[index]
    return None


def _hop_delay(router: Router, tier: int) -> int:
    """Deterministic per-router one-way link delay in microseconds."""
    jitter = (router.router_id * 2654435761) & 0xFFFFFFFF
    if tier <= 2:
        return 2000 + jitter % 9000
    return 250 + jitter % 900


@run_state("stats", "tracer", "_rng", shared=("_path_cache",))
class Internet:
    """Facade over a built ground-truth internet.

    Use :meth:`probe` for raw-bytes injection (what the probers do) or
    :meth:`trace_path` to inspect ground-truth paths (what the tests and
    validation do).

    Run-scoped state is declared via :func:`~repro.netsim.runstate.
    run_state` (re-exported here): ``stats``, ``tracer`` and the loss
    RNG are rewound by :meth:`fresh_run_state`; ``_path_cache`` is
    ``shared`` — path compilation is a pure function of the immutable
    topology, so the cache deliberately survives the rewind.  MUT101/
    MUT102 and ShardSan enforce the declaration (docs/determinism.md).
    """

    @classmethod
    def from_config(
        cls,
        config: Optional[InternetConfig] = None,
        profiler: Optional[WallProfiler] = None,
    ) -> "Internet":
        """Rebuild the full simulated internet from its spec.

        Worlds are pure functions of their :class:`InternetConfig` (every
        quantity is drawn from the config's seed), so a config is all a
        parallel shard worker needs to reconstruct the identical internet
        in its own process — no topology object ever crosses a pipe.

        ``profiler`` attributes the build's host cost to a ``world.build``
        phase (wall-clock reporting only; the built world is identical
        with or without it).
        """
        prof = profiler if profiler is not None else NULL_PROFILER
        with prof.phase("world.build"):
            built = build_internet(config)
        return cls(built)

    def __init__(self, built: Optional[BuiltInternet] = None, config: Optional[InternetConfig] = None) -> None:
        if built is None:
            built = build_internet(config)
        self.built = built
        self.truth = built.truth
        self.config = built.config
        self.stats = InternetStats()
        #: Span/event sink; rebindable per campaign (default: no-op).
        self.tracer: Tracer = NULL_TRACER
        self._rng = random.Random(built.config.seed ^ 0x5EED)
        self._path_cache: Dict[Tuple[int, int, int], CompiledPath] = {}
        self._vantage_by_addr: Dict[int, Vantage] = {
            vantage.address: vantage for vantage in built.vantages.values()
        }
        self._tier: Dict[int, int] = {
            asn: asys.tier for asn, asys in self.truth.ases.items()
        }
        # Deterministic per-router quotation misbehaviour flags.
        self._manglers: Dict[int, str] = {}
        for router_id in self.truth.routers:
            roll = (router_id * 1103515245 + 12345) % 10_000
            if roll < 50:
                self._manglers[router_id] = "rewrite"
            elif roll < 150:
                self._manglers[router_id] = "truncate"

    # ------------------------------------------------------------------
    # Path compilation
    # ------------------------------------------------------------------
    def vantage(self, name: str) -> Vantage:
        return self.built.vantages[name]

    def reset_dynamics(self) -> None:
        """Refill every rate limiter and clear per-router probing state
        (atomic-fragment holds and fragment Identification counters) —
        used between campaigns so trials don't contaminate each other."""
        for router in self.truth.routers.values():
            router.limiter.reset()
            router.reset_probing_state()
        self.stats = InternetStats()

    def fresh_run_state(self) -> None:
        """Restore every run-scoped bit of state to the just-built value,
        so the next campaign on this instance behaves exactly as if the
        world had been rebuilt from its config.

        This is what lets the parallel runner share ONE built world across
        shard campaigns (fork-inherited or run serially in-process) instead
        of paying :func:`~repro.netsim.build.build_internet` once per
        shard: :meth:`reset_dynamics` clears limiters, probing state and
        stats, the loss/response RNG is reseeded to its constructor value,
        and telemetry hooks are unbound.  The path cache survives — path
        compilation is a pure function of the immutable topology, so a
        warm cache changes nothing observable.  Unlike
        :meth:`reset_dynamics` alone, which deliberately lets the RNG
        stream continue across trials, this is a full rewind.
        """
        self.reset_dynamics()
        self._rng = random.Random(self.config.seed ^ 0x5EED)
        self.tracer = NULL_TRACER
        self.detach_metrics()

    def attach_metrics(
        self,
        registry: MetricsRegistry,
        bucket_us: int = DEFAULT_BUCKET_US,
    ) -> None:
        """Wire every router's rate limiter into telemetry instruments.

        Records the Figure 5 raw inputs — per-virtual-bucket allowed and
        denied decision series plus the post-decision token-level
        distribution — through one shared observer closure, so the per-
        decision cost is a couple of dict updates.  Observers are pure
        recorders and never influence decisions; remove them with
        :meth:`detach_metrics` once the campaign ends.
        """
        allowed_series = registry.series("ratelimit.allowed", bucket_us)
        denied_series = registry.series("ratelimit.denied", bucket_us)
        levels = registry.histogram(
            "ratelimit.token_level",
            bounds=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
        )
        infinity = float("inf")

        def observe(now: int, allowed: bool, tokens: float) -> None:
            if allowed:
                allowed_series.record(now)
            else:
                denied_series.record(now)
            if tokens != infinity:
                levels.observe(tokens)

        for router in self.truth.routers.values():
            router.limiter.observer = observe

    def detach_metrics(self) -> None:
        """Remove limiter observers installed by :meth:`attach_metrics`."""
        for router in self.truth.routers.values():
            router.limiter.observer = None

    def path_for(self, vantage: Vantage, dst: int, variant: int = 0) -> CompiledPath:
        """The compiled path from ``vantage`` toward ``dst`` for an ECMP
        variant; cached per destination /64 — except router-interface
        destinations, which terminate at a specific address and must not
        share cache entries with hosts in the same /64."""
        if dst in self.truth.router_addresses:
            key = (vantage.asn, dst, variant & 3)
        else:
            key = (vantage.asn, dst >> 64, variant & 3)
        path = self._path_cache.get(key)
        if path is None:
            path = self._compile_path(vantage, dst, variant & 3)
            self._path_cache[key] = path
        return path

    def _compile_path(self, vantage: Vantage, dst: int, variant: int) -> CompiledPath:
        built = self.built
        hops: List[Tuple[Router, int, int]] = []
        mtus: List[int] = []
        cum = 0

        def push(router: Router, iface: int) -> None:
            nonlocal cum
            cum += _hop_delay(router, self._tier.get(router.asn, 3))
            hops.append((router, iface, cum))
            mtus.append(self.truth.ases[router.asn].link_mtu)

        for router, iface in vantage.premise_chain:
            push(router, iface)

        match = self.truth.bgp.longest_match(dst)
        provider_asn = built.uplinks[vantage.asn][0]
        self._push_transit(hops, push, provider_asn, variant)
        if match is None:
            # Full-table transit: no route.
            return CompiledPath(
                hops,
                TerminalKind.ERROR,
                UnreachableCode.NO_ROUTE,
                mtu_profile=mtus,
            )

        dst_prefix, dst_asn = match
        dst_as = self.truth.ases[dst_asn]

        # AS-level route: up from the vantage's provider toward the
        # backbone, then down to the destination AS.
        as_path = self._as_route(provider_asn, dst_asn, variant)
        for asn in as_path:
            self._push_transit(hops, push, asn, variant)

        if dst_asn != vantage.asn and dst_asn not in (provider_asn, *as_path):
            # Destination AS ingress border + core.
            borders = built.borders.get(dst_asn, ())
            if borders:
                router, iface = borders[variant % len(borders)]
                push(router, iface)
            cores = built.cores.get(dst_asn, ())
            if cores:
                router, iface = cores[variant % len(cores)]
                push(router, iface)

        # Border filtering applies where traffic enters the destination AS.
        filter_index: Optional[int] = None
        filter_action = "drop"
        blocked = frozenset(dst_as.policy.blocked_protocols)
        if blocked:
            filter_index = len(hops) - 1 if hops else 0
            filter_action = dst_as.policy.prohibit_action

        # A probe aimed at a router's own (routed) interface address —
        # e.g. an infrastructure link address harvested by reverse-DNS
        # walking — terminates at that router, which answers like a host.
        owner = self.truth.router_addresses.get(dst)
        if owner is not None:
            push(owner, dst)
            return CompiledPath(
                hops,
                TerminalKind.ROUTER,
                filter_index=filter_index,
                filter_action=filter_action,
                blocked=blocked,
                mtu_profile=mtus,
            )

        # Internal descent: distribution -> aggregation -> gateway.
        dist = _covering(built.dist_index.get(dst_asn, ()), dst)
        if dist is None:
            return CompiledPath(
                hops,
                TerminalKind.ERROR,
                UnreachableCode.NO_ROUTE,
                filter_index=filter_index,
                filter_action=filter_action,
                blocked=blocked,
                mtu_profile=mtus,
            )
        options = built.dist_routers[dist.base]
        router, iface = options[variant % len(options)]
        push(router, iface)

        alloc = _covering(built.alloc_index.get(dst_asn, ()), dst)
        if alloc is None or not dist.covers(alloc):
            return CompiledPath(
                hops,
                TerminalKind.ERROR,
                UnreachableCode.ADDRESS_UNREACHABLE,
                filter_index=filter_index,
                filter_action=filter_action,
                blocked=blocked,
                mtu_profile=mtus,
            )
        options = built.agg_routers[alloc.base]
        router, iface = options[variant % len(options)]
        push(router, iface)

        subnet = self.truth.subnet_of(dst)
        if subnet is None:
            return CompiledPath(
                hops,
                TerminalKind.ERROR,
                UnreachableCode.ADDRESS_UNREACHABLE,
                filter_index=filter_index,
                filter_action=filter_action,
                blocked=blocked,
                mtu_profile=mtus,
            )
        push(subnet.gateway, subnet.gateway_addr)
        return CompiledPath(
            hops,
            TerminalKind.LAN,
            subnet=subnet,
            filter_index=filter_index,
            filter_action=filter_action,
            blocked=blocked,
            mtu_profile=mtus,
        )

    def _push_transit(
        self,
        hops: List[Hop],
        push: Callable[[Router, int], None],
        asn: int,
        variant: int,
    ) -> None:
        """Append a transit AS's ingress border and a core router."""
        borders = self.built.borders.get(asn, ())
        if borders:
            router, iface = borders[variant % len(borders)]
            push(router, iface)
        cores = self.built.cores.get(asn, ())
        if cores:
            router, iface = cores[variant % len(cores)]
            push(router, iface)

    def _as_route(self, from_asn: int, dst_asn: int, variant: int) -> List[int]:
        """Valley-free AS hops strictly between the vantage's provider and
        the destination AS (which contribute their own hops separately)."""
        built = self.built
        if dst_asn == from_asn:
            return []
        dst_as = self.truth.ases[dst_asn]
        if dst_as.tier == 1:
            return [] if dst_asn == from_asn else []
        # Providers of the destination.
        dst_providers = built.uplinks.get(dst_asn, [])
        if from_asn in dst_providers:
            return []
        if dst_as.tier == 2:
            # from (T2) -> shared T1 -> dst T2.
            t1 = self._pick_shared_tier1(from_asn, dst_asn, variant)
            return t1
        # Destination is edge: descend via one of its providers.
        dst_provider = dst_providers[variant % len(dst_providers)] if dst_providers else None
        route: List[int] = []
        if dst_provider is not None and dst_provider != from_asn:
            route.extend(self._pick_shared_tier1(from_asn, dst_provider, variant))
            route.append(dst_provider)
        return route

    def _pick_shared_tier1(self, a_asn: int, b_asn: int, variant: int) -> List[int]:
        """Tier-1 hops linking two tier-2 ASes (empty when directly akin)."""
        built = self.built
        a_ups = built.uplinks.get(a_asn, [])
        b_ups = built.uplinks.get(b_asn, [])
        shared = [asn for asn in a_ups if asn in b_ups]
        if shared:
            return [shared[variant % len(shared)]]
        if a_ups and b_ups:
            t1_a = a_ups[variant % len(a_ups)]
            t1_b = b_ups[variant % len(b_ups)]
            if t1_a == t1_b:
                return [t1_a]
            return [t1_a, t1_b]
        return []

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def probe(self, data: bytes, now: int) -> Optional[Response]:
        """Inject probe bytes at virtual time ``now``; the vantage is
        identified by the packet's source address.  Returns the response
        (with its arrival delay) or None when the network stays silent."""
        self.stats.probes += 1
        header, payload = ipv6.split_packet(data)
        vantage = self._vantage_by_addr.get(header.src)
        if vantage is None:
            raise ValueError(
                "probe source %x is not a configured vantage" % header.src
            )
        variant = flow_variant(header, payload)
        path = self.path_for(vantage, header.dst, variant)
        hop_limit = header.hop_limit

        filtered = (
            path.filter_index is not None
            and header.next_header in path.blocked
            and hop_limit > path.filter_index
        )
        if filtered:
            self.stats.filtered += 1
            if path.filter_action != "admin":
                return None
            router, iface, delay = path.hops[path.filter_index - 1] if path.filter_index else path.hops[-1]
            return self._icmp_error(
                router,
                iface,
                delay,
                icmpv6.TYPE_DEST_UNREACH,
                int(UnreachableCode.ADMIN_PROHIBITED),
                data,
                header,
                now,
            )

        break_index = path.mtu_break(len(data), hop_limit)
        if break_index is not None:
            # The packet exceeds a link MTU before its hop limit expires:
            # the router at the bottleneck reports Packet Too Big.
            router, iface, delay = path.hops[break_index]
            self.stats.packet_too_big += 1
            return self._icmp_error(
                router,
                iface,
                delay,
                icmpv6.TYPE_PACKET_TOO_BIG,
                0,
                data,
                header,
                now,
                word=path.mtu_profile[break_index],
            )

        if hop_limit <= path.length:
            router, iface, delay = path.hops[hop_limit - 1]
            return self._icmp_error(
                router,
                iface,
                delay,
                icmpv6.TYPE_TIME_EXCEEDED,
                icmpv6.CODE_HOP_LIMIT_EXCEEDED,
                data,
                header,
                now,
            )

        # Probe outlives the path: terminal behaviour.
        if path.terminal is TerminalKind.ERROR:
            if not path.hops:
                return None
            router, iface, delay = path.hops[-1]
            return self._icmp_error(
                router,
                iface,
                delay,
                icmpv6.TYPE_DEST_UNREACH,
                int(path.error_code),
                data,
                header,
                now,
            )
        if path.terminal is TerminalKind.ROUTER:
            # The router answers probes to its own interface address.
            router, _, delay = path.hops[-1]
            return self._host_response(header, payload, delay, responder=router, now=now)
        if path.terminal is TerminalKind.SILENT or path.subnet is None:
            self.stats.silent_terminal += 1
            return None
        return self._deliver_lan(path, header, payload, data, now)

    def _deliver_lan(
        self,
        path: CompiledPath,
        header: IPv6Header,
        payload: bytes,
        data: bytes,
        now: int,
    ) -> Optional[Response]:
        subnet = path.subnet
        _, _, delay = path.hops[-1]
        delay += 100  # LAN hop
        if header.dst == subnet.gateway_addr:
            # The probe targets the gateway's own LAN address (e.g. the
            # ::1 synthesis hitting an active /64): the router answers
            # like a host — echo reply / port unreachable / RST.
            return self._host_response(
                header, payload, delay, responder=subnet.gateway, now=now
            )
        if subnet.aliased or subnet.has_host(header.dst):
            return self._host_response(header, payload, delay, now=now)
        # Neighbour discovery fails; the gateway may report it.
        router, iface, gw_delay = path.hops[-1]
        if self._rng.random() < self.config.gateway_unreach_probability:
            return self._icmp_error(
                router,
                iface,
                gw_delay,
                icmpv6.TYPE_DEST_UNREACH,
                int(UnreachableCode.ADDRESS_UNREACHABLE),
                data,
                header,
                now,
            )
        self.stats.silent_terminal += 1
        return None

    def _host_response(
        self,
        header: IPv6Header,
        payload: bytes,
        delay: int,
        responder: Optional[Router] = None,
        now: int = 0,
    ) -> Optional[Response]:
        """Terminal response from the destination itself — an end host, or
        a router answering for one of its own addresses (``responder``)."""
        if self._rng.random() < self.config.response_loss:
            self.stats.lost += 1
            return None
        host = header.dst
        if header.next_header == PROTO_ICMPV6:
            try:
                request = icmpv6.ICMPv6Message.unpack(payload)
            except ipv6.PacketError:
                return None
            if request.msg_type == icmpv6.TYPE_PACKET_TOO_BIG:
                # A too-small-MTU report: routers honour it by emitting
                # atomic fragments toward the reporter (RFC 6946) — the
                # state speedtrap alias resolution plants.
                if responder is not None and request.word < icmpv6.MINIMUM_MTU:
                    responder.note_packet_too_big(header.src, now + delay)
                return None
            if request.msg_type != icmpv6.TYPE_ECHO_REQUEST:
                return None
            reply = icmpv6.echo_reply(
                request.identifier, request.sequence, request.body
            )
            reply_segment = reply.pack(host, header.src)
            next_header = PROTO_ICMPV6
            if responder is not None and responder.atomic_active(
                header.src, now + delay
            ):
                identification = responder.frag_identification(now + delay)
                reply_segment = fragment.wrap_atomic(
                    PROTO_ICMPV6, identification, reply_segment
                )
                next_header = fragment.PROTO_FRAGMENT
            packet = ipv6.build_packet(
                IPv6Header(host, header.src, 0, next_header),
                reply_segment,
            )
            self.stats.echo_replies += 1
            return Response(2 * delay + 150, packet, "icmp6")
        if header.next_header == PROTO_UDP:
            # Closed port: the host itself sends port unreachable — but
            # end hosts rate-limit their own ICMPv6 errors hard.
            if self._rng.random() > self.config.host_error_probability:
                self.stats.silent_terminal += 1
                return None
            error = icmpv6.destination_unreachable(
                UnreachableCode.PORT_UNREACHABLE,
                ipv6.build_packet(header, payload),
            )
            packet = ipv6.build_packet(
                IPv6Header(host, header.src, 0, PROTO_ICMPV6),
                error.pack(host, header.src),
            )
            self.stats.unreachables += 1
            return Response(2 * delay + 150, packet, "icmp6")
        if header.next_header == PROTO_TCP:
            try:
                seg, _ = tcp.split_segment(payload)
            except ipv6.PacketError:
                return None
            rst = tcp.TCPHeader(
                seg.dst_port,
                seg.src_port,
                seq=0,
                ack=seg.seq + 1,
                flags=tcp.FLAG_RST | tcp.FLAG_ACK,
            )
            packet = ipv6.build_packet(
                IPv6Header(host, header.src, 0, PROTO_TCP),
                tcp.build_segment(host, header.src, rst),
            )
            self.stats.tcp_responses += 1
            return Response(2 * delay + 150, packet, "tcp")
        return None

    def _icmp_error(
        self,
        router: Router,
        iface: int,
        delay: int,
        msg_type: int,
        code: int,
        invoking: bytes,
        header: IPv6Header,
        now: int,
        word: int = 0,
    ) -> Optional[Response]:
        # Protocol-selective hops (observed in the wild, Section 4.2).
        if (
            router.respond_protocols is not None
            and header.next_header not in router.respond_protocols
        ):
            return None
        if router.response_probability < 1.0 and (
            self._rng.random() > router.response_probability
        ):
            return None
        # Mandated ICMPv6 error rate limiting, evaluated when the packet
        # actually reaches the router in virtual time.
        allowed = router.limiter.consume(now + delay)
        self.tracer.event(
            "limiter.decision",
            router=router.router_id,
            allowed=allowed,
            decided_at_us=now + delay,
        )
        if not allowed:
            self.stats.rate_limited += 1
            return None
        if self._rng.random() < self.config.response_loss:
            self.stats.lost += 1
            return None
        quotation = self._quote(router, invoking)
        if msg_type == icmpv6.TYPE_TIME_EXCEEDED:
            message = icmpv6.ICMPv6Message(
                icmpv6.TYPE_TIME_EXCEEDED, code, 0, quotation
            )
            self.stats.time_exceeded += 1
        elif msg_type == icmpv6.TYPE_PACKET_TOO_BIG:
            message = icmpv6.ICMPv6Message(
                icmpv6.TYPE_PACKET_TOO_BIG, code, word, quotation
            )
        else:
            message = icmpv6.ICMPv6Message(icmpv6.TYPE_DEST_UNREACH, code, 0, quotation)
            self.stats.unreachables += 1
        packet = ipv6.build_packet(
            IPv6Header(iface, header.src, 0, PROTO_ICMPV6),
            message.pack(iface, header.src),
        )
        return Response(2 * delay + 200, packet, "icmp6")

    def _quote(self, router: Router, invoking: bytes) -> bytes:
        """The invoking-packet quotation, with realistic misbehaviour for a
        small deterministic subset of routers."""
        behaviour = self._manglers.get(router.router_id)
        quotation = invoking[: icmpv6.MAX_QUOTATION]
        if behaviour == "truncate":
            # IPv4-style minimal quote: IPv6 header + 8 bytes.
            return quotation[:48]
        if behaviour == "rewrite":
            # A middlebox rewrote the destination's low bits.
            mangled = bytearray(quotation)
            if len(mangled) >= 40:
                mangled[38] ^= 0x55
            return bytes(mangled)
        return quotation

    # ------------------------------------------------------------------
    # Ground-truth inspection helpers (tests / validation)
    # ------------------------------------------------------------------
    def trace_path(self, vantage_name: str, dst: int, variant: int = 0) -> CompiledPath:
        return self.path_for(self.vantage(vantage_name), dst, variant)

    def path_length(self, vantage_name: str, dst: int) -> int:
        return self.trace_path(vantage_name, dst).length
