"""ICMPv6 error rate limiting: lazy token buckets over virtual time.

RFC 4443 Section 2.4(f) *requires* IPv6 nodes to bound the rate of ICMPv6
error messages they originate and recommends a token-bucket function.
This mandated limiting — far more aggressive in deployed IPv6 routers
than anything common in IPv4 — is the paper's motivating obstacle: bursts
of TTL-limited probes from a sequential tracer drain a hop's bucket and
the hop goes dark (Figure 5).

The bucket refills continuously at ``rate`` tokens per second up to
``burst`` tokens, computed lazily from the virtual-time delta since the
last update so that no periodic refill events are needed.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import US_PER_SECOND
from .runstate import run_state

#: Telemetry hook called after every limiter decision with
#: ``(virtual_now, allowed, tokens_after)``.  Observers must be pure
#: recorders: they may never influence the decision or consume RNG.
BucketObserver = Callable[[int, bool, float], None]


@run_state("_tokens", "_updated", "allowed", "denied", "observer")
class TokenBucket:
    """A continuous-refill token bucket evaluated at virtual timestamps.

    Every field except the provisioning knobs (``rate``, ``burst``) is
    campaign-scoped: :meth:`reset` refills and zeroes the counters, and
    the telemetry ``observer`` is unbound by ``Internet.detach_metrics``
    — both reached from ``Internet.fresh_run_state``.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "allowed", "denied", "observer")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive: %r" % rate)
        if burst < 1:
            raise ValueError("burst must be at least 1: %r" % burst)
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = 0
        self.allowed = 0
        self.denied = 0
        self.observer: Optional[BucketObserver] = None

    def _refill(self, now: int) -> None:
        if now > self._updated:
            self._tokens = min(
                self.burst,
                self._tokens + self.rate * (now - self._updated) / US_PER_SECOND,
            )
            self._updated = now

    def consume(self, now: int, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens at virtual time ``now``; False if empty."""
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            self.allowed += 1
            if self.observer is not None:
                self.observer(now, True, self._tokens)
            return True
        self.denied += 1
        if self.observer is not None:
            self.observer(now, False, self._tokens)
        return False

    def peek(self, now: int) -> float:
        """Token count at ``now`` without consuming."""
        self._refill(now)
        return self._tokens

    @property
    def total(self) -> int:
        """Total consume() attempts observed."""
        return self.allowed + self.denied

    def reset(self) -> None:
        """Refill to full and clear counters."""
        self._tokens = self.burst
        self._updated = 0
        self.allowed = 0
        self.denied = 0

    def __repr__(self) -> str:
        return "TokenBucket(rate=%g/s, burst=%g, allowed=%d, denied=%d)" % (
            self.rate,
            self.burst,
            self.allowed,
            self.denied,
        )


@run_state("allowed", "denied", "observer")
class UnlimitedBucket:
    """A degenerate limiter that always permits (for unlimited hops)."""

    __slots__ = ("allowed", "denied", "observer")

    rate = float("inf")
    burst = float("inf")

    def __init__(self) -> None:
        self.allowed = 0
        self.denied = 0
        self.observer: Optional[BucketObserver] = None

    def consume(self, now: int, amount: float = 1.0) -> bool:
        self.allowed += 1
        if self.observer is not None:
            self.observer(now, True, float("inf"))
        return True

    def peek(self, now: int) -> float:
        return float("inf")

    @property
    def total(self) -> int:
        return self.allowed

    def reset(self) -> None:
        self.allowed = 0
        self.denied = 0
