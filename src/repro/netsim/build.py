"""Ground-truth internet generation.

Builds a hierarchical AS-level topology (tier-1 backbone mesh, tier-2
regional transits, edge/stub ASes, plus large residential "CPE ISPs"),
a router-level hierarchy inside each AS, BGP and registry tables, subnet
plans, and host populations.  Every quantity is drawn from a seeded RNG,
so a given :class:`InternetConfig` reproduces the same internet bit for
bit.

The generated internet deliberately exhibits the phenomena the paper's
evaluation turns on:

* mandated ICMPv6 rate limiting with heterogeneous parameters per router
  (Figure 5's per-hop response collapse);
* two dominant CPE ISPs whose customer-premises routers carry EUI-64
  addresses from a single manufacturer each (Table 7's EUI-64 finding);
* last-hop gateways numbered inside the customer /64 — with a ::1 IID in
  conventionally run networks — enabling the "IA hack" (Section 6);
* sparse allocation: only a fraction of each AS's address space has
  active distribution prefixes, customer allocations, and LANs (depth
  discoverable only by fine-grained targets, Table 3 / Figure 7);
* border filtering of UDP/TCP probes in a minority of ASes (the protocol
  comparison of Section 4.2);
* infrastructure numbered from unadvertised, registry-only prefixes, and
  operationally "equivalent" ASN families (Section 6's complications).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..addrs.prefix import Prefix
from ..packet.ipv6 import PROTO_ICMPV6, PROTO_TCP, PROTO_UDP
from .addressing import (
    CPE_OUIS,
    host_iid,
    interface_address,
    pick_host_kind,
)
from .ratelimit import TokenBucket
from .topology import (
    AddressPlan,
    AutonomousSystem,
    GroundTruth,
    HostKind,
    Router,
    RouterRole,
    Subnet,
)


@dataclass
class VantageConfig:
    """One measurement vantage point: a host inside its own edge AS."""

    name: str
    #: Number of on-premise router hops between the vantage host and the
    #: AS border (US-EDU-2's longer premise path, Section 5.3).
    premise_hops: int = 3
    #: (rate pps, burst) of the premise hops' ICMPv6 limiters; the first
    #: hop is the one Figure 5 watches collapse under sequential probing.
    premise_limit: Tuple[float, float] = (200.0, 60.0)
    #: Hop indexes (1-based within the premise chain) given an extra-
    #: aggressive limiter (Figure 5's hop 3 / hops 5, 9 behaviour).
    aggressive_hops: Tuple[int, ...] = ()
    aggressive_limit: Tuple[float, float] = (40.0, 10.0)


@dataclass
class InternetConfig:
    """Knobs for the generated internet.  Defaults build a mid-size world
    (~10k routers) suitable for tests; benchmarks scale ``n_edge`` and
    ``cpe_customers_per_isp`` up."""

    seed: int = 2018
    n_tier1: int = 4
    n_tier2: int = 10
    n_edge: int = 120
    n_cpe_isps: int = 2
    cpe_customers_per_isp: int = 1500

    # Edge AS internal plan: active distribution /40s, /48 allocations per
    # distribution, active /64 leaves per allocation, hosts per leaf.
    dist_per_edge: Tuple[int, int] = (2, 5)
    allocs_per_dist: Tuple[int, int] = (2, 5)
    leaves_per_alloc: Tuple[int, int] = (1, 3)
    hosts_per_leaf: Tuple[int, int] = (1, 4)

    #: Fraction of edge ASes advertising a /48 instead of a /32.
    edge_slash48_fraction: float = 0.25
    #: Fraction of edge ASes whose router space is registry-only (not BGP).
    unadvertised_infra_fraction: float = 0.10
    #: Number of "equivalent ASN" families (infrastructure ASN distinct
    #: from the customer-prefix ASN).
    equivalent_families: int = 2

    # Host address technique mix on conventional LANs.
    privacy_fraction: float = 0.55
    eui64_host_fraction: float = 0.25
    #: Fraction of leaves whose hosts surf the web (CDN seed visibility).
    edge_www_fraction: float = 0.15
    #: Per-CPE-ISP WWW-client fraction: the first ISP's customers dominate
    #: the CDN's view, the second's barely appear — which is why the CDN
    #: and TUM target sets end up revealing *different* ISPs' CPE fleets
    #: (Section 5.1).  Indexed by ISP number, last value reused beyond.
    cpe_www_fractions: Tuple[float, ...] = (0.98, 0.25)

    # ICMPv6 error rate limiting (token buckets), sampled per router.
    core_limit_rate: Tuple[float, float] = (300.0, 1200.0)
    core_limit_burst: Tuple[float, float] = (50.0, 200.0)
    edge_limit_rate: Tuple[float, float] = (80.0, 500.0)
    edge_limit_burst: Tuple[float, float] = (20.0, 100.0)

    # Behavioural fractions.
    udp_block_fraction: float = 0.10
    tcp_block_fraction: float = 0.08
    admin_firewall_fraction: float = 0.03
    silent_router_fraction: float = 0.04
    icmp_only_router_fraction: float = 0.01
    #: Probability the final gateway answers a dead-IID probe with an
    #: address-unreachable instead of silence.
    gateway_unreach_probability: float = 0.08
    #: Probability a host (or router answering for its own address)
    #: emits an ICMPv6 error such as port-unreachable for one probe —
    #: end hosts rate-limit errors aggressively (RFC 4443 applies to
    #: them too; Linux defaults to ~1 error/s per destination).
    host_error_probability: float = 0.15
    #: Baseline per-response loss applied on the reverse path.
    response_loss: float = 0.01
    #: Fraction of edge leaf /64s that are fully responsive "aliased
    #: prefixes" (Gasser et al.) — every IID answers.
    aliased_subnet_fraction: float = 0.02
    #: Fraction of edge ASes reached over 6in4-style tunnels (link MTU
    #: 1480); the 6to4 relay always runs at the 1280 floor.
    tunnel_fraction: float = 0.06

    #: Advertise 2002::/16 via a relay AS and give DNS-ish seeds 6to4 noise.
    include_6to4: bool = True

    vantages: Tuple[VantageConfig, ...] = field(
        default_factory=lambda: (
            VantageConfig("US-EDU-1", premise_hops=3),
            VantageConfig(
                "US-EDU-2",
                premise_hops=6,
                aggressive_hops=(5,),
                # Near-dark at campaign rates: the hop whose silence
                # breaks fill chains (Table 6) and depresses this
                # vantage's yield (Section 5.3).
                aggressive_limit=(5.0, 3.0),
            ),
            VantageConfig("EU-NET", premise_hops=3, aggressive_hops=(3,)),
        )
    )


class Vantage:
    """A built vantage: its host address and on-premise hop chain."""

    __slots__ = ("name", "asn", "address", "premise_chain")

    def __init__(self, name: str, asn: int, address: int) -> None:
        self.name = name
        self.asn = asn
        self.address = address
        #: [(router, iface_addr)] from first hop outward to the AS border.
        self.premise_chain: List[Tuple[Router, int]] = []

    def __repr__(self) -> str:
        return "Vantage(%s, AS%d)" % (self.name, self.asn)


class BuiltInternet:
    """The builder's output: ground truth plus routing structure."""

    __slots__ = (
        "config",
        "truth",
        "vantages",
        "tier1_asns",
        "tier2_asns",
        "edge_asns",
        "cpe_asns",
        "borders",
        "cores",
        "dist_routers",
        "agg_routers",
        "uplinks",
        "alloc_index",
        "dist_index",
    )

    def __init__(self, config: InternetConfig) -> None:
        self.config = config
        self.truth = GroundTruth()
        self.vantages: Dict[str, Vantage] = {}
        self.tier1_asns: List[int] = []
        self.tier2_asns: List[int] = []
        self.edge_asns: List[int] = []
        self.cpe_asns: List[int] = []
        #: ASN -> [(border_router, iface_addr)] (ingress candidates).
        self.borders: Dict[int, List[Tuple[Router, int]]] = {}
        #: ASN -> [(core_router, iface_addr)] (ECMP candidates).
        self.cores: Dict[int, List[Tuple[Router, int]]] = {}
        #: /40-distribution base addr -> interface options (router, iface).
        self.dist_routers: Dict[int, Tuple[Router, int]] = {}
        #: /48-allocation base addr -> interface options (router, iface).
        self.agg_routers: Dict[int, Tuple[Router, int]] = {}
        #: ASN -> provider ASNs.
        self.uplinks: Dict[int, List[int]] = {}
        #: ASN -> sorted list of allocation prefixes (fast membership).
        self.alloc_index: Dict[int, List[Prefix]] = {}
        self.dist_index: Dict[int, List[Prefix]] = {}


def _allocate_slots(rng: random.Random, span: int, count: int) -> List[int]:
    """Subnet slot selection with operational locality: most operators
    allocate sequentially from the bottom of the block, some scatter."""
    if count >= span:
        return list(range(span))
    if rng.random() < 0.65:
        offset = rng.randrange(0, max(1, min(8, span - count)))
        return list(range(offset, offset + count))
    return rng.sample(range(span), k=count)


class _Builder:
    """Stateful construction helper; call :func:`build_internet` instead."""

    def __init__(self, config: InternetConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.out = BuiltInternet(config)
        self._next_asn = 64496
        self._next_router_id = 1
        self._used_prefixes: Set[int] = set()
        self._link_counters: Dict[int, int] = {}
        self._infra_prefix: Dict[int, Prefix] = {}
        self._link_space: Dict[int, Prefix] = {}

    # -- identity allocation ------------------------------------------
    def new_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _unique_slash32(self) -> Prefix:
        while True:
            high = 0x2000 | self.rng.getrandbits(13)
            low = self.rng.getrandbits(16)
            base = (high << 112) | (low << 96)
            if base not in self._used_prefixes:
                self._used_prefixes.add(base)
                return Prefix(base, 32)

    def new_router(
        self,
        asn: int,
        role: RouterRole,
        rate_range: Tuple[float, float],
        burst_range: Tuple[float, float],
    ) -> Router:
        rng = self.rng
        limiter = TokenBucket(
            rate=rng.uniform(*rate_range), burst=rng.uniform(*burst_range)
        )
        respond: Optional[Set[int]] = None
        probability = 1.0
        if rng.random() < self.config.silent_router_fraction:
            probability = rng.uniform(0.0, 0.5)
        elif rng.random() < self.config.icmp_only_router_fraction:
            respond = {PROTO_ICMPV6}
        router = Router(
            self._next_router_id,
            asn,
            role,
            limiter,
            respond_protocols=respond,
            response_probability=probability,
        )
        self._next_router_id += 1
        self.out.truth.register_router(router)
        return router

    def link_prefix(self, asn: int) -> Prefix:
        """Next infrastructure /64 for a point-to-point link inside ``asn``."""
        counter = self._link_counters.get(asn, 0)
        self._link_counters[asn] = counter + 1
        infra = self._link_space[asn]
        # Infrastructure links live under the first /48 of the infra prefix.
        return Prefix(infra.base | (counter << 64), 64)

    def give_interface(self, router: Router, addr: int) -> int:
        self.out.truth.register_interface(router, addr)
        return addr

    def iface_on_link(self, router: Router, link: Prefix, position: int) -> int:
        asys = self.out.truth.ases[router.asn]
        plan = asys.address_plan
        if plan is AddressPlan.EUI64 and router.role is not RouterRole.CPE:
            # EUI-64 comes from SLAAC on customer-premises gear; an ISP's
            # own core/aggregation links are statically numbered.
            plan = AddressPlan.LOWBYTE
        addr = interface_address(
            link, plan, position, self.rng, asys.cpe_oui or 0
        )
        return self.give_interface(router, addr)

    # -- AS construction -----------------------------------------------
    def make_as(
        self,
        name: str,
        tier: int,
        plan: AddressPlan,
        hidden_infra: bool = False,
        prefix_length: int = 32,
    ) -> AutonomousSystem:
        """Create an AS with an advertised primary prefix.  With
        ``hidden_infra`` the routers are numbered from a *separate*,
        registry-only prefix — customers stay globally reachable but the
        infrastructure addresses fall outside the public BGP (one of
        Section 6's record-keeping complications)."""
        asn = self.new_asn()
        asys = AutonomousSystem(asn, name, tier, plan)
        primary = self._unique_slash32()
        if prefix_length != 32:
            primary = Prefix(primary.base, prefix_length)
        self._infra_prefix[asn] = primary
        asys.prefixes.append(primary)
        self.out.truth.bgp.insert(primary, asn)
        self.out.truth.registry.insert(primary, asn)
        if hidden_infra:
            hidden = self._unique_slash32()
            asys.internal_prefixes.append(hidden)
            self.out.truth.registry.insert(hidden, asn)
            self._link_space[asn] = hidden
        else:
            self._link_space[asn] = primary
        self.out.truth.ases[asn] = asys
        return asys

    def attach_border(self, asys: AutonomousSystem, count: int, core: bool = True) -> None:
        """Create border (and core) routers with infrastructure addresses."""
        config = self.config
        rate = config.core_limit_rate if asys.tier <= 2 else config.edge_limit_rate
        burst = config.core_limit_burst if asys.tier <= 2 else config.edge_limit_burst
        # Each router exposes two ingress interfaces; which one sources
        # its ICMPv6 errors depends on the flow's ECMP variant.  Multiple
        # addresses per router are what alias resolution later collapses.
        borders = []
        for _ in range(count):
            router = self.new_router(asys.asn, RouterRole.BORDER, rate, burst)
            asys.routers.append(router)
            for _iface in range(2):
                link = self.link_prefix(asys.asn)
                borders.append((router, self.iface_on_link(router, link, 0)))
        self.out.borders[asys.asn] = borders
        cores = []
        if core:
            n_core = 2 if asys.tier == 1 else 1
            for _ in range(n_core):
                router = self.new_router(asys.asn, RouterRole.CORE, rate, burst)
                asys.routers.append(router)
                for _iface in range(2):
                    link = self.link_prefix(asys.asn)
                    cores.append((router, self.iface_on_link(router, link, 0)))
        self.out.cores[asys.asn] = cores

    def set_policy(self, asys: AutonomousSystem) -> None:
        rng, config = self.rng, self.config
        blocked: Set[int] = set()
        if rng.random() < config.udp_block_fraction:
            blocked.add(PROTO_UDP)
        if rng.random() < config.tcp_block_fraction:
            blocked.add(PROTO_TCP)
        action = "drop"
        if rng.random() < config.admin_firewall_fraction:
            blocked.update({PROTO_UDP, PROTO_TCP, PROTO_ICMPV6})
            action = "admin"
        asys.policy.blocked_protocols = blocked
        asys.policy.prohibit_action = action

    # -- leaf subnets ----------------------------------------------------
    def populate_leaf(
        self,
        asys: AutonomousSystem,
        leaf_prefix: Prefix,
        gateway: Router,
        www_fraction: float,
        host_count: int,
        host_oui: int = 0,
    ) -> Subnet:
        rng, config = self.rng, self.config
        if asys.address_plan is AddressPlan.EUI64:
            gw_iid = host_iid(HostKind.EUI64, rng, asys.cpe_oui or CPE_OUIS[0])
        else:
            gw_iid = 1
        gateway_addr = self.give_interface(gateway, leaf_prefix.base | gw_iid)
        subnet = Subnet(leaf_prefix, gateway, gateway_addr)
        if (
            asys.address_plan is not AddressPlan.EUI64
            and rng.random() < config.aliased_subnet_fraction
        ):
            subnet.aliased = True
        is_www = rng.random() < www_fraction
        # Residential LANs are dominated by SLAAC privacy addresses;
        # enterprise/hosting LANs carry more static low-byte servers.
        privacy = (
            0.85 if asys.address_plan is AddressPlan.EUI64
            else config.privacy_fraction
        )
        for _ in range(host_count):
            kind = pick_host_kind(
                rng, privacy, config.eui64_host_fraction
            )
            iid = host_iid(kind, rng, asys.cpe_oui or CPE_OUIS[1])
            subnet.host_iids.append(iid)
            if is_www and kind is HostKind.SLAAC_PRIVACY:
                subnet.www_client_iids.append(iid)
        self.out.truth.register_subnet(subnet)
        asys.plan.leaves.append(subnet)
        return subnet

    # -- the big pieces ---------------------------------------------------
    def build_backbone(self) -> None:
        for index in range(self.config.n_tier1):
            asys = self.make_as("T1-%d" % index, 1, AddressPlan.LOWBYTE)
            self.attach_border(asys, count=2)
            self.out.tier1_asns.append(asys.asn)
        for index in range(self.config.n_tier2):
            plan = AddressPlan.LOWBYTE if index % 2 else AddressPlan.RANDOM
            asys = self.make_as("T2-%d" % index, 2, plan)
            self.attach_border(asys, count=2)
            providers = self.rng.sample(
                self.out.tier1_asns, k=min(2, len(self.out.tier1_asns))
            )
            asys.providers.extend(providers)
            self.out.uplinks[asys.asn] = providers
            self.out.tier2_asns.append(asys.asn)

    def build_edge_ases(self) -> None:
        config, rng = self.config, self.rng
        pending_equivalents = config.equivalent_families
        for index in range(config.n_edge):
            plan = AddressPlan.LOWBYTE if rng.random() < 0.6 else AddressPlan.RANDOM
            hidden = rng.random() < config.unadvertised_infra_fraction
            length = 48 if rng.random() < config.edge_slash48_fraction else 32
            asys = self.make_as(
                "EDGE-%d" % index, 3, plan, hidden_infra=hidden,
                prefix_length=length,
            )
            self.set_policy(asys)
            if rng.random() < config.tunnel_fraction:
                asys.link_mtu = 1480  # 6in4 tunnel overhead
            self.attach_border(asys, count=1)
            providers = rng.sample(
                self.out.tier2_asns, k=1 if rng.random() < 0.7 else 2
            )
            asys.providers.extend(providers)
            self.out.uplinks[asys.asn] = providers
            self.out.edge_asns.append(asys.asn)
            self.build_edge_plan(asys)
            # Deterministically give the first few edge ASes an
            # "equivalent" sibling infrastructure ASN (Section 6).
            if pending_equivalents and index % 7 == 3:
                self.add_equivalent_family(asys)
                pending_equivalents -= 1

    def add_equivalent_family(self, asys: AutonomousSystem) -> None:
        """Give ``asys`` a sibling infrastructure ASN originating a separate
        prefix used only for router numbering (Section 6)."""
        sibling = self.new_asn()
        infra = self._unique_slash32()
        sibling_as = AutonomousSystem(
            sibling, asys.name + "-INFRA", asys.tier, asys.address_plan
        )
        sibling_as.prefixes.append(infra)
        self.out.truth.ases[sibling] = sibling_as
        self.out.truth.bgp.insert(infra, sibling)
        self.out.truth.registry.insert(infra, sibling)
        self.out.truth.equivalent_asns[sibling] = asys.asn
        self.out.truth.equivalent_asns[asys.asn] = asys.asn
        # Renumber the AS's border routers from the sibling prefix, one
        # fresh link /64 per router.
        seen = set()
        counter = 0
        for router, _ in self.out.borders[asys.asn]:
            if router.router_id in seen:
                continue
            seen.add(router.router_id)
            link = Prefix(infra.base | ((0xFE00 + counter) << 64), 64)
            counter += 1
            addr = interface_address(link, asys.address_plan, 0, self.rng)
            self.give_interface(router, addr)

    def build_edge_plan(self, asys: AutonomousSystem) -> None:
        """Sparse hierarchical allocation inside one edge AS."""
        config, rng = self.config, self.rng
        prefix = self._infra_prefix[asys.asn]
        # Customer space: everything except the infra /48 (index 0).
        dist_length = min(40, prefix.length + 8) if prefix.length < 40 else min(
            prefix.length + 4, 56
        )
        n_dist = rng.randint(*config.dist_per_edge)
        dist_slots = rng.sample(
            range(1, 1 << (dist_length - prefix.length)),
            k=min(n_dist, (1 << (dist_length - prefix.length)) - 1),
        )
        dists: List[Prefix] = []
        for slot in dist_slots:
            dist = prefix.nth_subnet(dist_length, slot)
            dists.append(dist)
            asys.plan.distribution.append(dist)
            router = self.new_router(
                asys.asn,
                RouterRole.DISTRIBUTION,
                config.edge_limit_rate,
                config.edge_limit_burst,
            )
            asys.routers.append(router)
            iface = self.iface_on_link(router, self.link_prefix(asys.asn), 0)
            self.out.dist_routers[dist.base] = ((router, iface),)
            alloc_length = min(60, dist_length + 8)
            n_alloc = rng.randint(*config.allocs_per_dist)
            span = 1 << (alloc_length - dist_length)
            alloc_slots = _allocate_slots(rng, span, min(n_alloc, span))
            for alloc_slot in alloc_slots:
                alloc = dist.nth_subnet(alloc_length, alloc_slot)
                asys.plan.allocations.append(alloc)
                agg = self.new_router(
                    asys.asn,
                    RouterRole.AGGREGATION,
                    config.edge_limit_rate,
                    config.edge_limit_burst,
                )
                asys.routers.append(agg)
                agg_iface = self.iface_on_link(agg, self.link_prefix(asys.asn), 0)
                self.out.agg_routers[alloc.base] = ((agg, agg_iface),)
                n_leaves = rng.randint(*config.leaves_per_alloc)
                leaf_span = 1 << (64 - alloc_length)
                leaf_slots = _allocate_slots(rng, leaf_span, min(n_leaves, leaf_span))
                for leaf_slot in leaf_slots:
                    leaf = alloc.nth_subnet(64, leaf_slot)
                    gateway = self.new_router(
                        asys.asn,
                        RouterRole.GATEWAY,
                        config.edge_limit_rate,
                        config.edge_limit_burst,
                    )
                    asys.routers.append(gateway)
                    self.populate_leaf(
                        asys,
                        leaf,
                        gateway,
                        config.edge_www_fraction,
                        rng.randint(*config.hosts_per_leaf),
                    )
        self.out.dist_index[asys.asn] = sorted(dists)
        self.out.alloc_index[asys.asn] = sorted(asys.plan.allocations)

    def build_cpe_isp(self, index: int) -> None:
        """One large residential ISP: regional hierarchy over many /56
        customer delegations, CPE gateways with single-vendor EUI-64."""
        config, rng = self.config, self.rng
        asys = self.make_as("CPE-ISP-%d" % index, 3, AddressPlan.EUI64)
        asys.cpe_oui = CPE_OUIS[index % len(CPE_OUIS)]
        self.set_policy(asys)
        asys.policy.blocked_protocols = set()  # big ISPs don't filter
        self.attach_border(asys, count=2)
        providers = rng.sample(self.out.tier2_asns, k=2)
        asys.providers.extend(providers)
        self.out.uplinks[asys.asn] = providers
        self.out.cpe_asns.append(asys.asn)

        prefix = self._infra_prefix[asys.asn]
        n_regions = 8
        region_length = prefix.length + 8  # /40 regions
        customers = config.cpe_customers_per_isp
        per_region = max(1, customers // n_regions)
        region_slots = rng.sample(range(1, 200), k=n_regions)
        for region_slot in region_slots:
            region = prefix.nth_subnet(region_length, region_slot)
            asys.plan.distribution.append(region)
            dist = self.new_router(
                asys.asn,
                RouterRole.DISTRIBUTION,
                config.core_limit_rate,
                config.core_limit_burst,
            )
            asys.routers.append(dist)
            dist_iface = self.iface_on_link(dist, self.link_prefix(asys.asn), 0)
            self.out.dist_routers[region.base] = ((dist, dist_iface),)
            # One BNG aggregates each /44 pool of /56 delegations.
            pool_length = region_length + 4
            n_pools = max(1, min(8, per_region // 64))
            pool_slots = rng.sample(range(1 << 4), k=n_pools)
            per_pool = max(1, per_region // n_pools)
            for pool_slot in pool_slots:
                pool = region.nth_subnet(pool_length, pool_slot)
                asys.plan.allocations.append(pool)
                bng = self.new_router(
                    asys.asn,
                    RouterRole.AGGREGATION,
                    config.core_limit_rate,
                    config.core_limit_burst,
                )
                asys.routers.append(bng)
                bng_iface = self.iface_on_link(bng, self.link_prefix(asys.asn), 0)
                self.out.agg_routers[pool.base] = ((bng, bng_iface),)
                span = 1 << (56 - pool_length)
                # Residential delegations are assigned sequentially from a
                # small offset: address locality is what makes kIP
                # aggregation and 6Gen generation effective on client space.
                offset = rng.randrange(0, 8)
                count = min(per_pool, span - offset)
                slots = range(offset, offset + count)
                for slot in slots:
                    delegation = pool.nth_subnet(56, slot)
                    leaf = delegation.nth_subnet(64, 0)
                    cpe = self.new_router(
                        asys.asn,
                        RouterRole.CPE,
                        config.edge_limit_rate,
                        config.edge_limit_burst,
                    )
                    asys.routers.append(cpe)
                    www = config.cpe_www_fractions[
                        min(index, len(config.cpe_www_fractions) - 1)
                    ]
                    self.populate_leaf(
                        asys,
                        leaf,
                        cpe,
                        www,
                        rng.randint(*config.hosts_per_leaf),
                        host_oui=asys.cpe_oui,
                    )
        self.out.dist_index[asys.asn] = sorted(asys.plan.distribution)
        self.out.alloc_index[asys.asn] = sorted(asys.plan.allocations)

    def build_6to4_relay(self) -> None:
        asys = self.make_as("6TO4-RELAY", 3, AddressPlan.LOWBYTE)
        asys.link_mtu = 1280  # protocol-41 encapsulation at the floor
        relay_prefix = Prefix.parse("2002::/16")
        asys.prefixes.append(relay_prefix)
        self.out.truth.bgp.insert(relay_prefix, asys.asn)
        self.out.truth.registry.insert(relay_prefix, asys.asn)
        self.attach_border(asys, count=1)
        providers = [self.out.tier2_asns[0]]
        asys.providers.extend(providers)
        self.out.uplinks[asys.asn] = providers
        self.out.edge_asns.append(asys.asn)
        self.out.dist_index[asys.asn] = []
        self.out.alloc_index[asys.asn] = []

    def build_vantages(self) -> None:
        config = self.config
        for vantage_config in config.vantages:
            asys = self.make_as("VP-" + vantage_config.name, 3, AddressPlan.LOWBYTE)
            self.attach_border(asys, count=1)
            providers = self.rng.sample(self.out.tier2_asns, k=1)
            asys.providers.extend(providers)
            self.out.uplinks[asys.asn] = providers
            prefix = self._infra_prefix[asys.asn]
            vantage_addr = prefix.base | 0x100
            vantage = Vantage(vantage_config.name, asys.asn, vantage_addr)
            for hop_index in range(1, vantage_config.premise_hops + 1):
                if hop_index in vantage_config.aggressive_hops:
                    rate, burst = vantage_config.aggressive_limit
                else:
                    rate, burst = vantage_config.premise_limit
                router = Router(
                    self._next_router_id,
                    asys.asn,
                    RouterRole.CORE,
                    TokenBucket(rate, burst),
                )
                self._next_router_id += 1
                self.out.truth.register_router(router)
                asys.routers.append(router)
                link = self.link_prefix(asys.asn)
                iface = self.give_interface(router, link.base | 1)
                vantage.premise_chain.append((router, iface))
            self.vantage_done(vantage)
        # vantage ASes never filter their own probes
        for vantage in self.out.vantages.values():
            self.out.truth.ases[vantage.asn].policy.blocked_protocols = set()

    def vantage_done(self, vantage: Vantage) -> None:
        self.out.vantages[vantage.name] = vantage
        self.out.dist_index[vantage.asn] = []
        self.out.alloc_index[vantage.asn] = []

    def build(self) -> BuiltInternet:
        self.build_backbone()
        for asn in self.out.tier1_asns + self.out.tier2_asns:
            self.out.dist_index[asn] = []
            self.out.alloc_index[asn] = []
        self.build_edge_ases()
        for index in range(self.config.n_cpe_isps):
            self.build_cpe_isp(index)
        if self.config.include_6to4:
            self.build_6to4_relay()
        self.build_vantages()
        return self.out


def build_internet(config: Optional[InternetConfig] = None) -> BuiltInternet:
    """Generate a ground-truth internet from ``config`` (seeded, repeatable)."""
    return _Builder(config or InternetConfig()).build()


#: A token-bucket parameterization that can never run dry at campaign
#: scales — used by :func:`decoupled_dynamics` to make rate limiting
#: non-binding without changing the topology machinery.
_UNLIMITED = (1e15, 1e15)


def decoupled_dynamics(config: Optional[InternetConfig] = None) -> InternetConfig:
    """A copy of ``config`` whose dynamic couplings are non-binding.

    The returned world drops nothing stochastically (no response loss,
    no probabilistic gateways or silent routers, hosts always answer)
    and its ICMPv6 rate limiters are too generous to ever deny a token.
    Every response is then a pure function of the probe's bytes and send
    time, independent of what other probes the internet saw first — the
    property ``prober.parallel`` builds its determinism contract on:
    campaigns over a decoupled world decompose exactly into permutation
    shards.  (It is still a *different* world from the same seed with
    default knobs: the generator consumes its RNG differently.)
    """
    base = config or InternetConfig()
    vantages = tuple(
        replace(
            vantage,
            premise_limit=_UNLIMITED,
            aggressive_hops=(),
            aggressive_limit=_UNLIMITED,
        )
        for vantage in base.vantages
    )
    return replace(
        base,
        response_loss=0.0,
        gateway_unreach_probability=0.0,
        host_error_probability=1.0,
        silent_router_fraction=0.0,
        icmp_only_router_fraction=0.0,
        core_limit_rate=_UNLIMITED,
        core_limit_burst=_UNLIMITED,
        edge_limit_rate=_UNLIMITED,
        edge_limit_burst=_UNLIMITED,
        vantages=vantages,
    )
