"""Per-flow load balancing (ECMP) hashing.

IPv6 routers balance flows across equal-cost paths by hashing header
fields.  For TCP and UDP the five-tuple is used; for ICMPv6, deployed
hardware hashes the *checksum* field (Almeida et al. 2017), which is why
Yarrp6 burns two payload bytes on checksum "fudge": keeping the checksum
constant per target keeps every probe for a target on one path
(Section 4.1 of the paper).
"""

from __future__ import annotations

from ..packet import ipv6, tcp, udp
from ..packet.ipv6 import IPv6Header

#: Number of path variants the simulator distinguishes; ECMP groups pick
#: ``variant % len(options)``.
VARIANTS = 4

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def flow_key(header: IPv6Header, payload: bytes) -> bytes:
    """The bytes a load balancer hashes for this packet."""
    base = (
        header.src.to_bytes(16, "big")
        + header.dst.to_bytes(16, "big")
        + bytes([header.next_header])
        + header.flow_label.to_bytes(3, "big")
    )
    if header.next_header in (ipv6.PROTO_TCP, ipv6.PROTO_UDP) and len(payload) >= 4:
        # Source and destination ports.
        return base + payload[:4]
    if header.next_header == ipv6.PROTO_ICMPV6 and len(payload) >= 4:
        # Type, code and — critically — the checksum.
        return base + payload[:4]
    return base


def flow_hash(header: IPv6Header, payload: bytes) -> int:
    """64-bit flow hash of a packet."""
    return _fnv(flow_key(header, payload))


def flow_variant(header: IPv6Header, payload: bytes) -> int:
    """Path variant in [0, VARIANTS) selected by this packet's flow."""
    return flow_hash(header, payload) % VARIANTS
