"""ICMPv6 (RFC 4443) message construction and parsing.

Covers the message types active topology discovery lives on:

* Echo Request / Echo Reply — the ICMPv6 probe transport;
* Time Exceeded — the hop announcement elicited by TTL expiry, which must
  quote as much of the invoking packet as fits (RFC 4443 Section 3.3:
  "as much of invoking packet as possible without the ICMPv6 packet
  exceeding the minimum IPv6 MTU") — Yarrp6's statelessness depends on
  recovering its payload from these quotations;
* Destination Unreachable with its codes (no route, administratively
  prohibited, address unreachable, port unreachable, reject route), whose
  distribution the paper reports in Table 4.
"""

from __future__ import annotations

import enum
import struct
from typing import Optional

from .checksum import transport_checksum, verify_transport_checksum
from .ipv6 import PacketError

# ICMPv6 type numbers (RFC 4443).
TYPE_DEST_UNREACH = 1
TYPE_PACKET_TOO_BIG = 2
TYPE_TIME_EXCEEDED = 3
TYPE_PARAM_PROBLEM = 4
TYPE_ECHO_REQUEST = 128
TYPE_ECHO_REPLY = 129

# Time Exceeded codes.
CODE_HOP_LIMIT_EXCEEDED = 0

#: Minimum IPv6 MTU; an ICMPv6 error must not exceed it (RFC 4443 §2.4(c)).
MINIMUM_MTU = 1280

#: Bytes available for the invoking-packet quotation inside an error:
#: minimum MTU minus the IPv6 header (40) and ICMPv6 header (8).
MAX_QUOTATION = MINIMUM_MTU - 40 - 8


class UnreachableCode(enum.IntEnum):
    """Destination Unreachable codes (RFC 4443 Section 3.1)."""

    NO_ROUTE = 0
    ADMIN_PROHIBITED = 1
    BEYOND_SCOPE = 2
    ADDRESS_UNREACHABLE = 3
    PORT_UNREACHABLE = 4
    FAILED_POLICY = 5
    REJECT_ROUTE = 6

    def label(self) -> str:
        """Human-readable label matching the paper's Table 4 rows."""
        return {
            UnreachableCode.NO_ROUTE: "no route to destination",
            UnreachableCode.ADMIN_PROHIBITED: "administratively prohibited",
            UnreachableCode.BEYOND_SCOPE: "beyond scope of source",
            UnreachableCode.ADDRESS_UNREACHABLE: "address unreachable",
            UnreachableCode.PORT_UNREACHABLE: "port unreachable",
            UnreachableCode.FAILED_POLICY: "source address failed policy",
            UnreachableCode.REJECT_ROUTE: "reject route to destination",
        }[self]


class ICMPv6Message:
    """A parsed ICMPv6 message: type, code, 4-byte body word, and body.

    For echo messages the body word holds (identifier, sequence); for
    errors it is unused (zero) and ``body`` is the invoking-packet
    quotation.
    """

    __slots__ = ("msg_type", "code", "word", "body", "checksum")

    def __init__(
        self,
        msg_type: int,
        code: int,
        word: int = 0,
        body: bytes = b"",
        checksum: int = 0,
    ) -> None:
        self.msg_type = msg_type & 0xFF
        self.code = code & 0xFF
        self.word = word & 0xFFFFFFFF
        self.body = body
        self.checksum = checksum & 0xFFFF

    # -- echo accessors -------------------------------------------------
    @property
    def identifier(self) -> int:
        """Echo identifier (high half of the body word)."""
        return self.word >> 16

    @property
    def sequence(self) -> int:
        """Echo sequence number (low half of the body word)."""
        return self.word & 0xFFFF

    @property
    def quotation(self) -> bytes:
        """The invoking-packet quotation of an error message."""
        return self.body

    @property
    def is_error(self) -> bool:
        """ICMPv6 errors have type < 128 (RFC 4443 Section 2.1)."""
        return self.msg_type < 128

    @property
    def is_time_exceeded(self) -> bool:
        return self.msg_type == TYPE_TIME_EXCEEDED

    @property
    def is_echo_reply(self) -> bool:
        return self.msg_type == TYPE_ECHO_REPLY

    def pack(self, src: int = 0, dst: int = 0, compute_checksum: bool = True) -> bytes:
        """Serialize; when ``compute_checksum`` the pseudo-header checksum
        for (src, dst) is filled in, else the stored checksum is used."""
        segment = (
            struct.pack("!BBH", self.msg_type, self.code, 0)
            + self.word.to_bytes(4, "big")
            + self.body
        )
        if compute_checksum:
            value = transport_checksum(src, dst, 58, segment)
        else:
            value = self.checksum
        return segment[:2] + value.to_bytes(2, "big") + segment[4:]

    @classmethod
    def unpack(cls, data: bytes) -> "ICMPv6Message":
        """Parse an ICMPv6 segment (at least the 8-byte header)."""
        if len(data) < 8:
            raise PacketError("short ICMPv6 segment: %d bytes" % len(data))
        msg_type, code, checksum = struct.unpack("!BBH", data[:4])
        word = int.from_bytes(data[4:8], "big")
        return cls(msg_type, code, word, data[8:], checksum)

    def verify(self, src: int, dst: int) -> bool:
        """Validate the embedded checksum against (src, dst)."""
        packed = self.pack(compute_checksum=False)
        return verify_transport_checksum(src, dst, 58, packed)

    def __repr__(self) -> str:
        return "ICMPv6Message(type=%d, code=%d, body=%dB)" % (
            self.msg_type,
            self.code,
            len(self.body),
        )


def echo_request(identifier: int, sequence: int, payload: bytes = b"") -> ICMPv6Message:
    """Build an Echo Request (the paper's preferred probe type)."""
    word = ((identifier & 0xFFFF) << 16) | (sequence & 0xFFFF)
    return ICMPv6Message(TYPE_ECHO_REQUEST, 0, word, payload)


def echo_reply(identifier: int, sequence: int, payload: bytes = b"") -> ICMPv6Message:
    """Build an Echo Reply mirroring a request."""
    word = ((identifier & 0xFFFF) << 16) | (sequence & 0xFFFF)
    return ICMPv6Message(TYPE_ECHO_REPLY, 0, word, payload)


def time_exceeded(invoking_packet: bytes) -> ICMPv6Message:
    """Build a Time Exceeded (hop limit) error quoting the invoking packet.

    The quotation is truncated to fit the minimum-MTU bound; with IPv6
    this is generous enough to return entire probe packets, which is what
    lets Yarrp6 move its state into the payload (Section 4.1).
    """
    return ICMPv6Message(
        TYPE_TIME_EXCEEDED,
        CODE_HOP_LIMIT_EXCEEDED,
        0,
        invoking_packet[:MAX_QUOTATION],
    )


def destination_unreachable(
    code: UnreachableCode, invoking_packet: bytes
) -> ICMPv6Message:
    """Build a Destination Unreachable error quoting the invoking packet."""
    return ICMPv6Message(
        TYPE_DEST_UNREACH, int(code), 0, invoking_packet[:MAX_QUOTATION]
    )


def classify_response(message: ICMPv6Message) -> str:
    """Table 4 style label for a response message."""
    if message.msg_type == TYPE_TIME_EXCEEDED:
        return "time exceeded"
    if message.msg_type == TYPE_ECHO_REPLY:
        return "echo reply"
    if message.msg_type == TYPE_DEST_UNREACH:
        try:
            return UnreachableCode(message.code).label()
        except ValueError:
            return "destination unreachable (code %d)" % message.code
    return "icmpv6 type %d" % message.msg_type


def unreachable_code(message: ICMPv6Message) -> Optional[UnreachableCode]:
    """The UnreachableCode of a Destination Unreachable, else None."""
    if message.msg_type != TYPE_DEST_UNREACH:
        return None
    try:
        return UnreachableCode(message.code)
    except ValueError:
        return None
