"""IPv6 fixed header (RFC 8200) serialization and parsing."""

from __future__ import annotations

import struct
from typing import Tuple

from ..addrs import address

#: Header length in bytes.
HEADER_LENGTH = 40

#: IP version carried in the first nybble.
VERSION = 6

# Next-header (protocol) numbers used by this library.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMPV6 = 58

#: Default hop limit for locally originated packets.
DEFAULT_HOP_LIMIT = 64


class PacketError(ValueError):
    """Raised when bytes cannot be parsed as the expected packet."""


class IPv6Header:
    """The 40-byte IPv6 fixed header.

    Fields follow RFC 8200: traffic class and flow label are carried but
    unused by the prober (kept constant per target so per-flow load
    balancers hash probes onto one path, after Paris traceroute).
    """

    __slots__ = (
        "src",
        "dst",
        "payload_length",
        "next_header",
        "hop_limit",
        "traffic_class",
        "flow_label",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        payload_length: int,
        next_header: int,
        hop_limit: int = DEFAULT_HOP_LIMIT,
        traffic_class: int = 0,
        flow_label: int = 0,
    ) -> None:
        if not 0 <= payload_length <= 0xFFFF:
            raise PacketError("payload length out of range: %r" % payload_length)
        if not 0 <= hop_limit <= 0xFF:
            raise PacketError("hop limit out of range: %r" % hop_limit)
        if not 0 <= traffic_class <= 0xFF:
            raise PacketError("traffic class out of range: %r" % traffic_class)
        if not 0 <= flow_label <= 0xFFFFF:
            raise PacketError("flow label out of range: %r" % flow_label)
        self.src = src
        self.dst = dst
        self.payload_length = payload_length
        self.next_header = next_header & 0xFF
        self.hop_limit = hop_limit
        self.traffic_class = traffic_class
        self.flow_label = flow_label

    def pack(self) -> bytes:
        """Serialize to 40 network-order bytes."""
        first_word = (
            (VERSION << 28)
            | (self.traffic_class << 20)
            | self.flow_label
        )
        return (
            struct.pack(
                "!IHBB",
                first_word,
                self.payload_length,
                self.next_header,
                self.hop_limit,
            )
            + address.to_bytes(self.src)
            + address.to_bytes(self.dst)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IPv6Header":
        """Parse the first 40 bytes of ``data`` as an IPv6 header."""
        if len(data) < HEADER_LENGTH:
            raise PacketError(
                "short IPv6 header: %d < %d bytes" % (len(data), HEADER_LENGTH)
            )
        first_word, payload_length, next_header, hop_limit = struct.unpack(
            "!IHBB", data[:8]
        )
        version = first_word >> 28
        if version != VERSION:
            raise PacketError("not IPv6 (version %d)" % version)
        return cls(
            src=address.from_bytes(data[8:24]),
            dst=address.from_bytes(data[24:40]),
            payload_length=payload_length,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
        )

    def copy(self, **overrides: int) -> "IPv6Header":
        """A copy with the given fields replaced."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(overrides)
        return IPv6Header(**fields)

    def __repr__(self) -> str:
        return "IPv6Header(%s -> %s, nh=%d, hlim=%d, plen=%d)" % (
            address.format_address(self.src),
            address.format_address(self.dst),
            self.next_header,
            self.hop_limit,
            self.payload_length,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv6Header) and all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )


def build_packet(header: IPv6Header, payload: bytes) -> bytes:
    """Serialize header + payload, fixing up the payload length field."""
    if header.payload_length != len(payload):
        header = header.copy(payload_length=len(payload))
    return header.pack() + payload


def split_packet(data: bytes) -> Tuple[IPv6Header, bytes]:
    """Parse a packet into (header, payload bytes).

    The payload is truncated/padded view of the remaining bytes; a payload
    shorter than the header's declared length is tolerated (ICMPv6 error
    quotations are routinely truncated).
    """
    header = IPv6Header.unpack(data)
    return header, data[HEADER_LENGTH:]
