"""IPv6 Fragment extension header (RFC 8200 Section 4.5).

Alias resolution à la speedtrap (Luckie et al., IMC 2013) turns on the
32-bit fragment Identification counter IPv6 nodes stamp into fragment
headers: interfaces of the same router draw from one counter, so
interleaved samples from aliases form a single monotonic sequence.

The relevant trick is the *atomic fragment* (RFC 6946): a complete
packet nonetheless carrying a Fragment header (offset 0, M=0), which a
node emits after receiving a Packet Too Big below the 1280-byte minimum
MTU.  Speedtrap elicits those to read the counter without real
fragmentation; this module provides the header plumbing.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from .ipv6 import PacketError

#: Next-header value of the Fragment extension header.
PROTO_FRAGMENT = 44

#: Extension header length in bytes.
HEADER_LENGTH = 8


class FragmentHeader:
    """The 8-byte Fragment extension header."""

    __slots__ = ("next_header", "offset", "more", "identification")

    def __init__(self, next_header: int, identification: int, offset: int = 0, more: bool = False) -> None:
        if not 0 <= offset < (1 << 13):
            raise PacketError("fragment offset out of range: %r" % offset)
        self.next_header = next_header & 0xFF
        self.offset = offset
        self.more = bool(more)
        self.identification = identification & 0xFFFFFFFF

    @property
    def atomic(self) -> bool:
        """True for an RFC 6946 atomic fragment (whole packet, one header)."""
        return self.offset == 0 and not self.more

    def pack(self) -> bytes:
        offset_flags = (self.offset << 3) | (1 if self.more else 0)
        return struct.pack(
            "!BBHI", self.next_header, 0, offset_flags, self.identification
        )

    @classmethod
    def unpack(cls, data: bytes) -> "FragmentHeader":
        if len(data) < HEADER_LENGTH:
            raise PacketError("short fragment header: %d bytes" % len(data))
        next_header, _, offset_flags, identification = struct.unpack(
            "!BBHI", data[:HEADER_LENGTH]
        )
        return cls(
            next_header,
            identification,
            offset=offset_flags >> 3,
            more=bool(offset_flags & 1),
        )

    def __repr__(self) -> str:
        return "FragmentHeader(id=%#010x%s)" % (
            self.identification,
            ", atomic" if self.atomic else ", offset=%d more=%s" % (self.offset, self.more),
        )


def wrap_atomic(inner_next_header: int, identification: int, payload: bytes) -> bytes:
    """Prefix ``payload`` with an atomic Fragment header."""
    return FragmentHeader(inner_next_header, identification).pack() + payload


def unwrap(payload: bytes) -> Tuple[FragmentHeader, bytes]:
    """Split a Fragment extension header from the bytes following it."""
    header = FragmentHeader.unpack(payload)
    return header, payload[HEADER_LENGTH:]


def extract_identification(next_header: int, payload: bytes) -> Optional[Tuple[int, int, bytes]]:
    """If the payload starts with a Fragment header, return
    (identification, inner next-header, inner bytes); else None."""
    if next_header != PROTO_FRAGMENT:
        return None
    try:
        header, inner = unwrap(payload)
    except PacketError:
        return None
    return header.identification, header.next_header, inner
