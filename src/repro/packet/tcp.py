"""TCP header (RFC 793) over IPv6 — the subset probing needs.

Yarrp6's TCP mode sends SYN (or ACK) segments toward port 80; the only
responses that matter to topology discovery are ICMPv6 errors quoting the
segment, plus RST/SYN-ACK from reachable end hosts.  Options are not
modeled; the data offset is fixed at 5 words.
"""

from __future__ import annotations

import struct
from typing import Tuple

from .checksum import transport_checksum, verify_transport_checksum
from .ipv6 import PacketError

HEADER_LENGTH = 20

# Flag bits.
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


class TCPHeader:
    """A 20-byte option-less TCP header."""

    __slots__ = (
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "checksum",
        "urgent",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = FLAG_SYN,
        window: int = 65535,
        checksum: int = 0,
        urgent: int = 0,
    ) -> None:
        for name, value in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= value <= 0xFFFF:
                raise PacketError("%s out of range: %r" % (name, value))
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags & 0x3F
        self.window = window & 0xFFFF
        self.checksum = checksum & 0xFFFF
        self.urgent = urgent & 0xFFFF

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    def pack(self) -> bytes:
        offset_flags = (5 << 12) | self.flags
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < HEADER_LENGTH:
            raise PacketError("short TCP header: %d bytes" % len(data))
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIHHHH", data[:HEADER_LENGTH])
        return cls(
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags & 0x3F,
            window,
            checksum,
            urgent,
        )

    def __repr__(self) -> str:
        names = []
        for bit, name in ((FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_RST, "RST")):
            if self.flags & bit:
                names.append(name)
        return "TCPHeader(%d -> %d, %s)" % (
            self.src_port,
            self.dst_port,
            "|".join(names) or "none",
        )


def build_segment(src: int, dst: int, header: TCPHeader, payload: bytes = b"") -> bytes:
    """A complete TCP segment with the IPv6 pseudo-header checksum set."""
    header.checksum = 0
    segment = header.pack() + payload
    value = transport_checksum(src, dst, 6, segment)
    return segment[:16] + value.to_bytes(2, "big") + segment[18:]


def split_segment(data: bytes) -> Tuple[TCPHeader, bytes]:
    """Parse a TCP segment into (header, payload bytes)."""
    header = TCPHeader.unpack(data)
    return header, data[HEADER_LENGTH:]


def verify_segment(src: int, dst: int, segment: bytes) -> bool:
    """Validate a received TCP segment's checksum."""
    return verify_transport_checksum(src, dst, 6, segment)
