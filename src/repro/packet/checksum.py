"""Internet checksum (RFC 1071) and the IPv6 pseudo-header.

Every upper-layer protocol carried over IPv6 — TCP, UDP and ICMPv6 —
computes its checksum over a pseudo-header containing the source and
destination addresses, the upper-layer packet length and the next-header
value (RFC 8200 Section 8.1), followed by the transport header and
payload.  Yarrp6 additionally exploits the algebra of the one's-complement
sum: a 16-bit "fudge" field in its payload is chosen so that the transport
checksum stays constant across probes whose payload varies (Section 4.1,
Figure 4 of the paper).
"""

from __future__ import annotations

from ..addrs import address


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """One's-complement 16-bit sum over ``data`` (odd tail zero-padded)."""
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words.
    for index in range(0, length - 1, 2):
        total += (data[index] << 8) | data[index + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """RFC 1071 Internet checksum: complement of the one's-complement sum."""
    return ~ones_complement_sum(data, initial) & 0xFFFF


def pseudo_header(src: int, dst: int, upper_length: int, next_header: int) -> bytes:
    """IPv6 pseudo-header bytes for upper-layer checksumming (RFC 8200)."""
    return (
        address.to_bytes(src)
        + address.to_bytes(dst)
        + upper_length.to_bytes(4, "big")
        + b"\x00\x00\x00"
        + bytes([next_header & 0xFF])
    )


def transport_checksum(
    src: int, dst: int, next_header: int, segment: bytes
) -> int:
    """Checksum of a transport segment including the IPv6 pseudo-header.

    ``segment`` must have its own checksum field zeroed.
    """
    header = pseudo_header(src, dst, len(segment), next_header)
    return internet_checksum(segment, ones_complement_sum(header))


def verify_transport_checksum(
    src: int, dst: int, next_header: int, segment: bytes
) -> bool:
    """True when a received segment's embedded checksum validates.

    Computing the checksum over a segment that *includes* a correct
    checksum field yields zero.
    """
    header = pseudo_header(src, dst, len(segment), next_header)
    return internet_checksum(segment, ones_complement_sum(header)) == 0


def fold_sum(total: int) -> int:
    """Fold a raw (possibly multi-carry) one's-complement accumulator
    down to 16 bits.

    The batched encoder accumulates plain integer word sums — cheaper
    than folding per word — and folds once at the end; the result is
    identical to :func:`ones_complement_sum` over the same bytes.
    """
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def checksum_patch(checksum: int, old_word: int, new_word: int) -> int:
    """Incrementally update a checksum after one 16-bit word changed.

    RFC 1624 equation 3: given a segment's current Internet checksum and
    a word rewritten from ``old_word`` to ``new_word``, return the new
    checksum without re-summing the segment — the in-place field-patching
    primitive the preallocated probe buffers use.
    """
    total = (~checksum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
    return ~fold_sum(total) & 0xFFFF


def address_sum(value: int) -> int:
    """Unfolded 16-bit word sum of a 128-bit IPv6 address.

    One shift-and-mask pass over the integer itself, avoiding the
    ``to_bytes`` round trip of :func:`address_checksum`; feed the result
    to :func:`fold_sum` (and complement) to recover the same checksum.
    """
    total = 0
    for shift in range(0, 128, 16):
        total += (value >> shift) & 0xFFFF
    return total


def checksum_fudge(segment_without_fudge_sum: int, desired: int) -> int:
    """Fudge value making a segment's one's-complement sum hit ``desired``.

    Given the one's-complement sum of everything else covered by the
    checksum (pseudo-header + segment with the fudge field zeroed), return
    the 16-bit value to place in the fudge field so the total sum equals
    ``desired`` — and therefore the final checksum equals
    ``~desired & 0xffff`` regardless of the varying payload contents.
    """
    current = segment_without_fudge_sum & 0xFFFF
    desired &= 0xFFFF
    # One's complement subtraction: desired = current (+) fudge.
    fudge = desired - current
    if fudge <= 0:
        # In one's-complement arithmetic 0xFFFF acts as zero; adjust into
        # the representable range.
        fudge += 0xFFFF
    return fudge & 0xFFFF


def address_checksum(value: int) -> int:
    """16-bit Internet checksum over an IPv6 address.

    Yarrp6 places this in the TCP/UDP source port or ICMPv6 identifier to
    detect in-path rewrites of the probe's destination address
    (Section 4.1).  Values 0 is avoided since port 0 is pathological.
    """
    checksum = internet_checksum(address.to_bytes(value))
    return checksum if checksum != 0 else 0xFFFF
