"""Byte-level packet crafting and parsing: IPv6, ICMPv6, TCP, UDP."""

from .checksum import (
    address_checksum,
    checksum_fudge,
    internet_checksum,
    ones_complement_sum,
    pseudo_header,
    transport_checksum,
    verify_transport_checksum,
)
from .fragment import (
    FragmentHeader,
    PROTO_FRAGMENT,
    extract_identification,
    unwrap,
    wrap_atomic,
)
from .icmpv6 import (
    ICMPv6Message,
    UnreachableCode,
    classify_response,
    destination_unreachable,
    echo_reply,
    echo_request,
    time_exceeded,
    unreachable_code,
)
from .ipv6 import (
    DEFAULT_HOP_LIMIT,
    PROTO_ICMPV6,
    PROTO_TCP,
    PROTO_UDP,
    IPv6Header,
    PacketError,
    build_packet,
    split_packet,
)
from .tcp import TCPHeader, build_segment, split_segment, verify_segment
from .udp import UDPHeader, build_datagram, split_datagram, verify_datagram

__all__ = [
    "DEFAULT_HOP_LIMIT",
    "FragmentHeader",
    "ICMPv6Message",
    "IPv6Header",
    "PROTO_FRAGMENT",
    "PROTO_ICMPV6",
    "PROTO_TCP",
    "PROTO_UDP",
    "PacketError",
    "TCPHeader",
    "UDPHeader",
    "UnreachableCode",
    "address_checksum",
    "build_datagram",
    "build_packet",
    "build_segment",
    "checksum_fudge",
    "classify_response",
    "destination_unreachable",
    "echo_reply",
    "echo_request",
    "extract_identification",
    "internet_checksum",
    "ones_complement_sum",
    "pseudo_header",
    "split_datagram",
    "split_packet",
    "split_segment",
    "time_exceeded",
    "transport_checksum",
    "unreachable_code",
    "unwrap",
    "verify_datagram",
    "verify_segment",
    "verify_transport_checksum",
    "wrap_atomic",
]
