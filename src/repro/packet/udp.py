"""UDP header (RFC 768) over IPv6."""

from __future__ import annotations

import struct
from typing import Tuple

from .checksum import transport_checksum, verify_transport_checksum
from .ipv6 import PacketError

HEADER_LENGTH = 8


class UDPHeader:
    """An 8-byte UDP header plus helpers for checksummed datagrams."""

    __slots__ = ("src_port", "dst_port", "length", "checksum")

    def __init__(self, src_port: int, dst_port: int, length: int = 0, checksum: int = 0) -> None:
        for name, value in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= value <= 0xFFFF:
                raise PacketError("%s out of range: %r" % (name, value))
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length
        self.checksum = checksum

    def pack(self) -> bytes:
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < HEADER_LENGTH:
            raise PacketError("short UDP header: %d bytes" % len(data))
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port, dst_port, length, checksum)

    def __repr__(self) -> str:
        return "UDPHeader(%d -> %d, len=%d)" % (self.src_port, self.dst_port, self.length)


def build_datagram(
    src: int, dst: int, src_port: int, dst_port: int, payload: bytes
) -> bytes:
    """A complete UDP segment with the IPv6 pseudo-header checksum set."""
    length = HEADER_LENGTH + len(payload)
    header = UDPHeader(src_port, dst_port, length, 0)
    segment = header.pack() + payload
    value = transport_checksum(src, dst, 17, segment)
    if value == 0:
        value = 0xFFFF  # RFC 2460: zero transmitted as all-ones for UDP.
    return segment[:6] + value.to_bytes(2, "big") + segment[8:]


def split_datagram(data: bytes) -> Tuple[UDPHeader, bytes]:
    """Parse a UDP segment into (header, payload bytes)."""
    header = UDPHeader.unpack(data)
    return header, data[HEADER_LENGTH:]


def verify_datagram(src: int, dst: int, segment: bytes) -> bool:
    """Validate a received UDP segment's checksum."""
    return verify_transport_checksum(src, dst, 17, segment)
