"""Synthetic seed sources mirroring the paper's hitlists (Section 3.2)."""

from .base import SeedList, join
from .sources import (
    build_all_seeds,
    caida_seed,
    cdn_observations,
    cdn_seed,
    dnsdb_seed,
    fdns_seed,
    fiebig_seed,
    random_seed,
    sixgen_seed,
    tum_seed,
    tum_subsets,
)

__all__ = [
    "SeedList",
    "build_all_seeds",
    "caida_seed",
    "cdn_observations",
    "cdn_seed",
    "dnsdb_seed",
    "fdns_seed",
    "fiebig_seed",
    "join",
    "random_seed",
    "sixgen_seed",
    "tum_seed",
    "tum_subsets",
]
