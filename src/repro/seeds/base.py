"""Seed list container and the registry of synthetic seed sources.

The paper amasses seven seed sources (Table 1); each is proprietary,
rate-limited, or a moving target, so the reproduction *synthesizes* each
source by sampling the ground-truth internet with the biases the paper
documents for it: size, IID-class mix, clustering (DPL), BGP/ASN
coverage, and what kind of infrastructure it reveals.  DESIGN.md records
the per-source substitution rationale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from ..addrs import classify_set, IIDClass
from ..addrs.prefix import Prefix
from ..hitlist.transform import SeedItem


class SeedList:
    """A named seed list: a mix of addresses and prefixes plus provenance."""

    __slots__ = ("name", "method", "items")

    def __init__(self, name: str, method: str, items: Iterable[SeedItem]):
        self.name = name
        #: Short description of the collection technique (Table 1 column).
        self.method = method
        self.items: List[SeedItem] = list(items)

    @property
    def addresses(self) -> List[int]:
        """The address-valued items (prefix seeds excluded)."""
        return [item for item in self.items if isinstance(item, int)]

    @property
    def prefixes(self) -> List[Prefix]:
        """The prefix-valued items."""
        return [item for item in self.items if isinstance(item, Prefix)]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __repr__(self) -> str:
        return "SeedList(%s, %d items)" % (self.name, len(self.items))

    def iid_profile(self) -> Dict[IIDClass, int]:
        """Table 1's IID classification of the list's addresses."""
        return classify_set(self.addresses)


def join(name: str, lists: Sequence[SeedList]) -> SeedList:
    """Union several seed lists (the paper's Combined list)."""
    seen = set()
    items: List[SeedItem] = []
    for seed_list in lists:
        for item in seed_list.items:
            key = item if isinstance(item, int) else ("p", item.base, item.length)
            if key not in seen:
                seen.add(key)
                items.append(item)
    return SeedList(name, "Join Sets", items)
