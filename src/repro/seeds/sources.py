"""The individual synthetic seed sources (Section 3.2).

Each function samples the ground-truth internet the way its real-world
counterpart observes the real one.  All randomness is drawn from a seeded
RNG derived from the internet's seed, so a given world yields the same
hitlists every time.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..addrs.iid import IIDClass, classify_address
from ..addrs.prefix import Prefix
from ..hitlist.kip import KIPParams, kip_aggregate
from ..hitlist.sixgen import SixGenConfig, generate
from ..hitlist.synthesis import lowbyte1
from ..hitlist.transform import zn
from ..netsim.build import BuiltInternet
from ..netsim.topology import HostKind, RouterRole
from .base import SeedList


def _rng(built: BuiltInternet, salt: int) -> random.Random:
    return random.Random(built.config.seed * 1_000_003 + salt)


def _hosting_weight(built: BuiltInternet, asn: int) -> float:
    """Server-density weight of an edge AS.

    Real forward-DNS and certificate-transparency hitlists concentrate in
    hosting/datacenter networks: a minority of ASes holds the vast
    majority of named services, which is why those lists' huge address
    counts translate into modest router discovery (Table 7).  A fifth of
    edge ASes are "hosting-dense"; the rest contribute a trickle.
    """
    roll = random.Random(built.config.seed * 7_919 + asn).random()
    return 1.0 if roll < 0.2 else 0.12


def caida_seed(built: BuiltInternet) -> SeedList:
    """CAIDA: the BGP-advertised prefixes of length at most /48.

    Production Ark traces to the ::1 (and a random) address of every
    routed prefix — pure breadth, no knowledge of internal allocation.
    """
    prefixes = [
        prefix for prefix, _ in built.truth.bgp.items() if prefix.length <= 48
    ]
    return SeedList("caida", "BGP-derived", prefixes)


def fiebig_seed(
    built: BuiltInternet, coverage: float = 0.25, lowbyte_run: int = 6
) -> SeedList:
    """Fiebig: ip6.arpa (reverse DNS) zone walking.

    Enumerating PTR zones yields *everything an operator bothered to name*
    inside participating networks: hosts, routers — including
    infrastructure numbered from unadvertised space (a large share of the
    real Fiebig list is unrouted) — plus dense runs of low-byte records.
    Coverage is deep but confined to the minority of ASes with walkable
    zones, giving the list its extreme clustering (70% of its z64 targets
    have DPL 64, Figure 3a).
    """
    rng = _rng(built, 1)
    items: List[int] = []
    chosen = [asn for asn in built.edge_asns if rng.random() < coverage]
    for asn in chosen:
        asys = built.truth.ases[asn]
        for router in asys.routers:
            items.extend(router.interfaces)
        for subnet in asys.plan.leaves:
            items.extend(subnet.host_addresses())
            items.append(subnet.gateway_addr)
            # Operators name service addresses ::1..::N in walked zones.
            items.extend(
                subnet.prefix.base | offset for offset in range(1, lowbyte_run + 1)
            )
    return SeedList("fiebig", "Reverse DNS", items)


def fdns_seed(
    built: BuiltInternet,
    as_coverage: float = 0.75,
    host_fraction: float = 0.5,
    sixtofour_count: int = 400,
) -> SeedList:
    """FDNS: forward DNS ANY answers (Rapid7 Sonar).

    Public server addresses across a broad swath of ASes — biased toward
    low-byte-numbered servers — plus the 6to4 (2002::/16) noise prominent
    in the real list (Table 5's 6to4 column).
    """
    rng = _rng(built, 2)
    items: List[int] = []
    for asn in built.edge_asns:
        if rng.random() > as_coverage:
            continue
        weight = _hosting_weight(built, asn)
        for subnet in built.truth.ases[asn].plan.leaves:
            for addr in subnet.host_addresses():
                kind = classify_address(addr)
                keep = host_fraction if kind is IIDClass.LOWBYTE else host_fraction / 4
                if rng.random() < keep * weight:
                    items.append(addr)
    # 6to4 addresses embed an IPv4 address in bits 16..48.
    for _ in range(sixtofour_count):
        v4 = rng.getrandbits(32)
        items.append((0x2002 << 112) | (v4 << 80) | rng.randint(1, 0xFFFF))
    return SeedList("fdns_any", "Fwd. DNS", items)


def dnsdb_seed(
    built: BuiltInternet, as_coverage: float = 0.85, host_fraction: float = 0.35
) -> SeedList:
    """DNSDB: passively observed AAAA answers (Farsight).

    What resolvers actually look up: popular services nearly everywhere
    (the widest ASN coverage of the address-valued lists) plus a sprinkle
    of residential hosts serving content from home.
    """
    rng = _rng(built, 3)
    items: List[int] = []
    for asn in built.edge_asns:
        if rng.random() > as_coverage:
            continue
        weight = _hosting_weight(built, asn)
        for subnet in built.truth.ases[asn].plan.leaves:
            # Passive DNS sees at least something nearly everywhere
            # (broadest ASN coverage), but volume follows hosting density.
            first = True
            for addr in subnet.host_addresses():
                keep = host_fraction * weight if not first else host_fraction * max(weight, 0.3)
                first = False
                if rng.random() < keep:
                    items.append(addr)
    for asn in built.cpe_asns:
        for subnet in built.truth.ases[asn].plan.leaves:
            if rng.random() < 0.015 and subnet.host_iids:
                items.append(subnet.host_addresses()[0])
    return SeedList("dnsdb", "Passive DNS", items)


def cdn_observations(
    built: BuiltInternet, intervals: int = 24, activity: float = 0.5
) -> List[Tuple[int, int]]:
    """Simulated CDN WWW-client observations: per interval, each active
    client appears under a *fresh* SLAAC temporary privacy address in its
    home /64 (RFC 4941 rotation), exactly the address type the kIP input
    comprises."""
    rng = _rng(built, 4)
    observations: List[Tuple[int, int]] = []
    for subnet in built.truth.subnets.values():
        for _ in subnet.www_client_iids:
            for interval in range(intervals):
                if rng.random() < activity:
                    iid = rng.getrandbits(64)
                    if (iid >> 24) & 0xFFFF == 0xFFFE:
                        iid ^= 1 << 30
                    observations.append((subnet.prefix.base | (iid or 1), interval))
    return observations


def cdn_seed(
    built: BuiltInternet,
    k: int,
    observations: Optional[Sequence[Tuple[int, int]]] = None,
    intervals: int = 24,
    label: Optional[str] = None,
) -> SeedList:
    """CDN: kIP-anonymized aggregates over WWW client addresses.

    The authors never see client addresses — only aggregates, each
    covering >= k simultaneously assigned /64s (Section 3.2).  ``label``
    lets a scaled-down world keep the paper's set names while using a
    proportionally scaled k (the paper's k=32 sits against ~576M active
    /64s; see DESIGN.md).
    """
    if observations is None:
        observations = cdn_observations(built, intervals=intervals)
    params = KIPParams(k=k, window_days=1, interval_hours=1)
    aggregates = kip_aggregate(observations, params)
    return SeedList(
        label or "cdn-k%d" % k, "kIP anonymization: k = %d" % k, aggregates
    )


def sixgen_seed(
    built: BuiltInternet,
    budget: int = 60_000,
    interface_sample: float = 0.3,
) -> SeedList:
    """6Gen: generative targets seeded with CAIDA probing results.

    The paper feeds 6Gen the destinations CAIDA probed plus the router
    interfaces that probing discovered, and runs loose clustering.
    """
    rng = _rng(built, 5)
    caida_targets = lowbyte1(
        zn(caida_seed(built).items, 64)
    )
    # BGP-guided probing only ever reaches core infrastructure; CPE
    # routers sit in customer space CAIDA does not target, so they can't
    # appear among the "new interfaces found" that seed 6Gen.
    discovered = [
        addr
        for addr, router in built.truth.router_addresses.items()
        if router.role is not RouterRole.CPE and rng.random() < interface_sample
    ]
    seeds = caida_targets + discovered
    generated = generate(
        seeds, SixGenConfig(mode="loose", budget=budget, seed=built.config.seed)
    )
    return SeedList("6gen", "Generative", generated)


def tum_subsets(built: BuiltInternet) -> Dict[str, List[int]]:
    """The TUM collection's constituent files (Table 2), synthesized.

    The real collection unions forward-DNS dumps, certificate-transparency
    scrapes, RIPE traceroute hop addresses, openipmap, and Alexa-derived
    lists; its distinguishing power comes from combining server space with
    *traceroute-derived router addresses* (including residential CPE).
    """
    rng = _rng(built, 6)
    fdns = fdns_seed(built).addresses
    subsets: Dict[str, List[int]] = {}
    subsets["rapid7-dnsany"] = fdns
    subsets["ct"] = [addr for addr in dnsdb_seed(built).addresses if rng.random() < 0.5]
    subsets["alexa-country"] = [addr for addr in fdns[:200]]
    # Traceroute-derived: router interface addresses seen as hops by
    # public measurement platforms — the subset that reaches CPE space.
    # RIPE probes are hosted disproportionately inside the *second* CPE
    # ISP's footprint, so TUM's CPE view complements the CDN's (which
    # watches the first ISP's web-heavy customers, Section 5.1).
    cpe_sample = {}
    for position, asn in enumerate(built.cpe_asns):
        cpe_sample[asn] = 0.02 if position == 0 else 0.08
    traceroute: List[int] = []
    for addr, router in built.truth.router_addresses.items():
        if router.role is RouterRole.CPE:
            if rng.random() < cpe_sample.get(router.asn, 0.0):
                traceroute.append(addr)
        elif rng.random() < 0.04:
            traceroute.append(addr)
    subsets["traceroute"] = traceroute
    # Operator-named router addresses (DNS PTR names): core kit only —
    # nobody writes DNS names for customers' plastic routers.
    subsets["caida-dnsnames"] = [
        addr
        for addr, router in built.truth.router_addresses.items()
        if router.role is not RouterRole.CPE and rng.random() < 0.05
    ]
    subsets["openipmap"] = [
        addr
        for addr, router in built.truth.router_addresses.items()
        if router.role is not RouterRole.CPE and rng.random() < 0.01
    ]
    return subsets


def tum_seed(built: BuiltInternet) -> SeedList:
    """TUM: the union of the collection's subsets."""
    merged: Set[int] = set()
    for values in tum_subsets(built).values():
        merged.update(values)
    return SeedList("tum", "Collection", sorted(merged))


def random_seed(built: BuiltInternet, count: int = 20_000) -> SeedList:
    """Random control: addresses uniformly drawn within routed space,
    prefix chosen uniformly then an address uniformly inside it (the
    paper's unguided BGP-informed baseline)."""
    rng = _rng(built, 7)
    prefixes = built.truth.bgp.prefixes()
    items = [
        prefixes[rng.randrange(len(prefixes))].random_address(rng)
        for _ in range(count)
    ]
    return SeedList("random", "Random", items)


def build_all_seeds(
    built: BuiltInternet,
    random_count: int = 20_000,
    sixgen_budget: int = 60_000,
    cdn_k32: int = 32,
    cdn_k256: int = 256,
) -> Dict[str, SeedList]:
    """All seed sources of Table 1 keyed by name (plus both CDN variants).

    ``cdn_k32`` / ``cdn_k256`` are the *effective* kIP parameters behind
    the cdn-k32 / cdn-k256 set names.  The paper's absolute values sit
    against hundreds of millions of active client /64s; scaled-down
    worlds pass proportionally scaled values (keeping the 8x ratio) so
    the sets play the same role.
    """
    observations = cdn_observations(built)
    seeds = {
        "caida": caida_seed(built),
        "dnsdb": dnsdb_seed(built),
        "fiebig": fiebig_seed(built),
        "fdns_any": fdns_seed(built),
        "cdn-k256": cdn_seed(built, cdn_k256, observations, label="cdn-k256"),
        "cdn-k32": cdn_seed(built, cdn_k32, observations, label="cdn-k32"),
        "6gen": sixgen_seed(built, budget=sixgen_budget),
        "tum": tum_seed(built),
        "random": random_seed(built, random_count),
    }
    return seeds
