"""Topology dataset export/import in ITDK-style node/link files.

The paper releases its discovered topology; CAIDA's Internet Topology
Data Kit (ITDK) — which the paper's alias-resolution future work feeds —
publishes router-level graphs as ``.nodes`` / ``.links`` text files:

* ``node N<i>:  <addr> <addr> ...`` — one router, its interface aliases;
* ``link L<j>:  N<a>:<addr> N<b>:<addr> ...`` — one inter-router link,
  with the interface each router contributes where known.

This module writes and reads that format for our router-level graphs so
results can be diffed, shared, and re-loaded without rerunning
campaigns.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Set, TextIO, Tuple

import networkx as nx

from ..addrs import address


class DatasetError(ValueError):
    """Raised for unparseable dataset files."""


def write_nodes(sink: TextIO, clusters: Iterable[Iterable[int]]) -> Dict[int, str]:
    """Write alias clusters as node records.

    Returns the interface → node-id mapping used (deterministic: clusters
    ordered by smallest member).
    """
    mapping: Dict[int, str] = {}
    ordered = sorted((sorted(cluster) for cluster in clusters), key=lambda c: c[0])
    sink.write("# repro router-level nodes (ITDK-style)\n")
    for index, members in enumerate(ordered, start=1):
        node_id = "N%d" % index
        for member in members:
            mapping[member] = node_id
        sink.write(
            "node %s:  %s\n"
            % (node_id, " ".join(address.format_address(member) for member in members))
        )
    return mapping


def write_links(
    sink: TextIO, graph: nx.Graph, node_ids: Mapping[int, str]
) -> int:
    """Write a router graph's edges as link records; returns links written.

    ``graph`` nodes are cluster representatives whose ``interfaces``
    attribute lists member addresses; ``node_ids`` maps any interface to
    its node id.
    """
    sink.write("# repro router-level links (ITDK-style)\n")
    count = 0
    for index, (a, b) in enumerate(sorted(graph.edges), start=1):
        id_a = node_ids.get(a, "N?")
        id_b = node_ids.get(b, "N?")
        sink.write(
            "link L%d:  %s:%s %s:%s\n"
            % (
                index,
                id_a,
                address.format_address(a),
                id_b,
                address.format_address(b),
            )
        )
        count += 1
    return count


def read_nodes(source: TextIO) -> Dict[str, List[int]]:
    """Parse a .nodes stream into node-id → interface list."""
    nodes: Dict[str, List[int]] = {}
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if not line.startswith("node "):
            raise DatasetError("unexpected line %r" % line)
        head, _, rest = line[5:].partition(":")
        node_id = head.strip()
        members = [address.parse(text) for text in rest.split()]
        if not members:
            raise DatasetError("empty node %r" % node_id)
        nodes[node_id] = members
    return nodes


def read_links(source: TextIO) -> List[Tuple[str, str]]:
    """Parse a .links stream into (node-id, node-id) pairs."""
    links: List[Tuple[str, str]] = []
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if not line.startswith("link "):
            raise DatasetError("unexpected line %r" % line)
        _, _, rest = line.partition(":")
        endpoints = rest.split()
        if len(endpoints) < 2:
            raise DatasetError("link needs two endpoints: %r" % line)
        ids = [endpoint.split(":", 1)[0] for endpoint in endpoints]
        links.append((ids[0], ids[1]))
    return links


def export_router_level(
    clusters: Iterable[Iterable[int]], graph: nx.Graph
) -> Tuple[str, str]:
    """Render (.nodes text, .links text) for a resolved topology.

    Graph nodes not covered by any cluster (interfaces alias resolution
    never sampled) are exported as singleton nodes, so every link's
    endpoints resolve.
    """
    cluster_list = [sorted(cluster) for cluster in clusters]
    covered = {member for cluster in cluster_list for member in cluster}
    for node in graph.nodes:
        if node not in covered:
            cluster_list.append([node])
    nodes_buffer = io.StringIO()
    mapping = write_nodes(nodes_buffer, cluster_list)
    links_buffer = io.StringIO()
    write_links(links_buffer, graph, mapping)
    return nodes_buffer.getvalue(), links_buffer.getvalue()


def load_router_level(nodes_text: str, links_text: str) -> nx.Graph:
    """Reconstruct a router-level graph from dataset text."""
    nodes = read_nodes(io.StringIO(nodes_text))
    links = read_links(io.StringIO(links_text))
    graph = nx.Graph()
    for node_id, members in nodes.items():
        graph.add_node(node_id, interfaces=set(members))
    for a, b in links:
        for node_id in (a, b):
            if node_id not in graph.nodes:
                raise DatasetError("link references unknown node %r" % node_id)
        graph.add_edge(a, b)
    return graph
