"""Campaign-level target-set accounting: Tables 5 and 7, Figures 2 and 6.

Bridges target sets / campaign results with the generic set-feature
machinery in :mod:`repro.addrs.sets`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..addrs.sets import SetFeatures, characterize_sets
from ..addrs.trie import PrefixTrie
from ..hitlist.pipeline import TargetSet
from ..prober.campaign import CampaignResult


def characterize_target_sets(
    target_sets: Mapping[str, TargetSet],
    bgp: PrefixTrie,
    exclusive_among: Optional[Sequence[str]] = None,
) -> Dict[str, SetFeatures]:
    """Table 5: per-target-set features with exclusivity accounting."""
    return characterize_sets(
        {name: target_set.addresses for name, target_set in target_sets.items()},
        bgp,
        exclusive_among=exclusive_among,
    )


class CampaignFeatures:
    """Result-side features of one campaign (a Table 7 row's set stats)."""

    __slots__ = (
        "name",
        "interfaces",
        "bgp_prefixes",
        "asns",
        "exclusive_interfaces",
        "exclusive_prefixes",
        "exclusive_asns",
    )

    def __init__(self, name: str):
        self.name = name
        self.interfaces: Set[int] = set()
        self.bgp_prefixes: Set = set()
        self.asns: Set[int] = set()
        self.exclusive_interfaces: Set[int] = set()
        self.exclusive_prefixes: Set = set()
        self.exclusive_asns: Set[int] = set()


def characterize_results(
    results: Mapping[str, CampaignResult],
    registry: PrefixTrie,
) -> Dict[str, CampaignFeatures]:
    """Attribute each campaign's discovered interfaces to BGP/RIR prefixes
    and ASNs, and compute cross-campaign exclusivity (Figure 6)."""
    interface_owners: Counter = Counter()
    prefix_owners: Dict[object, Set[str]] = {}
    asn_owners: Dict[int, Set[str]] = {}
    features: Dict[str, CampaignFeatures] = {}
    lookup_cache: Dict[int, Optional[Tuple[object, int]]] = {}

    for name, result in results.items():
        summary = CampaignFeatures(name)
        summary.interfaces = set(result.interfaces)
        for interface in summary.interfaces:
            interface_owners[interface] += 1
            if interface in lookup_cache:
                match = lookup_cache[interface]
            else:
                match = registry.longest_match(interface)
                lookup_cache[interface] = match
            if match is None:
                continue
            prefix, asn = match
            summary.bgp_prefixes.add(prefix)
            summary.asns.add(asn)
            prefix_owners.setdefault(prefix, set()).add(name)
            asn_owners.setdefault(asn, set()).add(name)
        features[name] = summary

    for name, summary in features.items():
        summary.exclusive_interfaces = {
            interface
            for interface in summary.interfaces
            if interface_owners[interface] == 1
        }
        summary.exclusive_prefixes = {
            prefix
            for prefix in summary.bgp_prefixes
            if prefix_owners[prefix] == {name}
        }
        summary.exclusive_asns = {
            asn for asn in summary.asns if asn_owners[asn] == {name}
        }
    return features


def combined_interfaces(results: Iterable[CampaignResult]) -> Set[int]:
    """Union of interfaces across campaigns (the Table 7 ALL row)."""
    union: Set[int] = set()
    for result in results:
        union.update(result.interfaces)
    return union
