"""Subnet discovery from trace results (Section 6 of the paper).

Two techniques:

* **Path-divergence** (``discover_by_path_div``, after Lee et al.'s
  Hobbit adapted to IPv6): when traces to two targets share a significant
  common subpath and then significantly diverge, the targets lie in
  different subnets, and their Discriminating Prefix Length lower-bounds
  both subnets' prefix lengths.  The classifier takes the paper's
  conservative parameters (c, C, A, s, S, z, T) and applies the BGP/RIR
  "registry" augmentation plus equivalent-ASN folding the paper needs for
  networks like Comcast.
* **The IA ("Identity Association") hack**: a last hop sourced from the
  target's own /64 with the ::1 IID is taken to be the gateway of the
  target's LAN — pinpointing a /64 subnet exactly and establishing that
  the trace completed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..addrs.address import IID_MASK, PREFIX_MASK
from ..addrs.dpl import capped_dpl, pairwise_dpl
from ..addrs.prefix import Prefix
from ..addrs.trie import PrefixTrie
from .traces import Trace


@dataclass(frozen=True)
class PathDivParams:
    """The discoverByPathDiv knobs, defaulted to the paper's values."""

    #: Minimum length of the last common subpath (LCS).
    c: int = 2
    #: LCS hops whose ASN must match the target's ASN.
    C: int = 1
    #: The last hop's ASN must not match the vantage's (A = 1 enables).
    A: int = 1
    #: Minimum length of each divergent suffix (DS).
    s: int = 1
    #: DS hops whose ASN must match the target's.
    S: int = 1
    #: Disallow zero-length divergent suffixes.
    z: int = 0
    #: Require the pair's target ASNs to match.
    T: int = 1
    #: How many sorted neighbours each target is compared against; nearest
    #: neighbours carry the highest-DPL (most informative) comparisons.
    neighbor_window: int = 3


class SubnetCandidates:
    """Output of subnet inference: per-target prefix-length lower bounds
    plus exact /64s from the IA hack."""

    def __init__(self):
        #: target -> best (highest) minimum prefix length inferred.
        self.bounds: Dict[int, int] = {}
        #: /64 prefixes confirmed by the strict (::1) IA hack.
        self.ia_subnets: Set[Prefix] = set()
        #: Traces whose last hop shared the target's /64 (the dots plotted
        #: at 64 in Figure 8b, IID-agnostic).
        self.same64_last_hop = 0
        self.pairs_compared = 0
        self.pairs_divergent = 0

    def record_bound(self, target: int, length: int) -> None:
        previous = self.bounds.get(target, 0)
        if length > previous:
            self.bounds[target] = length

    @property
    def candidate_prefixes(self) -> Set[Prefix]:
        """Candidate subnets: each bounded target's covering prefix at its
        inferred minimum length."""
        return {
            Prefix(target, length) for target, length in self.bounds.items()
        }

    def length_histogram(self) -> Dict[int, int]:
        """Counts of candidate subnets per inferred minimum length."""
        histogram: Dict[int, int] = {}
        # Sorted so the histogram's key order is stable run to run.
        for prefix in sorted(self.candidate_prefixes):
            histogram[prefix.length] = histogram.get(prefix.length, 0) + 1
        return histogram

    def length_cdf(self, bins: Sequence[int]) -> List[Tuple[int, float]]:
        """Figure 8a: cumulative fraction of candidates by length."""
        lengths = sorted(prefix.length for prefix in self.candidate_prefixes)
        if not lengths:
            return [(edge, 0.0) for edge in bins]
        from bisect import bisect_right

        return [
            (edge, bisect_right(lengths, edge) / len(lengths)) for edge in bins
        ]


class AsnResolver:
    """Hop/target → canonical ASN, with registry augmentation.

    Router addresses frequently fall outside the public BGP; the paper
    augments with RIR registrations and folds operationally equivalent
    ASNs together.  ``registry`` should be the BGP+RIR trie.
    """

    def __init__(
        self,
        registry: PrefixTrie,
        equivalents: Optional[Mapping[int, int]] = None,
    ):
        self.registry = registry
        self.equivalents = dict(equivalents or {})
        self._cache: Dict[int, Optional[int]] = {}

    def asn_of(self, addr: int) -> Optional[int]:
        if addr in self._cache:
            return self._cache[addr]
        value = self.registry.lookup(addr)
        if value is not None:
            value = self.equivalents.get(value, value)
        self._cache[addr] = value
        return value


def _divergence_bound(
    trace_a: Trace,
    trace_b: Trace,
    resolver: AsnResolver,
    vantage_asn: Optional[int],
    params: PathDivParams,
) -> Optional[int]:
    """Apply the significance tests; return the capped DPL bound or None."""
    target_asn = resolver.asn_of(trace_a.target)
    if target_asn is None:
        return None
    if params.T and resolver.asn_of(trace_b.target) != target_asn:
        return None

    path_a, path_b = trace_a.path, trace_b.path
    if not path_a or not path_b:
        return None

    # Locate the divergence point: first index where the hops differ.
    shared = 0
    limit = min(len(path_a), len(path_b))
    while shared < limit and path_a[shared] == path_b[shared] and path_a[shared] is not None:
        shared += 1
    if shared == 0:
        return None

    # Divergent suffixes must exist and be significant.
    suffix_a = path_a[shared:]
    suffix_b = path_b[shared:]
    if len(suffix_a) < max(params.s, 1) or len(suffix_b) < max(params.s, 1):
        return None
    for suffix in (suffix_a, suffix_b):
        matching = sum(
            1
            for hop in suffix
            if hop is not None and resolver.asn_of(hop) == target_asn
        )
        if matching < params.S:
            return None
    # The suffixes must actually differ in content, not just in length
    # (missing-hop padding is not divergence evidence).
    responded_a = [hop for hop in suffix_a if hop is not None]
    responded_b = [hop for hop in suffix_b if hop is not None]
    if not responded_a or not responded_b:
        return None
    if responded_a == responded_b:
        return None

    # The LCS: the run of identical, present hops ending at the
    # divergence point.
    lcs: List[int] = []
    index = shared - 1
    while index >= 0 and path_a[index] is not None and path_a[index] == path_b[index]:
        lcs.append(path_a[index])
        index -= 1
    if len(lcs) < params.c:
        return None
    lcs_matching = sum(1 for hop in lcs if resolver.asn_of(hop) == target_asn)
    if lcs_matching < params.C:
        return None

    # Last hop must have escaped the vantage network.
    if params.A and vantage_asn is not None:
        for trace in (trace_a, trace_b):
            last = trace.last_hop
            if last is not None and resolver.asn_of(last) == vantage_asn:
                return None

    return capped_dpl(pairwise_dpl(trace_a.target, trace_b.target))


def discover_by_path_div(
    traces: Mapping[int, Trace],
    resolver: AsnResolver,
    vantage_asn: Optional[int] = None,
    params: PathDivParams = PathDivParams(),
) -> SubnetCandidates:
    """Infer candidate subnets from path divergence plus the IA hack."""
    candidates = SubnetCandidates()
    targets = sorted(
        target for target, trace in traces.items() if trace.hops
    )
    for position, target in enumerate(targets):
        trace = traces[target]
        for offset in range(1, params.neighbor_window + 1):
            if position + offset >= len(targets):
                break
            other = traces[targets[position + offset]]
            candidates.pairs_compared += 1
            bound = _divergence_bound(trace, other, resolver, vantage_asn, params)
            if bound is None:
                continue
            candidates.pairs_divergent += 1
            candidates.record_bound(trace.target, bound)
            candidates.record_bound(other.target, bound)

    # The IA hack pass.
    for target, trace in traces.items():
        last = trace.last_hop
        if last is None:
            continue
        if last & PREFIX_MASK == target & PREFIX_MASK:
            candidates.same64_last_hop += 1
            if last & IID_MASK == 1:
                candidates.ia_subnets.add(Prefix(target & PREFIX_MASK, 64))
    return candidates


# ---------------------------------------------------------------------------
# Validation against ground truth (Section 6, "Subnet Validation")
# ---------------------------------------------------------------------------

@dataclass
class ValidationReport:
    """Comparison of inferred candidates against ground-truth subnets."""

    truth_subnets: int
    truth_probed: int
    candidates: int
    exact_matches: int
    more_specific: int
    one_bit_short: int
    two_bits_short: int

    @property
    def exact_fraction(self) -> float:
        """Exact matches per *candidate* — the paper's stratified-rerun
        metric (395 of 914 candidates, 43%)."""
        return self.exact_matches / self.candidates if self.candidates else 0.0

    @property
    def probed_exact_fraction(self) -> float:
        """Exact matches per probed truth subnet."""
        return self.exact_matches / self.truth_probed if self.truth_probed else 0.0


def validate_candidates(
    candidates: SubnetCandidates,
    truth: Sequence[Prefix],
    probed_targets: Iterable[int],
) -> ValidationReport:
    """Score candidates against ground-truth subnet prefixes.

    ``truth`` is the operator's real subnet plan (e.g. the netsim
    distribution/allocation prefixes); a truth subnet counts as *probed*
    when some target fell inside it.
    """
    truth_trie: PrefixTrie = PrefixTrie()
    for prefix in truth:
        truth_trie.insert(prefix, prefix)
    probed: Set[Prefix] = set()
    for target in probed_targets:
        match = truth_trie.longest_match(target)
        if match is not None:
            probed.add(match[0])

    candidate_set = candidates.candidate_prefixes
    exact = 0
    more_specific = 0
    one_bit = 0
    two_bits = 0
    matched_truth: Set[Prefix] = set()
    for candidate in candidate_set:
        covering = truth_trie.longest_match(candidate.base)
        if covering is None:
            continue
        truth_prefix = covering[0]
        if truth_prefix not in probed:
            continue
        if candidate == truth_prefix:
            exact += 1
            matched_truth.add(truth_prefix)
        elif candidate.length > truth_prefix.length:
            more_specific += 1
            matched_truth.add(truth_prefix)
        elif truth_prefix.length - candidate.length == 1:
            one_bit += 1
        elif truth_prefix.length - candidate.length == 2:
            two_bits += 1
    return ValidationReport(
        truth_subnets=len(set(truth)),
        truth_probed=len(probed),
        candidates=len(candidate_set),
        exact_matches=exact,
        more_specific=more_specific,
        one_bit_short=one_bit,
        two_bits_short=two_bits,
    )


def stratified_sample(
    traces: Mapping[int, Trace], truth: Sequence[Prefix]
) -> Dict[int, Trace]:
    """One trace per ground-truth subnet (the paper's fidelity-reduction
    rerun): keeps discovery from exceeding truth granularity."""
    truth_trie: PrefixTrie = PrefixTrie()
    for prefix in truth:
        truth_trie.insert(prefix, prefix)
    chosen: Dict[Prefix, int] = {}
    for target in sorted(traces):
        match = truth_trie.longest_match(target)
        if match is None:
            continue
        chosen.setdefault(match[0], target)
    return {target: traces[target] for target in chosen.values()}
