"""Response-mix analysis: the ICMPv6 type/code distributions of Tables 3
and 4 and the protocol comparison of Section 4.2."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from ..prober.campaign import CampaignResult

#: Row order of Table 4.
TABLE4_ROWS = (
    "time exceeded",
    "no route to destination",
    "administratively prohibited",
    "address unreachable",
    "port unreachable",
    "reject route to destination",
)


def response_mix(result: CampaignResult) -> Dict[str, float]:
    """Fraction of responses per ICMPv6 class (echo replies folded into
    their own row; Table 4 reports percentage of all ICMPv6 received)."""
    total = sum(result.response_labels.values())
    if not total:
        return {}
    return {
        label: count / total for label, count in result.response_labels.items()
    }


def other_icmp_count(result: CampaignResult) -> int:
    """Responses that are not Time Exceeded (Table 3 "Other ICMPv6")."""
    return sum(
        count
        for label, count in result.response_labels.items()
        if label != "time exceeded"
    )


def other_icmp_rate(result: CampaignResult) -> float:
    """Non-Time-Exceeded responses per probe (Table 3's normalization:
    probes reaching deeper into networks elicit more terminal errors)."""
    return other_icmp_count(result) / result.sent if result.sent else 0.0


def transformation_table(
    results: Mapping[int, CampaignResult]
) -> List[Dict[str, object]]:
    """Table 3 rows from campaigns keyed by zn level: probes, other
    ICMPv6, interfaces, and per-level exclusive interfaces."""
    from collections import Counter

    owners: Counter = Counter()
    for result in results.values():
        for interface in result.interfaces:
            owners[interface] += 1
    rows = []
    for level in sorted(results):
        result = results[level]
        exclusive = sum(
            1 for interface in result.interfaces if owners[interface] == 1
        )
        rows.append(
            {
                "zn": level,
                "probes": result.sent,
                "other_icmpv6": other_icmp_count(result),
                "other_rate": other_icmp_rate(result),
                "addrs": len(result.interfaces),
                "excl_addrs": exclusive,
            }
        )
    return rows


def protocol_comparison(
    results: Mapping[str, CampaignResult]
) -> Dict[str, Dict[str, float]]:
    """Section 4.2's transport study: per protocol, interface count and
    the rate of non-Time-Exceeded responses."""
    comparison: Dict[str, Dict[str, float]] = {}
    for protocol, result in results.items():
        comparison[protocol] = {
            "interfaces": float(len(result.interfaces)),
            "responses": float(result.summary.get("received", 0)),
            "other_icmpv6": float(other_icmp_count(result)),
            "other_rate": other_icmp_rate(result),
        }
    return comparison


def per_hop_responsiveness(
    result: CampaignResult, max_ttl: int
) -> List[Tuple[int, float]]:
    """Figure 5: fraction of traces answered at each hop.

    The denominator is the number of traces (targets); hops beyond a
    path's length naturally decay the fraction, exactly as the paper
    plots it.
    """
    from collections import defaultdict

    responded = defaultdict(set)
    for record in result.records:
        if record.is_time_exceeded:
            responded[record.ttl].add(record.target)
    return [
        (ttl, len(responded.get(ttl, ())) / result.targets if result.targets else 0.0)
        for ttl in range(1, max_ttl + 1)
    ]
