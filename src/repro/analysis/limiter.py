"""Remote inference of a hop's ICMPv6 rate-limiter parameters.

Figure 5 shows hops *have* heterogeneous token buckets; this module
measures them, turning the paper's qualitative observation ("hop 3
appears to implement more aggressive rate limiting") into numbers:

* **burst capacity** — fire a tight burst of TTL-limited probes at the
  hop; the bucket answers until it empties, so the response count of a
  sufficiently large burst reads the capacity directly;
* **refill rate** — after draining the bucket, probe at a steady rate r:
  the sustained response fraction approximates ``min(1, rate/r)``, so
  ``r × fraction`` estimates the refill rate wherever the hop is
  overloaded.  Several overloaded rates are scanned and the estimates
  combined by median.

This is an active-measurement methodology (an extension the paper's
data would support); the bench validates it against the simulator's
ground-truth buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import List, Optional, Tuple

from ..netsim.engine import Engine, US_PER_SECOND, pps_interval
from ..netsim.internet import Internet
from ..prober.encoding import encode_probe


@dataclass
class LimiterEstimate:
    """Inferred token-bucket parameters for one hop."""

    burst: float
    rate: float
    #: Per-scan (probe rate, response fraction) evidence.
    scan: List[Tuple[float, float]]
    probes_used: int


@dataclass
class LimiterProbeConfig:
    """Measurement schedule."""

    #: Burst size for capacity reading (should exceed plausible bursts).
    burst_probes: int = 400
    #: Burst emission rate (effectively back-to-back).
    burst_pps: float = 100_000.0
    #: Steady rates scanned for the refill estimate.
    scan_rates: Tuple[float, ...] = (100.0, 200.0, 400.0, 800.0)
    #: Duration of each steady scan.
    scan_seconds: float = 4.0
    #: Quiet gap letting the bucket refill between phases.
    settle_seconds: float = 5.0
    instance: int = 5


def _probe_hop(
    internet: Internet,
    source: int,
    target: int,
    ttl: int,
    count: int,
    pps: float,
    start: int,
    engine: Engine,
    instance: int,
) -> Tuple[int, int]:
    """Emit ``count`` probes at ``pps`` beginning at ``start``; returns
    (sent, responses at that TTL)."""
    interval = pps_interval(pps)
    answered = [0]

    def deliver() -> None:
        answered[0] += 1

    when = start
    for index in range(count):
        def send(when=when) -> None:
            packet = encode_probe(
                source, target, ttl, elapsed=engine.now & 0xFFFFFFFF, instance=instance
            )
            response = internet.probe(packet, engine.now)
            if response is not None:
                engine.schedule(response.delay_us, deliver)

        engine.schedule_at(when, send)
        when += interval
    engine.run(until=when + 2 * US_PER_SECOND)
    return count, answered[0]


def infer_limiter(
    internet: Internet,
    vantage_name: str,
    target: int,
    ttl: int,
    config: Optional[LimiterProbeConfig] = None,
) -> LimiterEstimate:
    """Measure the token bucket of the hop at ``ttl`` toward ``target``.

    The internet's dynamic state is reset first; the measurement then
    owns the virtual clock, so other traffic does not pollute it (the
    real-world method would subtract a baseline instead).
    """
    config = config or LimiterProbeConfig()
    internet.reset_dynamics()
    vantage = internet.vantage(vantage_name)
    engine = Engine()
    probes_used = 0

    # Phase 1: capacity. The bucket starts full; a tight burst reads it.
    sent, burst_answered = _probe_hop(
        internet,
        vantage.address,
        target,
        ttl,
        config.burst_probes,
        config.burst_pps,
        engine.now,
        engine,
        config.instance,
    )
    probes_used += sent

    # Phase 2: refill-rate scan.  Before each steady scan, drain the
    # bucket again with a quick burst so the steady phase measures pure
    # refill rather than stored burst.
    scan: List[Tuple[float, float]] = []
    estimates: List[float] = []
    for rate in config.scan_rates:
        settle = engine.now + int(config.settle_seconds * US_PER_SECOND)
        drained, _ = _probe_hop(
            internet,
            vantage.address,
            target,
            ttl,
            config.burst_probes,
            config.burst_pps,
            settle,
            engine,
            config.instance,
        )
        probes_used += drained
        count = int(rate * config.scan_seconds)
        sent, answered = _probe_hop(
            internet,
            vantage.address,
            target,
            ttl,
            count,
            rate,
            engine.now,
            engine,
            config.instance,
        )
        probes_used += sent
        fraction = answered / sent if sent else 0.0
        scan.append((rate, fraction))
        if fraction < 0.95:  # overloaded: fraction ~ refill/rate
            estimates.append(rate * fraction)

    if estimates:
        refill = median(estimates)
    else:
        # Never overloaded: the refill rate exceeds the largest scan rate.
        refill = max(config.scan_rates)
    return LimiterEstimate(
        burst=float(burst_answered),
        rate=refill,
        scan=scan,
        probes_used=probes_used,
    )
