"""Discovery metrics: target-set power, yields, EUI-64 structure.

Implements the quantities behind Figure 7 (interfaces vs probes), Table 6
(yield), and Table 7's EUI-64 columns (share of EUI-64 interface
addresses and their hop position relative to path end).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..addrs.iid import IIDClass, classify_address, eui64_oui
from ..prober.campaign import CampaignResult
from .traces import Trace, build_traces


def discovery_curve(
    result: CampaignResult, points: int = 50
) -> List[Tuple[int, int]]:
    """Downsample a campaign's (probes, unique interfaces) curve to about
    ``points`` log-spaced checkpoints (Figure 7 is log-log)."""
    curve = result.curve
    if not curve:
        return []
    if len(curve) <= points:
        return list(curve)
    first_sent = max(1, curve[0][0])
    last_sent = max(first_sent + 1, curve[-1][0])
    thresholds = [
        first_sent * (last_sent / first_sent) ** (index / (points - 1))
        for index in range(points)
    ]
    sampled: List[Tuple[int, int]] = []
    cursor = 0
    for threshold in thresholds:
        while cursor < len(curve) - 1 and curve[cursor + 1][0] <= threshold:
            cursor += 1
        if not sampled or sampled[-1] != curve[cursor]:
            sampled.append(curve[cursor])
    if sampled[-1] != curve[-1]:
        sampled.append(curve[-1])
    return sampled


def interface_yield(result: CampaignResult) -> float:
    """Unique interface addresses per probe (Table 6's Yield %)."""
    return result.yield_per_probe


def eui64_interfaces(interfaces: Iterable[int]) -> List[int]:
    """The subset of interface addresses with EUI-64 identifiers."""
    return [
        addr for addr in interfaces if classify_address(addr) is IIDClass.EUI64
    ]


def eui64_share(interfaces: Iterable[int]) -> float:
    """Fraction of interface addresses that are EUI-64 (Table 7)."""
    interfaces = list(interfaces)
    if not interfaces:
        return 0.0
    return len(eui64_interfaces(interfaces)) / len(interfaces)


def oui_concentration(interfaces: Iterable[int], top: int = 2) -> float:
    """Fraction of EUI-64 interfaces from the ``top`` most common OUIs
    (the paper: 59% from just two manufacturers, Section 5.1)."""
    from collections import Counter

    ouis = Counter()
    for addr in eui64_interfaces(interfaces):
        ouis[eui64_oui(addr & ((1 << 64) - 1))] += 1
    total = sum(ouis.values())
    if not total:
        return 0.0
    return sum(count for _, count in ouis.most_common(top)) / total


def eui64_path_offsets(result: CampaignResult) -> List[int]:
    """Hop offsets of EUI-64 interfaces relative to path end.

    0 means the EUI-64 interface was the last responsive hop of its
    trace; -k means k hops before the end (Table 7's rightmost column:
    CPE routers sit at offset 0, core EUI-64 kit deeper)."""
    offsets: List[int] = []
    for trace in build_traces(result.records).values():
        length = trace.path_length
        if length == 0:
            continue
        for ttl, hop in trace.hops.items():
            if classify_address(hop) is IIDClass.EUI64:
                offsets.append(ttl - length)
    return offsets


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile on a sequence (0 for empty input)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def offset_summary(offsets: Sequence[int]) -> Tuple[float, float]:
    """(5th percentile, median) of EUI-64 path offsets (Table 7)."""
    return percentile(offsets, 0.05), percentile(offsets, 0.50)


def exclusive_interfaces(
    results: Dict[str, CampaignResult]
) -> Dict[str, set]:
    """Interfaces discovered by exactly one campaign (Table 7 "Excl Int
    Addrs"; Figure 6)."""
    from collections import Counter

    owners: Counter = Counter()
    for result in results.values():
        for interface in result.interfaces:
            owners[interface] += 1
    return {
        name: {
            interface
            for interface in result.interfaces
            if owners[interface] == 1
        }
        for name, result in results.items()
    }
