"""Multi-vantage analysis: how much does each extra vantage buy?

The paper runs three vantages and plans "a large number" (Section 7.2).
These helpers quantify that plan: the marginal interface gain of each
added vantage, pairwise overlap between vantages' discoveries, and the
diminishing-returns curve a deployment planner would consult.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..prober.campaign import CampaignResult


def marginal_gain(
    results: Sequence[Tuple[str, Set[int]]]
) -> List[Tuple[str, int, int]]:
    """Cumulative discovery as vantages are added in the given order.

    Input: (vantage name, interface set) pairs.  Output rows:
    (vantage, newly contributed interfaces, cumulative total).
    """
    seen: Set[int] = set()
    rows: List[Tuple[str, int, int]] = []
    for name, interfaces in results:
        fresh = len(set(interfaces) - seen)
        seen |= set(interfaces)
        rows.append((name, fresh, len(seen)))
    return rows


def best_order(results: Mapping[str, Set[int]]) -> List[Tuple[str, int, int]]:
    """Greedy max-coverage ordering: the most useful vantage first, then
    whichever adds the most, and so on (the planner's view)."""
    remaining = {name: set(interfaces) for name, interfaces in results.items()}
    seen: Set[int] = set()
    rows: List[Tuple[str, int, int]] = []
    while remaining:
        name = max(remaining, key=lambda key: len(remaining[key] - seen))
        fresh = len(remaining[name] - seen)
        seen |= remaining.pop(name)
        rows.append((name, fresh, len(seen)))
    return rows


def overlap_matrix(
    results: Mapping[str, Set[int]]
) -> Dict[Tuple[str, str], float]:
    """Pairwise Jaccard similarity of vantages' interface sets."""
    matrix: Dict[Tuple[str, str], float] = {}
    for a, b in combinations(sorted(results), 2):
        union = results[a] | results[b]
        matrix[(a, b)] = (
            len(results[a] & results[b]) / len(union) if union else 1.0
        )
    return matrix


def interfaces_by_vantage(
    campaigns: Iterable[CampaignResult],
) -> Dict[str, Set[int]]:
    """Group campaign results by vantage, unioning their interfaces."""
    grouped: Dict[str, Set[int]] = {}
    for result in campaigns:
        grouped.setdefault(result.vantage, set()).update(result.interfaces)
    return grouped
