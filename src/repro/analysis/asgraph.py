"""AS-level topology views of trace results.

The paper positions its interface-level work against AS-level studies
(Section 2): Dhamdhere et al. traced the AS-level IPv6 topology's
evolution and found a single transit AS (Hurricane Electric) on 20–95%
of observed AS paths; Czyz et al. k-core analysis showed the IPv6 AS
graph's core to be small and richly connected.  This module derives the
same views from our traces:

* per-trace AS paths (hop addresses attributed via the registry);
* the AS-level graph and its k-core decomposition;
* transit dominance — the fraction of AS paths each ASN appears on.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from .subnets import AsnResolver
from .traces import Trace


def as_path(trace: Trace, resolver: AsnResolver) -> List[int]:
    """The trace's AS-level path: consecutive duplicate ASNs collapsed,
    unattributable hops skipped."""
    path: List[int] = []
    for hop in trace.path:
        if hop is None:
            continue
        asn = resolver.asn_of(hop)
        if asn is None:
            continue
        if not path or path[-1] != asn:
            path.append(asn)
    return path


def as_level_graph(
    traces: Mapping[int, Trace], resolver: AsnResolver
) -> nx.Graph:
    """AS adjacency graph over all traces' AS paths."""
    graph = nx.Graph()
    for trace in traces.values():
        path = as_path(trace, resolver)
        for asn in path:
            graph.add_node(asn)
        for a, b in zip(path, path[1:]):
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph


def k_core_summary(graph: nx.Graph) -> Dict[str, float]:
    """Czyz-style k-core reading: the innermost core's k and size, plus
    how concentrated connectivity is (core share of all edges)."""
    if graph.number_of_nodes() == 0:
        return {"max_k": 0, "core_size": 0, "core_edge_share": 0.0}
    cores = nx.core_number(graph)
    max_k = max(cores.values())
    core_nodes = {node for node, k in cores.items() if k == max_k}
    core_edges = sum(
        1 for a, b in graph.edges if a in core_nodes and b in core_nodes
    )
    return {
        "max_k": max_k,
        "core_size": len(core_nodes),
        "core_edge_share": core_edges / graph.number_of_edges()
        if graph.number_of_edges()
        else 0.0,
    }


def transit_dominance(
    traces: Mapping[int, Trace], resolver: AsnResolver
) -> List[Tuple[int, float]]:
    """Per ASN: the fraction of AS paths it appears on (excluding the
    path's own terminal AS), sorted descending — the Hurricane Electric
    statistic."""
    appearances: Counter = Counter()
    total = 0
    for trace in traces.values():
        path = as_path(trace, resolver)
        if len(path) < 2:
            continue
        total += 1
        # Sorted so equal-count ASes rank deterministically in
        # most_common() (Counter breaks ties by insertion order).
        for asn in sorted(set(path[:-1])):
            appearances[asn] += 1
    if not total:
        return []
    ranked = [
        (asn, count / total) for asn, count in appearances.most_common()
    ]
    return ranked


def path_asn_lengths(
    traces: Mapping[int, Trace], resolver: AsnResolver
) -> List[int]:
    """AS-path length per trace (for distribution reporting)."""
    return [
        len(as_path(trace, resolver))
        for trace in traces.values()
        if trace.hops
    ]
