"""Plain-text table and series rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and legible.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple


def format_count(value: float) -> str:
    """Human-scale count formatting in the paper's style (1.3M, 45.5k)."""
    if value >= 1_000_000:
        return "%.1fM" % (value / 1_000_000)
    if value >= 1_000:
        return "%.1fk" % (value / 1_000)
    if isinstance(value, float) and not value.is_integer():
        return "%.2f" % value
    return "%d" % value


def format_fraction(value: float) -> str:
    return "%.1f%%" % (100.0 * value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    name: str, points: Iterable[Tuple[float, float]], x_label: str, y_label: str
) -> str:
    """One figure series as aligned (x, y) pairs."""
    lines = ["%s  [%s -> %s]" % (name, x_label, y_label)]
    for x, y in points:
        lines.append("  %12g  %12g" % (x, y))
    return "\n".join(lines)


def render_cdf(
    series: Mapping[str, Sequence[Tuple[int, float]]], x_label: str
) -> str:
    """Several CDFs side by side, bins as rows."""
    names = list(series)
    bins = [edge for edge, _ in series[names[0]]] if names else []
    headers = [x_label] + names
    rows = []
    for index, edge in enumerate(bins):
        row = [edge] + ["%.3f" % series[name][index][1] for name in names]
        rows.append(row)
    return render_table(headers, rows)
