"""Trace reconstruction: unordered probe records → per-target paths.

Yarrp6 decouples probing from topology construction (Section 4.1): its
output is an unordered stream of (target, TTL, responder) records.  This
module reassembles them into per-target traces for path-level analysis —
path lengths, reach determination, last-hop identification, and the
hop sequences subnet inference consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..addrs.address import PREFIX_MASK
from ..prober.records import ProbeRecord


class Trace:
    """The reassembled view of probing toward one target."""

    __slots__ = ("target", "hops", "terminal_label", "terminal_hop")

    def __init__(self, target: int):
        self.target = target
        #: TTL -> responding interface address (Time Exceeded sources).
        self.hops: Dict[int, int] = {}
        #: Label of the terminal (non-TE) response, if any.
        self.terminal_label: Optional[str] = None
        #: Source of the terminal response, if any.
        self.terminal_hop: Optional[int] = None

    def add(self, record: ProbeRecord) -> None:
        if record.is_time_exceeded:
            # Keep the first responder per TTL (load balancing can, in
            # principle, alternate; Paris-constant headers make repeats
            # agree anyway).
            self.hops.setdefault(record.ttl, record.hop)
        else:
            self.terminal_label = record.label
            self.terminal_hop = record.hop

    @property
    def max_responded_ttl(self) -> int:
        """Highest TTL that drew a Time Exceeded (0 when none did)."""
        return max(self.hops) if self.hops else 0

    @property
    def path(self) -> List[Optional[int]]:
        """Hop addresses indexed by TTL-1, None where hops went missing."""
        length = self.max_responded_ttl
        return [self.hops.get(ttl) for ttl in range(1, length + 1)]

    @property
    def path_length(self) -> int:
        """Measured path length: the last responsive hop index."""
        return self.max_responded_ttl

    @property
    def complete(self) -> bool:
        """True when no hop is missing up to the last responsive one."""
        return all(hop is not None for hop in self.path)

    @property
    def reached(self) -> bool:
        """Did probing reach the target or its LAN?

        True when the target itself answered (echo reply / port
        unreachable sourced by the target), or when the last Time
        Exceeded came from inside the target's own /64 — the "IA hack"
        inference of Section 6.
        """
        if self.terminal_hop == self.target:
            return True
        if self.last_hop is not None:
            return self.last_hop & PREFIX_MASK == self.target & PREFIX_MASK
        return False

    @property
    def last_hop(self) -> Optional[int]:
        """The deepest responding interface address (TE sources only)."""
        if not self.hops:
            return None
        return self.hops[max(self.hops)]

    def __repr__(self) -> str:
        return "Trace(len=%d%s)" % (
            self.path_length,
            ", reached" if self.reached else "",
        )


def build_traces(records: Iterable[ProbeRecord]) -> Dict[int, Trace]:
    """Group records by target into traces."""
    traces: Dict[int, Trace] = {}
    for record in records:
        trace = traces.get(record.target)
        if trace is None:
            trace = traces[record.target] = Trace(record.target)
        trace.add(record)
    return traces


def path_length_stats(traces: Iterable[Trace]) -> Tuple[int, float, int]:
    """(median, mean, 95th percentile) of measured path lengths over
    traces that drew at least one response (Table 7 columns)."""
    lengths = sorted(
        trace.path_length for trace in traces if trace.path_length > 0
    )
    if not lengths:
        return 0, 0.0, 0
    median = lengths[len(lengths) // 2]
    mean = sum(lengths) / len(lengths)
    p95 = lengths[min(len(lengths) - 1, int(len(lengths) * 0.95))]
    return median, mean, p95


def reach_fraction(traces: Iterable[Trace]) -> float:
    """Fraction of traces that reached their target (Table 7)."""
    traces = list(traces)
    if not traces:
        return 0.0
    return sum(1 for trace in traces if trace.reached) / len(traces)
