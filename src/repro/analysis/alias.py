"""Alias resolution: fragment-Identification sequence clustering.

Takes speedtrap samples — (interface address, time, Identification) —
and groups interfaces that share one router-wide counter.  Two address
sets belong together when their interleaved samples form a single
monotonic sequence whose slope stays within a velocity tolerance; the
clusterer sorts candidates by estimated counter *intercept* so that only
plausible neighbours are pairwise-tested (Luckie et al.'s approach,
adapted), then merges with union–find.

The resolved clusters turn the paper's interface-level results into
router-level topology (Section 7.2's future work), and the simulator's
ground truth grades precision/recall exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from ..prober.speedtrap import IdSample

_WRAP = 1 << 32


@dataclass(frozen=True)
class AliasParams:
    """Sequence-test tolerances."""

    #: Maximum plausible counter velocity (IDs per second): probing
    #: contributes ~1 per sample; background drift adds the rest.
    max_velocity: float = 50.0
    #: Slack added to every gap bound (scheduling jitter, bursts).
    slack: int = 10
    #: How many intercept-sorted neighbours each address is tested against.
    neighbor_window: int = 8
    #: Minimum samples per address to participate at all.
    min_samples: int = 2
    #: Tolerated reply-time reordering: the counter advances at the
    #: router, but replies from different interfaces ride paths with
    #: different RTTs, so receive times may invert by up to this much.
    time_jitter_us: int = 150_000


class _UnionFind:
    def __init__(self, items: Iterable[int]):
        self._parent = {item: item for item in items}

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def clusters(self) -> List[Set[int]]:
        groups: Dict[int, Set[int]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), set()).add(item)
        return list(groups.values())


def _unwrap(ids: Sequence[int]) -> List[int]:
    """Undo 32-bit wraparound in a near-monotonic ID sequence."""
    result = []
    offset = 0
    previous = None
    for value in ids:
        if previous is not None and value + offset < previous - _WRAP // 2:
            offset += _WRAP
        unwrapped = value + offset
        result.append(unwrapped)
        previous = unwrapped
    return result


def sequence_compatible(
    samples_a: Sequence[IdSample],
    samples_b: Sequence[IdSample],
    params: AliasParams = AliasParams(),
) -> bool:
    """True when the merged samples could come from one shared counter.

    Ordered by (unwrapped) Identification, the observation times must be
    non-decreasing up to reply-path jitter, and each ID gap must be
    explainable by the velocity tolerance over the elapsed time — a
    random or per-interface counter fails one test or the other.
    """
    merged = sorted(
        list(samples_a) + list(samples_b), key=lambda sample: sample.time_us
    )
    ids = _unwrap([sample.identification for sample in merged])
    order = sorted(range(len(merged)), key=lambda index: ids[index])
    for position in range(1, len(order)):
        current = merged[order[position]]
        previous = merged[order[position - 1]]
        delta_id = ids[order[position]] - ids[order[position - 1]]
        if delta_id == 0:
            # Distinct samples can't share an Identification.
            return False
        delta_t = current.time_us - previous.time_us
        if delta_t < -params.time_jitter_us:
            # The counter ran backwards in time beyond jitter: not one
            # counter.
            return False
        bound = params.slack + params.max_velocity * max(delta_t, 0) / 1_000_000
        if delta_id > bound:
            return False
    return True


def _self_consistent(samples: Sequence[IdSample], params: AliasParams) -> bool:
    """An address's own samples must form a plausible sequence (guards
    against responders with per-interface or random counters)."""
    ordered = sorted(samples, key=lambda sample: sample.time_us)
    return sequence_compatible(ordered[: len(ordered) // 2], ordered[len(ordered) // 2 :], params)


def resolve_aliases(
    samples: Mapping[int, Sequence[IdSample]],
    params: AliasParams = AliasParams(),
) -> List[Set[int]]:
    """Cluster interface addresses into routers.

    Addresses with too few samples, or whose own samples are not
    sequence-consistent, come back as singletons.
    """
    eligible = {
        address: sorted(address_samples, key=lambda sample: sample.time_us)
        for address, address_samples in samples.items()
        if len(address_samples) >= params.min_samples
    }
    eligible = {
        address: address_samples
        for address, address_samples in eligible.items()
        if _self_consistent(address_samples, params)
    }
    union = _UnionFind(samples.keys())

    # Sort by estimated counter intercept: aliases sit adjacent.
    def intercept(address: int) -> float:
        first = eligible[address][0]
        ids = _unwrap([sample.identification for sample in eligible[address]])
        if len(ids) > 1:
            dt = eligible[address][-1].time_us - first.time_us
            velocity = (ids[-1] - ids[0]) / dt * 1_000_000 if dt else 0.0
        else:
            velocity = 0.0
        return ids[0] - velocity * first.time_us / 1_000_000

    ordered = sorted(eligible, key=intercept)
    for index, address in enumerate(ordered):
        for offset in range(1, params.neighbor_window + 1):
            if index + offset >= len(ordered):
                break
            other = ordered[index + offset]
            if union.find(address) == union.find(other):
                continue
            if sequence_compatible(eligible[address], eligible[other], params):
                union.union(address, other)
    return union.clusters()


@dataclass
class AliasAccuracy:
    """Pairwise precision/recall of resolved clusters against truth."""

    true_pairs: int
    inferred_pairs: int
    correct_pairs: int

    @property
    def precision(self) -> float:
        return self.correct_pairs / self.inferred_pairs if self.inferred_pairs else 1.0

    @property
    def recall(self) -> float:
        return self.correct_pairs / self.true_pairs if self.true_pairs else 1.0


def _pairs(clusters: Iterable[Iterable[int]]) -> Set[Tuple[int, int]]:
    result: Set[Tuple[int, int]] = set()
    for cluster in clusters:
        members = sorted(cluster)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                result.add((a, b))
    return result


def score_against_truth(
    clusters: Iterable[Iterable[int]],
    truth_clusters: Iterable[Iterable[int]],
) -> AliasAccuracy:
    """Pairwise comparison: of all address pairs placed together, how many
    truly share a router (precision), and how many true alias pairs were
    recovered (recall)?  Truth is restricted to the probed addresses."""
    inferred = _pairs(clusters)
    probed: Set[int] = set()
    for cluster in clusters:
        probed.update(cluster)
    truth = {
        pair
        for pair in _pairs(truth_clusters)
        if pair[0] in probed and pair[1] in probed
    }
    return AliasAccuracy(
        true_pairs=len(truth),
        inferred_pairs=len(inferred),
        correct_pairs=len(inferred & truth),
    )


def truth_clusters_for(
    addresses: Iterable[int], router_addresses: Mapping[int, object]
) -> List[Set[int]]:
    """Ground-truth alias clusters over the given addresses."""
    by_router: Dict[int, Set[int]] = {}
    for address in addresses:
        router = router_addresses.get(address)
        if router is None:
            continue
        by_router.setdefault(id(router), set()).add(address)
    return list(by_router.values())
