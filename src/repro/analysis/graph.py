"""Topology graph construction: interface-level and router-level views.

The paper publishes interface-level topology and names router-level
graphs (via alias resolution) as the follow-on (Section 7.2) — the
pipeline CAIDA's ITDK runs.  This module builds both:

* the **interface graph**: nodes are responding interface addresses,
  edges join interfaces seen at consecutive responsive hops of a trace
  (an "IP link" in the measurement literature);
* the **router graph**: interface nodes collapsed through alias
  clusters, de-duplicating parallel IP links between the same routers.

Graphs are `networkx` objects, annotated with AS attribution where the
registry resolves it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from ..addrs.trie import PrefixTrie
from .traces import Trace


def interface_graph(
    traces: Mapping[int, Trace],
    registry: Optional[PrefixTrie] = None,
    allow_gaps: bool = False,
) -> nx.Graph:
    """Build the interface-level graph from reassembled traces.

    Edges join addresses at hop distances (h, h+1) of one trace; with
    ``allow_gaps`` a single missing hop is bridged (h, h+2) — a common,
    clearly-marked inference in IP topology work.
    """
    graph = nx.Graph()
    for trace in traces.values():
        path = trace.path
        for index, hop in enumerate(path):
            if hop is None:
                continue
            graph.add_node(hop)
            nxt = path[index + 1] if index + 1 < len(path) else None
            if nxt is not None:
                graph.add_edge(hop, nxt, inferred=False)
            elif (
                allow_gaps
                and index + 2 < len(path)
                and path[index + 2] is not None
            ):
                graph.add_edge(hop, path[index + 2], inferred=True)
    if registry is not None:
        for node in graph.nodes:
            match = registry.longest_match(node)
            graph.nodes[node]["asn"] = match[1] if match else None
    return graph


def router_graph(
    interfaces: nx.Graph, alias_clusters: Iterable[Iterable[int]]
) -> nx.Graph:
    """Collapse an interface graph through alias clusters.

    Every interface maps to its cluster representative (singletons map
    to themselves); parallel interface links between two routers merge
    into one weighted edge.
    """
    representative: Dict[int, int] = {}
    for cluster in alias_clusters:
        members = sorted(cluster)
        for member in members:
            representative[member] = members[0]

    graph = nx.Graph()
    for node in interfaces.nodes:
        router = representative.get(node, node)
        if not graph.has_node(router):
            graph.add_node(router, interfaces=set())
        graph.nodes[router]["interfaces"].add(node)
        if "asn" in interfaces.nodes[node]:
            graph.nodes[router].setdefault("asn", interfaces.nodes[node]["asn"])
    for a, b, data in interfaces.edges(data=True):
        ra, rb = representative.get(a, a), representative.get(b, b)
        if ra == rb:
            continue  # intra-router "link": an alias artifact
        if graph.has_edge(ra, rb):
            graph[ra][rb]["weight"] += 1
        else:
            graph.add_edge(ra, rb, weight=1, inferred=data.get("inferred", False))
    return graph


def graph_summary(graph: nx.Graph) -> Dict[str, float]:
    """Headline statistics for reporting."""
    if graph.number_of_nodes() == 0:
        return {"nodes": 0, "edges": 0, "components": 0, "mean_degree": 0.0}
    degrees = [degree for _, degree in graph.degree()]
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "components": nx.number_connected_components(graph),
        "mean_degree": sum(degrees) / len(degrees),
        "max_degree": max(degrees),
    }


def edge_accuracy(
    graph: nx.Graph, truth_adjacent: Set[Tuple[int, int]]
) -> Tuple[float, int]:
    """Fraction of non-inferred graph edges present in ground-truth
    adjacency (and the count checked).  ``truth_adjacent`` holds
    canonically ordered node pairs."""
    checked = 0
    correct = 0
    for a, b, data in graph.edges(data=True):
        if data.get("inferred"):
            continue
        checked += 1
        if (min(a, b), max(a, b)) in truth_adjacent:
            correct += 1
    return (correct / checked if checked else 1.0), checked
