"""Command-line interface: the ``repro-sim`` tool."""

from .main import build_parser, main
from .worldcfg import config_from_dict, config_to_dict, load_config, save_config

__all__ = [
    "build_parser",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "main",
    "save_config",
]
