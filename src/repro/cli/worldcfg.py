"""World-configuration serialization for the CLI.

Worlds are fully determined by their :class:`InternetConfig`, so the CLI
persists a small JSON document instead of a pickled topology; every
command regenerates the identical world from it (generation costs well
under a second at CLI scales).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, TextIO

from ..netsim.build import InternetConfig, VantageConfig

#: Keys that deserialize into nested VantageConfig objects.
_VANTAGE_KEY = "vantages"


def config_to_dict(config: InternetConfig) -> Dict[str, Any]:
    data = asdict(config)
    data[_VANTAGE_KEY] = [asdict(vantage) for vantage in config.vantages]
    return data


def config_from_dict(data: Dict[str, Any]) -> InternetConfig:
    payload = dict(data)
    vantages = payload.pop(_VANTAGE_KEY, None)
    # JSON has no tuples; the dataclass fields that are tuples need
    # coercion back.
    for key, value in list(payload.items()):
        if isinstance(value, list):
            payload[key] = tuple(value)
    if vantages is not None:
        payload[_VANTAGE_KEY] = tuple(
            VantageConfig(
                name=entry["name"],
                premise_hops=entry.get("premise_hops", 3),
                premise_limit=tuple(entry.get("premise_limit", (200.0, 60.0))),
                aggressive_hops=tuple(entry.get("aggressive_hops", ())),
                aggressive_limit=tuple(entry.get("aggressive_limit", (40.0, 10.0))),
            )
            for entry in vantages
        )
    return InternetConfig(**payload)


def save_config(sink: TextIO, config: InternetConfig) -> None:
    json.dump(config_to_dict(config), sink, indent=2)
    sink.write("\n")


def load_config(source: TextIO) -> InternetConfig:
    return config_from_dict(json.load(source))
