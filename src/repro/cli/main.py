"""``repro-sim`` — the command-line face of the library.

Subcommands compose into the paper's workflow::

    repro-sim world --edge 120 --cpe 2000 --out world.json
    repro-sim seeds --world world.json --source tum --out tum.seeds
    repro-sim targets --seeds tum.seeds --level 64 --out tum.targets
    repro-sim probe --world world.json --vantage EU-NET \\
                    --targets tum.targets --pps 1000 --fill --out run.yrp6
    repro-sim analyze --results run.yrp6 --world world.json --subnets

Seed and target files hold one address or ``addr/len`` prefix per line
(``#`` comments allowed); probe output uses the ``.yrp6`` row format.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional, Sequence, TextIO

from .. import __version__
from ..addrs import address, format_address
from ..addrs.prefix import Prefix
from ..analysis import (
    AsnResolver,
    build_traces,
    discover_by_path_div,
    format_count,
    graph_summary,
    interface_graph,
    path_length_stats,
    reach_fraction,
    render_table,
)
from ..hitlist import make_targets
from ..hitlist.transform import SeedItem
from ..netsim import Internet, InternetConfig, build_internet
from ..obs import (
    NULL_PROFILER,
    ManifestError,
    MetricsRegistry,
    Stopwatch,
    WallProfiler,
    build_manifest,
    read_manifest,
    write_chrome_trace,
    write_manifest,
)
from ..prober import (
    CampaignSpec,
    SuperviseConfig,
    Yarrp6Config,
    run_doubletree,
    run_parallel,
    run_sequential,
    run_yarrp6,
)
from ..lint.detsan import DetSan, hash_seed_pinned
from ..lint.shardsan import ShardSan
from ..prober import parallel as _parallel
from ..prober.output import dumps, load_campaign, save_campaign
from ..seeds import build_all_seeds
from .worldcfg import load_config, save_config


def _read_items(path: str) -> List[SeedItem]:
    items: List[SeedItem] = []
    with open(path) as source:
        for line in source:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if "/" in line:
                items.append(Prefix.parse(line))
            else:
                items.append(address.parse(line))
    return items


def _write_items(path: str, items: Sequence[SeedItem]) -> None:
    with open(path, "w") as sink:
        for item in items:
            if isinstance(item, Prefix):
                sink.write("%s\n" % item)
            else:
                sink.write("%s\n" % format_address(item))


def cmd_world(args: argparse.Namespace, out: TextIO) -> int:
    config = InternetConfig(
        seed=args.seed,
        n_edge=args.edge,
        cpe_customers_per_isp=args.cpe,
    )
    with open(args.out, "w") as sink:
        save_config(sink, config)
    built = build_internet(config)
    out.write(
        "world written to %s: %d ASes, %d routers, %d leaf /64s, %d hosts\n"
        % (
            args.out,
            len(built.truth.ases),
            len(built.truth.routers),
            len(built.truth.subnets),
            len(built.truth.all_host_addresses()),
        )
    )
    return 0


def _load_world(path: str):
    with open(path) as source:
        return build_internet(load_config(source))


def cmd_seeds(args: argparse.Namespace, out: TextIO) -> int:
    built = _load_world(args.world)
    seeds = build_all_seeds(
        built,
        random_count=args.random_count,
        sixgen_budget=args.sixgen_budget,
        cdn_k32=args.cdn_k32,
        cdn_k256=args.cdn_k256,
    )
    if args.source not in seeds:
        out.write(
            "unknown source %r; available: %s\n"
            % (args.source, ", ".join(sorted(seeds)))
        )
        return 2
    seed_list = seeds[args.source]
    _write_items(args.out, seed_list.items)
    out.write(
        "%s: %d items written to %s\n" % (seed_list.name, len(seed_list), args.out)
    )
    return 0


def cmd_targets(args: argparse.Namespace, out: TextIO) -> int:
    items = _read_items(args.seeds)
    target_set = make_targets("cli", items, level=args.level, method=args.method)
    _write_items(args.out, list(target_set.addresses))
    out.write(
        "%d targets (%s, %s) written to %s\n"
        % (len(target_set), target_set.transformation, target_set.synthesis, args.out)
    )
    return 0


_PROBERS = {
    "yarrp6": run_yarrp6,
    "sequential": run_sequential,
    "doubletree": run_doubletree,
}


def cmd_probe(args: argparse.Namespace, out: TextIO) -> int:
    targets = [item for item in _read_items(args.targets) if isinstance(item, int)]
    if not targets:
        out.write("no targets in %s\n" % args.targets)
        return 2
    workers = getattr(args, "workers", 1)
    supervise = SuperviseConfig(
        shard_timeout_s=getattr(args, "shard_timeout", None),
        max_retries=getattr(args, "max_retries", 0),
        degrade=getattr(args, "degrade", "fail"),
    )
    metrics_path = getattr(args, "metrics", None)
    detsan = getattr(args, "detsan", False)
    shardsan = getattr(args, "shardsan", False)
    allocsan = getattr(args, "allocsan", False)
    allocsan_report = getattr(args, "allocsan_report", None)
    profile_path = getattr(args, "profile", None)
    if sum((detsan, shardsan, allocsan)) > 1:
        out.write("--detsan, --shardsan and --allocsan are mutually exclusive\n")
        return 2
    if allocsan and profile_path:
        out.write(
            "--profile and --allocsan are mutually exclusive (allocsan runs "
            "its own profiler under tracemalloc)\n"
        )
        return 2
    if allocsan and workers > 1:
        out.write(
            "--allocsan requires --workers 1 (the hot phase runs inside "
            "worker processes tracemalloc cannot observe)\n"
        )
        return 2
    if allocsan_report and not allocsan:
        out.write("--allocsan-report requires --allocsan\n")
        return 2
    if shardsan and args.prober != "yarrp6":
        out.write("--shardsan requires the yarrp6 prober (shared-world shards)\n")
        return 2
    if shardsan and profile_path:
        out.write(
            "--profile and --shardsan are mutually exclusive (shardsan runs "
            "its own shard-width sweep)\n"
        )
        return 2
    # The stopwatch is the run's only wall-clock read (top-level boundary,
    # reporting only — see repro.obs.wallclock); it never touches the sim.
    stopwatch = Stopwatch() if metrics_path else None
    with open(args.world) as source:
        world_config = load_config(source)
    if workers > 1 and args.prober != "yarrp6":
        out.write("--workers requires the yarrp6 prober (stateless shards)\n")
        return 2

    # One profiler per campaign execution (detsan runs the campaign twice;
    # the reported profile is the last, clean run's).  Profiling is
    # observe-only: the .yrp6 bytes are identical with and without it.
    profilers: List[WallProfiler] = []

    def run_once(prof=None):
        if prof is None:
            prof = WallProfiler() if profile_path else NULL_PROFILER
        profilers.append(prof)
        with prof.phase("probe", prober=args.prober, workers=workers):
            if workers > 1:
                spec = CampaignSpec(
                    internet=world_config,
                    vantage=args.vantage,
                    targets=tuple(targets),
                    pps=args.pps,
                    config=Yarrp6Config(max_ttl=args.max_ttl, fill=args.fill),
                    metrics=metrics_path is not None,
                )
                return run_parallel(
                    spec, shards=workers, profiler=prof, supervise=supervise
                )
            internet = Internet.from_config(world_config, profiler=prof)
            runner = _PROBERS[args.prober]
            kwargs = {}
            if args.prober == "yarrp6":
                kwargs = {"max_ttl": args.max_ttl, "fill": args.fill}
            registry = MetricsRegistry() if metrics_path else None
            return runner(
                internet,
                args.vantage,
                targets,
                pps=args.pps,
                metrics=registry,
                profiler=prof,
                **kwargs,
            )

    if detsan:
        # Dynamic cross-check of the static determinism rules: run the
        # campaign under the sanitizer (record mode — finish the run,
        # collect every tripwire hit), then rerun clean and demand a
        # byte-identical dump.
        if not hash_seed_pinned():
            out.write(
                "--detsan requires PYTHONHASHSEED pinned to a fixed integer "
                "(hash randomization is per-process nondeterminism)\n"
            )
            return 2
        with DetSan(mode="record", scope="repro") as sanitizer:
            instrumented = run_once()
        result = run_once()
        if sanitizer.reports:
            for report in sanitizer.reports[:20]:
                out.write("detsan: %s\n" % report.summary())
            out.write(
                "detsan: %d nondeterminism report(s) — campaign is outside "
                "the determinism contract\n" % len(sanitizer.reports)
            )
            return 1
        if dumps(instrumented) != dumps(result):
            out.write(
                "detsan: instrumented dump differs from clean rerun — "
                "sanitizer instrumentation perturbed the campaign\n"
            )
            return 1
        out.write("detsan: clean (0 reports, dump byte-identical to rerun)\n")
    elif shardsan:
        # Runtime counterpart of the MUT101 static proof: run the same
        # campaign at shard widths 1, 2 and 4 against ONE watched world
        # (serial in-process sharding, so every shard really touches the
        # same objects) and demand zero writes to unregistered state.
        spec = CampaignSpec(
            internet=world_config,
            vantage=args.vantage,
            targets=tuple(targets),
            pps=args.pps,
            config=Yarrp6Config(max_ttl=args.max_ttl, fill=args.fill),
            metrics=metrics_path is not None,
        )
        result = None
        for shards in (1, 2, 4):
            with ShardSan(mode="record", scope="repro") as sanitizer:
                watched = sanitizer.watch(_parallel._world_for(spec.internet))
                sharded = run_parallel(spec, shards=shards, processes=1)
            if sanitizer.reports:
                for report in sanitizer.reports[:20]:
                    out.write("shardsan: %s\n" % report.summary())
                out.write(
                    "shardsan: %d unregistered write(s) at shards=%d — the "
                    "shared world is not shard-safe\n"
                    % (len(sanitizer.reports), shards)
                )
                return 1
            out.write(
                "shardsan: shards=%d clean (%d containers watched)\n"
                % (shards, watched)
            )
            if result is None:
                result = sharded
        out.write("shardsan: clean (0 unregistered writes across shards 1/2/4)\n")
    elif allocsan:
        # Runtime counterpart of the PERF101-103 static rules: account
        # tracemalloc bytes and allocator blocks around the hot
        # campaign.run phase and enforce the per-probe / per-batch
        # allocation budgets.  Observe-only: the .yrp6 bytes are
        # identical to an unsanitized run.
        from repro.lint.allocsan import (
            AllocSanProfiler,
            build_report,
            check_budgets,
            write_report,
        )

        with AllocSanProfiler() as alloc_prof:
            result = run_once(alloc_prof)
        report = build_report(alloc_prof, result)
        if allocsan_report:
            write_report(allocsan_report, report)
            out.write("allocsan: budget report -> %s\n" % allocsan_report)
        blown = check_budgets(report)
        if blown:
            for failure in blown:
                out.write("allocsan: %s\n" % failure)
            out.write(
                "allocsan: %d budget violation(s) — the hot path allocates "
                "beyond its contract\n" % len(blown)
            )
            return 1
        tracked = report["tracked"]
        out.write(
            "allocsan: clean (%.1f bytes/probe <= %.0f, %.1f blocks/batch "
            "<= %.0f over %d probes / %d batches)\n"
            % (
                tracked["allocsan.bytes_per_probe"]["value"],
                report["budgets"]["allocsan.bytes_per_probe"],
                tracked["allocsan.blocks_per_batch"]["value"],
                report["budgets"]["allocsan.blocks_per_batch"],
                report["probes"],
                report["batches"],
            )
        )
    else:
        result = run_once()
    rows = save_campaign(args.out, result)
    out.write(
        "%s from %s: %d probes, %d responses, %d interfaces; %d rows -> %s\n"
        % (
            args.prober,
            args.vantage,
            result.sent,
            len(result.records),
            len(result.interfaces),
            rows,
            args.out,
        )
    )
    wall_profile = None
    if profile_path and profilers:
        profiler = profilers[-1]
        profiler.validate()
        wall_profile = profiler.to_profile_dict()
        write_chrome_trace(profile_path, profiler)
        out.write(profiler.report() + "\n")
        out.write(
            "profile: %.1f%% of %.4fs attributed; Perfetto trace -> %s\n"
            % (
                100.0 * wall_profile["coverage"],
                wall_profile["total_seconds"],
                profile_path,
            )
        )
    failures = getattr(result, "failures", None)
    if failures is not None:
        # Reporting only (the CLI is outside the OBS101 scope): surface
        # anything the supervisor had to do to finish the campaign.
        counts = {
            name: int(entry["value"])
            for name, entry in failures.get("metrics", {}).items()
        }
        if any(counts.values()):
            out.write(
                "supervise: %s\n"
                % ", ".join(
                    "%s=%d" % (name, value)
                    for name, value in sorted(counts.items())
                    if value
                )
            )
    if metrics_path:
        manifest = build_manifest(
            result,
            seed=world_config.seed,
            metrics=result.metrics,
            world=dataclasses.asdict(world_config),
            records_file=args.out,
            workers=workers,
            wall_seconds=stopwatch.elapsed_seconds() if stopwatch else None,
            wall_profile=wall_profile,
            failures=failures,
        )
        write_manifest(metrics_path, manifest)
        out.write("manifest -> %s\n" % metrics_path)
    return 0


def cmd_stats(args: argparse.Namespace, out: TextIO) -> int:
    try:
        manifest = read_manifest(args.manifest)
    except (OSError, ManifestError) as error:
        out.write("%s\n" % error)
        return 2
    run = manifest.get("run", {})
    run_rows = [[key, run[key]] for key in sorted(run)]
    run_rows.append(["seed", manifest.get("seed")])
    if "wallclock" in manifest:
        run_rows.append(["wall seconds", "%.3f" % manifest["wallclock"]["seconds"]])
    if "failures" in manifest:
        counts = {
            name: int(entry["value"])
            for name, entry in manifest["failures"].get("metrics", {}).items()
        }
        summary = ", ".join(
            "%s=%d" % (name, value)
            for name, value in sorted(counts.items())
            if value
        )
        run_rows.append(["supervision", summary or "clean (no faults)"])
    out.write(render_table(["field", "value"], run_rows, title="run") + "\n")

    metrics = manifest.get("metrics") or {}
    scalar_rows = []
    series_rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("kind")
        if kind == "counter":
            scalar_rows.append([name, entry["value"]])
        elif kind == "counter_map":
            total = sum(value for _, value in entry["values"])
            scalar_rows.append([name, "%s over %d keys" % (total, len(entry["values"]))])
        elif kind == "gauge":
            scalar_rows.append(
                [name, "last=%s min=%s max=%s" % (entry["last"], entry["min"], entry["max"])]
            )
        elif kind == "histogram":
            scalar_rows.append([name, "%d samples" % sum(entry["counts"])])
        elif kind == "series":
            total = sum(value for _, value in entry["points"])
            series_rows.append([name, len(entry["points"]), total])
    if scalar_rows:
        out.write(render_table(["metric", "value"], scalar_rows, title="metrics") + "\n")
    if series_rows:
        out.write(
            render_table(["series", "buckets", "total"], series_rows, title="series")
            + "\n"
        )

    top = getattr(args, "top", 0) or 0
    if top > 0:
        ttl_entry = metrics.get("prober.ttl_yield")
        if ttl_entry and ttl_entry.get("kind") == "counter_map":
            ranked = sorted(
                ttl_entry["values"], key=lambda item: (-item[1], item[0])
            )
            ttl_rows = [
                [str(key), value] for key, value in ranked[:top]
            ]
            out.write(
                render_table(
                    ["ttl", "responses"],
                    ttl_rows,
                    title="top %d TTL yield" % top,
                )
                + "\n"
            )
        profile = manifest.get("wallclock", {}).get("profile")
        if profile:
            phases = sorted(
                profile.get("phases", []),
                key=lambda row: -row["self_seconds"],
            )
            phase_rows = [
                [
                    row["path"],
                    row["count"],
                    "%.4f" % row["self_seconds"],
                    "%.4f" % row["total_seconds"],
                ]
                for row in phases[:top]
            ]
            out.write(
                render_table(
                    ["phase", "count", "self(s)", "total(s)"],
                    phase_rows,
                    title="top %d profiler phases by self time" % top,
                )
                + "\n"
            )
    return 0


def cmd_analyze(args: argparse.Namespace, out: TextIO) -> int:
    loaded = load_campaign(args.results)
    traces = build_traces(loaded.records)
    median, mean, p95 = path_length_stats(traces.values())
    rows = [
        ["responses", format_count(len(loaded.records))],
        ["unique interfaces", format_count(len(loaded.interfaces))],
        ["traces with responses", format_count(len(traces))],
        ["reach-target fraction", "%.1f%%" % (100 * reach_fraction(traces.values()))],
        ["path length median/mean/p95", "%d / %.1f / %d" % (median, mean, p95)],
    ]
    if loaded.skipped_rows:
        rows.append(["malformed rows skipped", str(loaded.skipped_rows)])
    out.write(render_table(["metric", "value"], rows, title="campaign summary") + "\n")

    if args.graph:
        graph = interface_graph(traces)
        stats = graph_summary(graph)
        out.write(
            "interface graph: %d nodes, %d edges, %d components\n"
            % (stats["nodes"], stats["edges"], stats["components"])
        )

    if args.subnets:
        if not args.world:
            out.write("--subnets needs --world for ASN attribution\n")
            return 2
        built = _load_world(args.world)
        resolver = AsnResolver(built.truth.registry, built.truth.equivalent_asns)
        candidates = discover_by_path_div(traces, resolver)
        histogram = candidates.length_histogram()
        out.write(
            "subnets: %d candidates, %d IA-hack /64s\n"
            % (len(candidates.candidate_prefixes), len(candidates.ia_subnets))
        )
        for length in sorted(histogram):
            out.write("  /%d: %d\n" % (length, histogram[length]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="IPv6 topology discovery reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    world = commands.add_parser("world", help="generate a world config")
    world.add_argument("--seed", type=int, default=2018)
    world.add_argument("--edge", type=int, default=120)
    world.add_argument("--cpe", type=int, default=1500)
    world.add_argument("--out", required=True)
    world.set_defaults(handler=cmd_world)

    seeds = commands.add_parser("seeds", help="synthesize a hitlist seed source")
    seeds.add_argument("--world", required=True)
    seeds.add_argument("--source", required=True)
    seeds.add_argument("--random-count", type=int, default=10_000)
    seeds.add_argument("--sixgen-budget", type=int, default=20_000)
    seeds.add_argument("--cdn-k32", type=int, default=32)
    seeds.add_argument("--cdn-k256", type=int, default=256)
    seeds.add_argument("--out", required=True)
    seeds.set_defaults(handler=cmd_seeds)

    targets = commands.add_parser("targets", help="run the target pipeline")
    targets.add_argument("--seeds", required=True)
    targets.add_argument("--level", type=int, default=64)
    targets.add_argument(
        "--method",
        default="fixediid",
        choices=("fixediid", "lowbyte1", "random"),
    )
    targets.add_argument("--out", required=True)
    targets.set_defaults(handler=cmd_targets)

    probe = commands.add_parser("probe", help="run a probing campaign")
    probe.add_argument("--world", required=True)
    probe.add_argument("--vantage", default="US-EDU-1")
    probe.add_argument("--targets", required=True)
    probe.add_argument("--prober", default="yarrp6", choices=tuple(_PROBERS))
    probe.add_argument("--pps", type=float, default=1000.0)
    probe.add_argument("--max-ttl", type=int, default=16)
    probe.add_argument("--fill", action="store_true")
    probe.add_argument(
        "--workers",
        type=int,
        default=1,
        help="split the campaign into N permutation shards run in parallel "
        "worker processes (yarrp6 only)",
    )
    probe.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard wall-clock deadline: a worker attempt that outlives "
        "it is killed and counted as a timeout fault (--workers > 1; "
        "default: no deadline)",
    )
    probe.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run a crashed, killed, hung or corrupt shard up to N times "
        "(deterministic: a retried shard is byte-identical to a first "
        "try; default 0)",
    )
    probe.add_argument(
        "--degrade",
        choices=("fail", "serial"),
        default="fail",
        help="what to do when a shard exhausts its retries: 'fail' raises "
        "one ShardFailure naming every failed shard; 'serial' re-runs "
        "the exhausted shards in the parent process (default: fail)",
    )
    probe.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON run manifest (spec, seed, metric dump, wall time) "
        "to PATH alongside the .yrp6 output",
    )
    probe.add_argument(
        "--detsan",
        action="store_true",
        help="run under the DetSan determinism sanitizer: record any host "
        "time/entropy reads, rerun clean, and require a byte-identical "
        "dump (requires pinned PYTHONHASHSEED; exit 1 on any report)",
    )
    probe.add_argument(
        "--shardsan",
        action="store_true",
        help="run under the ShardSan shared-world sanitizer: execute the "
        "campaign at shard widths 1, 2 and 4 on one watched world and "
        "require zero writes to unregistered state (yarrp6 only; exit 1 "
        "on any report)",
    )
    probe.add_argument(
        "--allocsan",
        action="store_true",
        help="run under the AllocSan allocation-budget sanitizer: account "
        "tracemalloc bytes and allocator blocks around the hot "
        "campaign.run phase and enforce the per-probe / per-batch "
        "budgets (single process; exit 1 on a blown budget)",
    )
    probe.add_argument(
        "--allocsan-report",
        metavar="PATH",
        help="with --allocsan, write the budget report JSON (tracked "
        "section compatible with `python -m benchmarks.emit --baseline`) "
        "to PATH",
    )
    probe.add_argument(
        "--profile",
        metavar="PATH",
        help="profile the pipeline's wall-clock phases (world build, pool "
        "startup, shard execution, result pickling/IPC, merge), write a "
        "Perfetto-loadable Chrome trace to PATH and print the phase "
        "report; reporting only — the .yrp6 bytes are unchanged",
    )
    probe.add_argument("--out", required=True)
    probe.set_defaults(handler=cmd_probe)

    stats = commands.add_parser("stats", help="summarize a run manifest")
    stats.add_argument("manifest", help="manifest JSON written by probe --metrics")
    stats.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also render the top-N TTLs by response yield and, when the "
        "manifest has a wall-clock profile, the top-N profiler phases "
        "by self time",
    )
    stats.set_defaults(handler=cmd_stats)

    analyze = commands.add_parser("analyze", help="analyze campaign output")
    analyze.add_argument("--results", required=True)
    analyze.add_argument("--world")
    analyze.add_argument("--subnets", action="store_true")
    analyze.add_argument("--graph", action="store_true")
    analyze.set_defaults(handler=cmd_analyze)
    return parser


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args, out or sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
