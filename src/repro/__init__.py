"""repro — a full reproduction of "In the IP of the Beholder: Strategies
for Active IPv6 Topology Discovery" (Beverly, Durairajan, Plonka, Rohrer;
ACM IMC 2018).

Subpackages:

* :mod:`repro.addrs`    — IPv6 address machinery (parsing, prefixes,
  radix tries, DPL, IID classification).
* :mod:`repro.packet`   — byte-level IPv6/ICMPv6/TCP/UDP crafting.
* :mod:`repro.netsim`   — the simulated ground-truth IPv6 internet with a
  virtual-time event engine and RFC 4443 rate limiting.
* :mod:`repro.seeds`    — synthetic counterparts of the paper's seven
  hitlist seed sources.
* :mod:`repro.hitlist`  — the target pipeline: zn transformation, kIP
  anonymization, 6Gen generation, IID synthesis.
* :mod:`repro.prober`   — Yarrp6 (stateless randomized prober) plus
  sequential and Doubletree baselines, and campaign orchestration.
* :mod:`repro.analysis` — trace reconstruction, discovery metrics, and
  subnet inference (path divergence + the IA hack).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["addrs", "analysis", "hitlist", "netsim", "packet", "prober", "seeds"]
