"""Unit and property tests for repro.addrs.prefix."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import MAX_ADDRESS, AddressError
from repro.addrs.prefix import (
    Prefix,
    aggregate,
    host_mask_for,
    mask_for,
    merge_adjacent,
    spanning_prefix,
)

prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=MAX_ADDRESS),
    st.integers(min_value=0, max_value=128),
)


class TestConstruction:
    def test_base_masked(self):
        prefix = Prefix(address.parse("2001:db8::1"), 32)
        assert prefix.base == address.parse("2001:db8::")

    def test_parse_with_length(self):
        assert Prefix.parse("2001:db8::/32") == Prefix(address.parse("2001:db8::"), 32)

    def test_parse_bare_address(self):
        assert Prefix.parse("2001:db8::1").length == 128

    def test_parse_bad_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("::/xx")
        with pytest.raises(AddressError):
            Prefix.parse("::/129")

    def test_immutable(self):
        prefix = Prefix.parse("2001:db8::/32")
        with pytest.raises(AttributeError):
            prefix.length = 48

    def test_str_round_trip(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert Prefix.parse(str(prefix)) == prefix

    @given(prefixes)
    def test_equality_hash(self, prefix):
        clone = Prefix(prefix.base, prefix.length)
        assert clone == prefix
        # Prefix hashes (base, length) ints — PYTHONHASHSEED-free.
        assert hash(clone) == hash(prefix)  # repro-lint: disable=DET001


class TestContainment:
    def test_contains_base_and_last(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.contains(prefix.base)
        assert prefix.contains(prefix.last)
        assert not prefix.contains(prefix.last + 1)
        assert not prefix.contains(prefix.base - 1)

    def test_default_route_contains_everything(self):
        default = Prefix(0, 0)
        assert default.contains(0)
        assert default.contains(MAX_ADDRESS)

    def test_covers(self):
        wide = Prefix.parse("2001:db8::/32")
        narrow = Prefix.parse("2001:db8:1::/48")
        assert wide.covers(narrow)
        assert not narrow.covers(wide)
        assert wide.covers(wide)

    def test_size(self):
        assert Prefix.parse("::/128").size == 1
        assert Prefix.parse("::/64").size == 1 << 64

    @given(prefixes, st.integers(min_value=0, max_value=MAX_ADDRESS))
    def test_contains_consistent_with_range(self, prefix, value):
        assert prefix.contains(value) == (prefix.base <= value <= prefix.last)


class TestTransformations:
    def test_extend(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.extend(48) == Prefix.parse("2001:db8::/48")

    def test_extend_shorter_raises(self):
        with pytest.raises(AddressError):
            Prefix.parse("2001:db8::/48").extend(32)

    def test_truncate(self):
        prefix = Prefix.parse("2001:db8:abcd::/48")
        assert prefix.truncate(32) == Prefix.parse("2001:db8::/32")

    def test_truncate_longer_raises(self):
        with pytest.raises(AddressError):
            Prefix.parse("2001:db8::/32").truncate(48)

    def test_subnets(self):
        subs = list(Prefix.parse("2001:db8::/32").subnets(34))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("2001:db8::/34")
        assert subs[-1] == Prefix.parse("2001:db8:c000::/34")

    def test_nth_subnet_matches_iteration(self):
        prefix = Prefix.parse("2001:db8::/32")
        subs = list(prefix.subnets(36))
        for index in (0, 7, 15):
            assert prefix.nth_subnet(36, index) == subs[index]

    def test_nth_subnet_out_of_range(self):
        with pytest.raises(IndexError):
            Prefix.parse("2001:db8::/32").nth_subnet(33, 2)

    def test_random_address_inside(self):
        rng = random.Random(1)
        prefix = Prefix.parse("2001:db8::/32")
        for _ in range(50):
            assert prefix.contains(prefix.random_address(rng))

    def test_random_address_host_prefix(self):
        rng = random.Random(1)
        prefix = Prefix.parse("2001:db8::1/128")
        assert prefix.random_address(rng) == prefix.base

    def test_random_subnet_inside(self):
        rng = random.Random(2)
        prefix = Prefix.parse("2001:db8::/32")
        for _ in range(20):
            subnet = prefix.random_subnet(64, rng)
            assert subnet.length == 64
            assert prefix.covers(subnet)


class TestMasks:
    def test_mask_for_extremes(self):
        assert mask_for(0) == 0
        assert mask_for(128) == MAX_ADDRESS

    def test_host_mask_complement(self):
        for length in (0, 1, 32, 64, 127, 128):
            assert mask_for(length) ^ host_mask_for(length) == MAX_ADDRESS


class TestAggregation:
    def test_aggregate_drops_covered(self):
        wide = Prefix.parse("2001:db8::/32")
        narrow = Prefix.parse("2001:db8:1::/48")
        other = Prefix.parse("2001:dead::/32")
        assert aggregate([narrow, wide, other]) == [wide, other]

    def test_aggregate_keeps_duplicates_once(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert aggregate([prefix, prefix]) == [prefix]

    def test_merge_adjacent_siblings(self):
        left = Prefix.parse("2001:db8::/33")
        right = Prefix.parse("2001:db8:8000::/33")
        assert merge_adjacent([left, right]) == [Prefix.parse("2001:db8::/32")]

    def test_merge_adjacent_cascades(self):
        quarters = list(Prefix.parse("2001:db8::/32").subnets(34))
        assert merge_adjacent(quarters) == [Prefix.parse("2001:db8::/32")]

    def test_merge_non_siblings_unchanged(self):
        # Adjacent but not siblings: cannot merge without over-covering.
        a = Prefix.parse("2001:db8:8000::/33")
        b = Prefix.parse("2001:db9::/33")
        assert merge_adjacent([a, b]) == sorted([a, b])

    @given(st.lists(prefixes, max_size=30))
    def test_aggregate_preserves_coverage(self, items):
        result = aggregate(items)
        # Every input prefix is covered by some output prefix.
        for item in items:
            assert any(out.covers(item) for out in result)
        # No output covers another output.
        for i, a in enumerate(result):
            for j, b in enumerate(result):
                if i != j:
                    assert not a.covers(b)


class TestSpanningPrefix:
    def test_empty(self):
        assert spanning_prefix([]) is None

    def test_single(self):
        value = address.parse("2001:db8::1")
        assert spanning_prefix([value]) == Prefix(value, 128)

    def test_pair(self):
        a = address.parse("2001:db8::1")
        b = address.parse("2001:db8::2")
        span = spanning_prefix([a, b])
        assert span.contains(a) and span.contains(b)
        assert span.length == 126

    @given(st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS), min_size=1, max_size=20))
    def test_spans_all(self, values):
        span = spanning_prefix(values)
        assert all(span.contains(value) for value in values)
