"""Unit and property tests for repro.addrs.address."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import (
    ADDRESS_BITS,
    MAX_ADDRESS,
    AddressError,
    common_prefix_length,
    format_address,
    from_bytes,
    interface_identifier,
    parse,
    subnet_prefix,
    to_bytes,
    with_iid,
)

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)


class TestParse:
    def test_full_form(self):
        assert parse("2001:0db8:0000:0000:0000:0000:0000:0001") == 0x20010DB8000000000000000000000001

    def test_compressed(self):
        assert parse("2001:db8::1") == 0x20010DB8000000000000000000000001

    def test_all_zero(self):
        assert parse("::") == 0

    def test_loopback(self):
        assert parse("::1") == 1

    def test_leading_compression(self):
        assert parse("::ffff:1") == 0xFFFF0001

    def test_trailing_compression(self):
        assert parse("2001:db8::") == 0x20010DB8 << 96

    def test_embedded_ipv4(self):
        assert parse("::ffff:192.168.0.1") == (0xFFFF << 32) | 0xC0A80001

    def test_embedded_ipv4_no_compression(self):
        assert parse("0:0:0:0:0:ffff:10.0.0.1") == (0xFFFF << 32) | 0x0A000001

    def test_whitespace_tolerated(self):
        assert parse("  ::1  ") == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":::",
            "1:2:3:4:5:6:7",
            "1:2:3:4:5:6:7:8:9",
            "2001:db8::1::2",
            "12345::",
            "gggg::",
            "::256.1.1.1",
            "::1.2.3",
            "::01.2.3.4",
            "1.2.3.4::",
            "::" + "0:" * 8,
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse(bad)

    def test_double_colon_must_compress_something(self):
        with pytest.raises(AddressError):
            parse("1:2:3:4::5:6:7:8")


class TestFormat:
    def test_canonical_compression(self):
        assert format_address(0x20010DB8000000000000000000000001) == "2001:db8::1"

    def test_zero(self):
        assert format_address(0) == "::"

    def test_no_single_group_compression(self):
        # RFC 5952: a lone zero group is not compressed.
        value = parse("2001:db8:0:1:1:1:1:1")
        assert format_address(value) == "2001:db8:0:1:1:1:1:1"

    def test_leftmost_longest_run_wins(self):
        value = parse("2001:0:0:1:0:0:0:1")
        assert format_address(value) == "2001:0:0:1::1"

    def test_all_ones(self):
        assert format_address(MAX_ADDRESS) == "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            format_address(-1)
        with pytest.raises(AddressError):
            format_address(MAX_ADDRESS + 1)

    @given(addresses)
    def test_round_trip(self, value):
        assert parse(format_address(value)) == value


class TestBytes:
    def test_to_bytes_length(self):
        assert len(to_bytes(1)) == 16

    def test_network_order(self):
        assert to_bytes(parse("2001:db8::"))[:4] == bytes([0x20, 0x01, 0x0D, 0xB8])

    def test_from_bytes_rejects_short(self):
        with pytest.raises(AddressError):
            from_bytes(b"\x00" * 15)

    @given(addresses)
    def test_round_trip(self, value):
        assert from_bytes(to_bytes(value)) == value


class TestBitHelpers:
    def test_subnet_prefix_zeroes_iid(self):
        value = parse("2001:db8::dead:beef")
        assert subnet_prefix(value) == parse("2001:db8::")

    def test_interface_identifier(self):
        assert interface_identifier(parse("2001:db8::dead:beef")) == 0xDEADBEEF

    def test_with_iid(self):
        combined = with_iid(parse("2001:db8::ffff"), 1)
        assert combined == parse("2001:db8::1")

    @given(addresses, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_with_iid_splits(self, value, iid):
        combined = with_iid(value, iid)
        assert subnet_prefix(combined) == subnet_prefix(value)
        assert interface_identifier(combined) == iid

    def test_common_prefix_identical(self):
        assert common_prefix_length(5, 5) == ADDRESS_BITS

    def test_common_prefix_first_bit(self):
        assert common_prefix_length(0, 1 << 127) == 0

    def test_common_prefix_mid(self):
        a = parse("2001:db8::")
        b = parse("2001:db9::")
        assert common_prefix_length(a, b) == 31

    @given(addresses, addresses)
    def test_common_prefix_symmetric(self, a, b):
        assert common_prefix_length(a, b) == common_prefix_length(b, a)

    @given(addresses, addresses)
    def test_common_prefix_bound(self, a, b):
        shared = common_prefix_length(a, b)
        assert 0 <= shared <= ADDRESS_BITS
        if a != b:
            # Bits above the shared length must agree; the next must differ.
            shift = ADDRESS_BITS - shared
            assert (a >> shift) == (b >> shift)

    def test_bit_at(self):
        assert address.bit_at(1 << 127, 0) == 1
        assert address.bit_at(1, 127) == 1
        assert address.bit_at(1, 0) == 0

    def test_bit_at_range(self):
        with pytest.raises(IndexError):
            address.bit_at(0, 128)

    def test_sort_unique(self):
        assert address.sort_unique([3, 1, 3, 2]) == [1, 2, 3]
