"""Tests for the radix trie, including a linear-scan LPM oracle property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import MAX_ADDRESS
from repro.addrs.prefix import Prefix
from repro.addrs.trie import PrefixTrie

prefix_strategy = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=MAX_ADDRESS),
    st.integers(min_value=0, max_value=128),
)


def build(*specs):
    trie = PrefixTrie()
    for text, value in specs:
        trie.insert(Prefix.parse(text), value)
    return trie


class TestInsertLookup:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert not trie
        assert trie.longest_match(0) is None
        assert trie.lookup(0) is None

    def test_single_prefix(self):
        trie = build(("2001:db8::/32", "A"))
        assert len(trie) == 1
        assert trie.lookup(address.parse("2001:db8::1")) == "A"
        assert trie.lookup(address.parse("2001:db9::1")) is None

    def test_longest_match_wins(self):
        trie = build(("2001:db8::/32", "wide"), ("2001:db8:1::/48", "narrow"))
        assert trie.lookup(address.parse("2001:db8:1::5")) == "narrow"
        assert trie.lookup(address.parse("2001:db8:2::5")) == "wide"

    def test_default_route(self):
        trie = build(("::/0", "default"), ("2001:db8::/32", "specific"))
        assert trie.lookup(address.parse("9999::1")) == "default"
        assert trie.lookup(address.parse("2001:db8::1")) == "specific"

    def test_replace_value(self):
        trie = build(("2001:db8::/32", "old"))
        trie.insert(Prefix.parse("2001:db8::/32"), "new")
        assert len(trie) == 1
        assert trie.get(Prefix.parse("2001:db8::/32")) == "new"

    def test_exact_get_vs_lpm(self):
        trie = build(("2001:db8::/32", "A"))
        assert trie.get(Prefix.parse("2001:db8::/48")) is None
        assert trie.get(Prefix.parse("2001:db8::/32")) == "A"

    def test_contains(self):
        trie = build(("2001:db8::/32", "A"))
        assert Prefix.parse("2001:db8::/32") in trie
        assert Prefix.parse("2001:db8::/33") not in trie

    def test_host_route(self):
        trie = build(("2001:db8::1/128", "host"))
        assert trie.lookup(address.parse("2001:db8::1")) == "host"
        assert trie.lookup(address.parse("2001:db8::2")) is None

    def test_sibling_split(self):
        # Inserting two prefixes that diverge mid-edge forces a fork node.
        trie = build(("2001:db8:aaaa::/48", "A"), ("2001:db8:aaab::/48", "B"))
        assert trie.lookup(address.parse("2001:db8:aaaa::1")) == "A"
        assert trie.lookup(address.parse("2001:db8:aaab::1")) == "B"
        assert trie.lookup(address.parse("2001:db8:aaac::1")) is None

    def test_fork_on_existing_edge_then_value(self):
        trie = build(("2001:db8:aaaa::/48", "A"), ("2001:db8::/32", "B"))
        assert trie.lookup(address.parse("2001:db8:aaaa::1")) == "A"
        assert trie.lookup(address.parse("2001:db8:ffff::1")) == "B"

    def test_none_value_counts_as_stored(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("2001:db8::/32"), None)
        assert Prefix.parse("2001:db8::/32") in trie
        assert trie.covers(address.parse("2001:db8::1"))


class TestEnumeration:
    def test_items_sorted(self):
        trie = build(
            ("2001:db9::/32", 2),
            ("2001:db8::/32", 1),
            ("2001:db8::/48", 0),
        )
        listed = trie.prefixes()
        assert listed == sorted(listed)
        assert len(listed) == 3

    def test_covered_by(self):
        trie = build(
            ("2001:db8:1::/48", "a"),
            ("2001:db8:2::/48", "b"),
            ("2001:dead::/48", "c"),
        )
        covered = dict(trie.covered_by(Prefix.parse("2001:db8::/32")))
        assert set(covered.values()) == {"a", "b"}


class TestOracle:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(prefix_strategy, min_size=1, max_size=40),
        st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS), min_size=1, max_size=20),
    )
    def test_matches_linear_scan(self, stored, queries):
        trie = PrefixTrie()
        table = {}
        for index, prefix in enumerate(stored):
            trie.insert(prefix, index)
            table[prefix] = index  # later insert replaces, same as trie
        for query in queries:
            expected = None
            best_length = -1
            for prefix, value in table.items():
                if prefix.contains(query) and prefix.length > best_length:
                    best_length = prefix.length
                    expected = (prefix, value)
            assert trie.longest_match(query) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(prefix_strategy, min_size=1, max_size=40))
    def test_count_and_enumeration(self, stored):
        trie = PrefixTrie()
        for prefix in stored:
            trie.insert(prefix, str(prefix))
        unique = set(stored)
        assert len(trie) == len(unique)
        assert set(trie.prefixes()) == unique

    @settings(max_examples=30, deadline=None)
    @given(st.lists(prefix_strategy, min_size=1, max_size=30))
    def test_every_stored_prefix_matches_own_base(self, stored):
        trie = PrefixTrie()
        for prefix in stored:
            trie.insert(prefix, prefix)
        for prefix in set(stored):
            match = trie.longest_match(prefix.base)
            assert match is not None
            matched_prefix, _ = match
            assert matched_prefix.contains(prefix.base)
            assert matched_prefix.length >= prefix.length or matched_prefix.covers(prefix)
