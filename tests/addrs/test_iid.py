"""Tests for IID classification (addr6-style)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.iid import (
    IIDClass,
    class_fractions,
    classify_address,
    classify_iid,
    classify_set,
    eui64_mac,
    eui64_oui,
    make_eui64_iid,
)

macs = st.tuples(*[st.integers(min_value=0, max_value=255) for _ in range(6)])


class TestClassify:
    def test_lowbyte_one(self):
        assert classify_address(address.parse("2001:db8::1")) is IIDClass.LOWBYTE

    def test_lowbyte_zero(self):
        assert classify_address(address.parse("2001:db8::")) is IIDClass.LOWBYTE

    def test_lowbyte_two_bytes(self):
        assert classify_iid(0xFFFF) is IIDClass.LOWBYTE

    def test_not_lowbyte_past_16_bits(self):
        assert classify_iid(0x1_0000) is not IIDClass.LOWBYTE

    def test_eui64(self):
        value = address.parse("2001:db8::0211:22ff:fe33:4455")
        assert classify_address(value) is IIDClass.EUI64

    def test_eui64_marker_position_matters(self):
        # ff:fe elsewhere is not EUI-64.
        assert classify_iid(0xFFFE_0000_0000_0000) is not IIDClass.EUI64

    def test_randomized(self):
        value = address.parse("2001:db8::3d2c:91ab:77e0:1f5a")
        assert classify_address(value) is IIDClass.RANDOMIZED

    def test_embedded_ipv4_hex(self):
        assert classify_iid(0xC0A80001) is IIDClass.EMBEDDED_IPV4

    def test_embedded_ipv4_bcd(self):
        value = address.parse("2001:db8::192:168:0:100")
        assert classify_address(value) is IIDClass.EMBEDDED_IPV4

    def test_fixed_iid_randomized(self):
        # The paper's fixed pseudo-random IID must classify as randomized.
        value = address.with_iid(address.parse("2001:db8::"), address.FIXED_IID)
        assert classify_address(value) is IIDClass.RANDOMIZED

    @given(macs)
    def test_forged_eui64_classifies(self, mac):
        assert classify_iid(make_eui64_iid(mac)) is IIDClass.EUI64


class TestEui64RoundTrip:
    @given(macs)
    def test_mac_round_trip(self, mac):
        assert eui64_mac(make_eui64_iid(mac)) == mac

    @given(macs)
    def test_oui(self, mac):
        expected = (mac[0] << 16) | (mac[1] << 8) | mac[2]
        assert eui64_oui(make_eui64_iid(mac)) == expected

    def test_mac_rejects_non_eui64(self):
        with pytest.raises(ValueError):
            eui64_mac(1)

    def test_make_rejects_bad_mac(self):
        with pytest.raises(ValueError):
            make_eui64_iid((1, 2, 3))
        with pytest.raises(ValueError):
            make_eui64_iid((256, 0, 0, 0, 0, 0))


class TestSetClassification:
    def test_counts(self):
        values = [
            address.parse("2001:db8::1"),
            address.parse("2001:db8::2"),
            address.parse("2001:db8::0211:22ff:fe33:4455"),
            address.parse("2001:db8::3d2c:91ab:77e0:1f5a"),
        ]
        counts = classify_set(values)
        assert counts[IIDClass.LOWBYTE] == 2
        assert counts[IIDClass.EUI64] == 1
        assert counts[IIDClass.RANDOMIZED] == 1

    def test_fractions_sum_to_one(self):
        values = [address.parse("2001:db8::%x" % index) for index in range(1, 6)]
        fractions = class_fractions(values)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_fractions_empty(self):
        assert all(value == 0.0 for value in class_fractions([]).values())
