"""Tests for discriminating prefix length computation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import MAX_ADDRESS
from repro.addrs.dpl import (
    capped_dpl,
    dpl_against,
    dpl_cdf,
    dpl_list,
    dpl_map,
    pairwise_dpl,
)

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)


class TestPairwise:
    def test_same_64(self):
        a = address.parse("2001:db8::1")
        b = address.parse("2001:db8::2")
        assert pairwise_dpl(a, b) == 127

    def test_differs_at_first_bit(self):
        assert pairwise_dpl(0, 1 << 127) == 1

    def test_identical(self):
        assert pairwise_dpl(5, 5) == 128

    def test_paper_example_64(self):
        # Two /64 neighbours sharing the top 63 bits have DPL 64.
        a = address.parse("2001:db8:0:0::1")
        b = address.parse("2001:db8:0:1::1")
        assert pairwise_dpl(a, b) == 64

    @given(addresses, addresses)
    def test_symmetric(self, a, b):
        assert pairwise_dpl(a, b) == pairwise_dpl(b, a)


class TestDplList:
    def test_empty(self):
        assert dpl_list([]) == []

    def test_singleton(self):
        assert dpl_list([address.parse("2001:db8::1")]) == [1]

    def test_duplicates_removed(self):
        value = address.parse("2001:db8::1")
        assert dpl_list([value, value]) == [1]

    def test_nearest_neighbour(self):
        # Middle address is nearest to its right neighbour.
        a = address.parse("2001::1")
        b = address.parse("2001:db8::1")
        c = address.parse("2001:db8::2")
        values = dpl_list([a, b, c])
        # b and c share 126 bits -> DPL 127 for both.
        assert values[1] == 127
        assert values[2] == 127
        # a's nearest is b, sharing 19 bits -> DPL 20.
        assert values[0] == pairwise_dpl(a, b)

    @given(st.lists(addresses, min_size=2, max_size=50))
    def test_bounds(self, values):
        for dpl in dpl_list(values):
            assert 1 <= dpl <= 128

    @given(st.lists(addresses, min_size=2, max_size=50, unique=True))
    def test_equals_best_neighbour(self, values):
        ordered = sorted(values)
        dpls = dpl_list(ordered)
        for index, value in enumerate(ordered):
            candidates = []
            if index > 0:
                candidates.append(pairwise_dpl(value, ordered[index - 1]))
            if index + 1 < len(ordered):
                candidates.append(pairwise_dpl(value, ordered[index + 1]))
            assert dpls[index] == max(candidates)


class TestDplMap:
    def test_alignment(self):
        values = [address.parse("2001:db8::1"), address.parse("2001:db8::2")]
        mapping = dpl_map(values)
        assert mapping[values[0]] == 127
        assert mapping[values[1]] == 127


class TestDplAgainst:
    def test_combination_shifts_right(self):
        # Figure 3b effect: interleaving another set's addresses raises DPL.
        own = [address.parse("2001:db8::1"), address.parse("2001:dead::1")]
        other = [address.parse("2001:db8:0:1::1")]
        alone = dpl_map(own)
        combined = dpl_against(own, other)
        assert combined[own[0]] > alone[own[0]]
        # Dense set unaffected when others don't interleave (fiebig effect).
        assert combined[own[1]] >= alone[own[1]]

    def test_no_interleaving_no_change(self):
        own = [address.parse("2001:db8::1"), address.parse("2001:db8::2")]
        far = [address.parse("fd00::1")]
        assert dpl_against(own, far)[own[0]] == dpl_map(own)[own[0]]

    @given(
        st.lists(addresses, min_size=1, max_size=20, unique=True),
        st.lists(addresses, min_size=0, max_size=20),
    )
    def test_monotone_nondecreasing(self, own, other):
        # Adding addresses can only tighten (raise) each DPL, never lower it.
        alone = dpl_map(own)
        combined = dpl_against(own, other)
        for value in own:
            assert combined[value] >= alone[value]


class TestCdf:
    def test_empty(self):
        assert dpl_cdf([], [32, 64]) == [(32, 0.0), (64, 0.0)]

    def test_monotone_and_terminal(self):
        dpls = [30, 40, 50, 64, 64]
        cdf = dpl_cdf(dpls, list(range(24, 65, 4)))
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions)
        assert cdf[-1] == (64, 1.0)

    def test_fraction_at_bin(self):
        cdf = dict(dpl_cdf([10, 20, 30, 40], [25]))
        assert cdf[25] == 0.5


def test_capped_dpl():
    assert capped_dpl(127) == 64
    assert capped_dpl(40) == 40
    assert capped_dpl(70, cap=48) == 48
