"""Tests for target-set feature characterization (Table 5 machinery)."""

from repro.addrs import address
from repro.addrs.prefix import Prefix
from repro.addrs.sets import (
    SIXTOFOUR,
    characterize_sets,
    shared_counts,
    union_size,
)
from repro.addrs.trie import PrefixTrie


def make_bgp():
    bgp = PrefixTrie()
    bgp.insert(Prefix.parse("2001:db8::/32"), 64500)
    bgp.insert(Prefix.parse("2001:dead::/32"), 64501)
    bgp.insert(Prefix.parse("2002::/16"), 64502)
    return bgp


class TestCharacterize:
    def test_unique_and_routed(self):
        bgp = make_bgp()
        sets = {
            "a": [address.parse("2001:db8::1"), address.parse("fd00::1")],
        }
        features = characterize_sets(sets, bgp)["a"]
        assert features.unique_targets == 2
        assert features.routed_targets == 1
        assert features.bgp_prefixes == {Prefix.parse("2001:db8::/32")}
        assert features.asns == {64500}

    def test_exclusivity(self):
        bgp = make_bgp()
        shared_addr = address.parse("2001:db8::1")
        sets = {
            "a": [shared_addr, address.parse("2001:db8::2")],
            "b": [shared_addr, address.parse("2001:dead::1")],
        }
        features = characterize_sets(sets, bgp)
        assert features["a"].exclusive_targets == 1
        assert features["b"].exclusive_targets == 1
        # Prefix 2001:db8::/32 is seen by both sets -> not exclusive to a.
        assert features["a"].exclusive_prefixes == set()
        assert features["b"].exclusive_prefixes == {Prefix.parse("2001:dead::/32")}
        assert features["b"].exclusive_asns == {64501}

    def test_exclusive_among_excludes_collections(self):
        # The "combined" set contains everything; excluding it from the
        # exclusivity computation preserves constituents' contributions.
        bgp = make_bgp()
        a = [address.parse("2001:db8::1")]
        b = [address.parse("2001:dead::1")]
        sets = {"a": a, "b": b, "combined": a + b}
        features = characterize_sets(sets, bgp, exclusive_among=["a", "b"])
        assert features["a"].exclusive_targets == 1
        assert features["b"].exclusive_targets == 1
        assert features["combined"].exclusive_targets == 0

    def test_sixtofour_counted(self):
        bgp = make_bgp()
        sets = {"a": [address.parse("2002::1"), address.parse("2001:db8::1")]}
        features = characterize_sets(sets, bgp)["a"]
        assert features.sixtofour == 1

    def test_duplicates_collapse(self):
        bgp = make_bgp()
        value = address.parse("2001:db8::1")
        features = characterize_sets({"a": [value, value]}, bgp)["a"]
        assert features.unique_targets == 1

    def test_as_dict_keys(self):
        bgp = make_bgp()
        summary = characterize_sets({"a": [1]}, bgp)["a"].as_dict()
        assert summary["unique_targets"] == 1
        assert "exclusive_asns" in summary


class TestSharedCounts:
    def test_shared_histogram(self):
        bgp = make_bgp()
        sets = {
            "a": [address.parse("2001:db8::1")],
            "b": [address.parse("2001:db8::2"), address.parse("2001:dead::1")],
        }
        histogram = shared_counts(sets, bgp)
        assert histogram["bgp_prefixes"]["shared"] == 1  # 2001:db8::/32
        assert histogram["bgp_prefixes"]["b"] == 1  # 2001:dead::/32
        assert histogram["asns"]["shared"] == 1


def test_union_size():
    sets = {"a": [1, 2], "b": [2, 3]}
    assert union_size(sets) == 3


def test_sixtofour_prefix_value():
    assert SIXTOFOUR.contains(address.parse("2002:abcd::1"))
    assert not SIXTOFOUR.contains(address.parse("2001::1"))
