"""Annotation-coverage gate for the strictly-typed packages.

CI runs mypy with ``disallow_untyped_defs`` over ``repro.prober``,
``repro.netsim``, ``repro.packet`` and ``repro.obs`` (see ``[tool.mypy]`` in
pyproject.toml).  mypy is not available in every development container,
so this test enforces the cheap structural half of that contract
locally: every function and method in those packages must annotate all
of its parameters and its return type.  A signature this test rejects
would fail CI's mypy job; keeping the gate in the tier-1 suite means
the failure surfaces before push.
"""

import ast
import os

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")

#: Packages under the strict-typing contract.
STRICT_PACKAGES = ("prober", "netsim", "packet", "obs")

#: Implicit first parameters that need no annotation.
IMPLICIT_FIRST = {"self", "cls"}


def strict_files():
    for package in STRICT_PACKAGES:
        root = os.path.join(SRC, package)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def unannotated_signatures(path):
    """(lineno, qualname, missing-parts) for each incomplete signature."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = list(getattr(args, "posonlyargs", [])) + args.args
        missing = []
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in IMPLICIT_FIRST:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return type")
        if missing:
            problems.append((node.lineno, node.name, missing))
    return problems


@pytest.mark.parametrize("path", sorted(strict_files()))
def test_fully_annotated(path):
    problems = unannotated_signatures(path)
    assert not problems, "\n".join(
        "%s:%d: %s missing annotations: %s"
        % (os.path.relpath(path, SRC), lineno, name, ", ".join(missing))
        for lineno, name, missing in problems
    )


def test_strict_packages_exist():
    # Guard against the walk silently matching nothing (e.g. a rename).
    paths = list(strict_files())
    assert len(paths) >= 15


def test_py_typed_marker_present():
    assert os.path.exists(os.path.join(SRC, "py.typed"))
