"""PKT001 fixture: broken packet byte-length & checksum invariants."""

import struct

HEADER_LENGTH = 8  # wrong: pack() below emits 12 bytes

PAYLOAD_LENGTH = 12  # wrong: head (4) + fudge (2) is 6
MAGIC = 0x1_0000_0000  # wrong: does not fit 4 bytes
DEST_PORT = 80
TARGET_SUM = 0x1BEEF  # wrong: does not fit 16 bits


class BadHeader:
    def __init__(self, a, b):
        self.a = a
        self.b = b

    def pack(self):
        return struct.pack("!HH", self.a, self.b) + struct.pack(
            "!II", 0, 0
        )  # 12 bytes != HEADER_LENGTH


def payload(sum_value, fudge):
    head = struct.pack("!HH", 0, sum_value)
    return head + fudge.to_bytes(2, "big")


def emit(desired_sum):
    checksum = desired_sum & 0xFFFF  # not the complement pattern
    return checksum


def decode(data):
    return struct.unpack("!HH", data[:4])
