"""PERF101 fixture: per-iteration allocation inside the hot region.

``craft_block`` is a marked hot root, so its straight-line body counts
as per-iteration context; ``encode`` is reachable from it, so only its
in-loop allocations count.  ``cold_block`` repeats the same patterns
without being reachable from any hot root and must stay silent.
"""

import struct


# repro-lint: hot-loop
def craft_block(targets, times):
    staged = [stamp(target) for target in targets]
    out = []
    for index, when in enumerate(times):
        header = {"seq": index, "when": when}
        out.append(encode(staged[index], header, when))
    return out


def encode(staged, header, when):
    scratch = None
    for attempt in range(2):
        scratch = Scratch(staged, attempt)
        packed = struct.pack("!IHH", when, len(header), attempt)
        scratch.absorb(packed)
    if scratch is None:
        raise ValueError("empty encode")
    return scratch


def stamp(target):
    return target & 0xFFFF


def cold_block(targets, times):
    staged = [stamp(target) for target in targets]
    out = []
    for index, when in enumerate(times):
        header = {"seq": index, "when": when}
        out.append((header, staged[index]))
    return out


class Scratch:
    def __init__(self, staged, attempt):
        self.staged = staged
        self.attempt = attempt
        self.parts = []

    def absorb(self, packed):
        self.parts.append(packed)
