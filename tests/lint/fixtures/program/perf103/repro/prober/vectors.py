"""PERF103 fixture: numpy↔Python scalar churn inside the hot region.

``fold`` is a marked hot root; ``collapse`` is reachable from it and
assigns its own array local, so its element-wise loop counts.  Constant
indexing (``squeezed[0]``) and mask indexing are vectorized idioms and
must stay silent, as must the unreachable ``cold_fold`` twin.
"""

import numpy as np


# repro-lint: hot-loop
def fold(indices):
    values = np.array(list(indices), dtype=np.uint64)
    total = 0
    for index in range(len(indices)):
        total += int(values[index])
    for value in values:
        total += int(value)
    while has_more(values, total):
        values = np.append(values, total)
    return collapse(values) + total


def collapse(values):
    squeezed = np.asarray(values)
    first = int(squeezed[0])
    total = first
    for index in range(10):
        element = squeezed[index]
        total += element.item()
    return total


def has_more(values, total):
    return bool(values.size < total)


def cold_fold(indices):
    values = np.array(list(indices), dtype=np.uint64)
    total = 0
    for index in range(len(indices)):
        total += int(values[index])
    return total
