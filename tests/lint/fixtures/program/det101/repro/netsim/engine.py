"""DET101 fixture: impurity hidden two call hops from the run loop."""

import time


def jitter_us():
    return int(time.time() * 1e6) % 7


def helper():
    return jitter_us()


def stamped():
    # Suppressed source: must NOT seed DET101 impurity.
    return time.time_ns()  # repro-lint: disable=DET001


class Engine:
    def run(self):
        stamped()
        return helper()


def offline_report():
    # Impure but unreachable from any program root: no DET101 finding.
    return time.monotonic()
