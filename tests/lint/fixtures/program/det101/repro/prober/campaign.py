"""DET101 fixture: cross-module impurity through a nested callback."""

from ..netsim.engine import helper


def run_campaign(spec):
    def tick():
        return helper()

    return tick()
