"""OBS101 fixture: FailureReport readbacks steering the prober."""

from repro.obs.failures import FailureReport


def retry_policy(report: FailureReport, budget):
    report.record_fault(1, 1, "crash", "boom")  # fine: telemetry write
    if report.counts():  # flagged: branch condition
        return 0
    remaining = budget - report.counts()  # flagged: operand
    return remaining


class Supervisor:
    def __init__(self, report: FailureReport):
        report.record_retry(3)  # fine: mutating telemetry
        self.last = report.faults()  # flagged: object state

    def ship(self, report: FailureReport):
        return report.to_dict()  # fine: readbacks may flow out
