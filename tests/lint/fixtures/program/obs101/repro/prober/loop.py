"""OBS101 fixture: telemetry readbacks steering the prober."""

from repro.obs.metrics import MetricsRegistry


def pull(registry: MetricsRegistry):
    sent = registry.counter("sent")
    sent.add(1)  # fine: mutating telemetry is the observe path
    if registry.total("sent") > 10:
        return None
    budget = 100 - registry.total("probes")
    return budget


class Prober:
    def __init__(self, registry: MetricsRegistry):
        self._m = registry.counter("x")  # fine: handle factory
        self.state = registry.to_dict()
