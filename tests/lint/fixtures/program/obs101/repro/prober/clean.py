"""OBS101 fixture: the sanctioned observe-only usage (no findings)."""

from repro.obs.metrics import MetricsRegistry


def observe(registry: MetricsRegistry):
    registry.counter("sent").add(1)
    # Returning a readback OUT of the simulation is the observe path.
    return registry.to_dict()
