"""Fixture rewind: the registry and the reset disagree three ways."""

from .runstate import run_state


@run_state("stats", "tracer", "ghost", shared=("_cache",))
class Internet:
    def fresh_run_state(self):
        self.stats = 0
        self.tracer = None
        self._cache = {}
        self.reset_helpers()

    def reset_helpers(self):
        self.scratch = []


@run_state("events", constructed_per_run=True)
class Engine:
    def __init__(self):
        self.events = []
