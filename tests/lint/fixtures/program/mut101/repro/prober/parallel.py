"""Fixture worker entry points driving the shared world."""

from ..netsim.world import Internet


def run_shard(spec, shard, shards):  # repro-lint: program-root
    world = Internet()
    world.probe(spec)
    world.rebuild()
    helper(world)
    return world


def helper(world):
    world.stats = 2


def own_state(result):
    result.count = 0
