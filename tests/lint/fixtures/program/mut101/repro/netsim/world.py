"""Fixture world: one registered class with sanctioned and rogue writes."""

from .runstate import run_state


@run_state("stats", "tracer", shared=("_path_cache",))
class Internet:
    def probe(self, data):
        self.stats = self.stats + 1
        self._path_cache[data] = data
        self.counter = self.counter + 1

    def rebuild(self):
        cache = self._scratch
        cache.append(1)

    def offline(self):
        self.forgotten = 1
