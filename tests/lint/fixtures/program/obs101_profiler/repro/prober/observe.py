"""OBS101 fixture: the sanctioned profiler observe path — phases and
aggregates record, byte counts accumulate, and the export ships OUT of
the prober without steering it."""

from repro.obs.profiler import WallProfiler


def run(profiler: WallProfiler):
    with profiler.phase("campaign.run"):
        craft = profiler.agg("emit.craft")  # fine: handle factory
        with craft:
            pass
        profiler.add_bytes(64)  # fine: mutating telemetry
    return profiler.export()  # fine: readbacks may flow out, not back in
