"""OBS101 fixture: wall-clock profiler readbacks steering the prober."""

from repro.obs.profiler import WallProfiler


def paced(profiler: WallProfiler, budget):
    with profiler.phase("emit"):  # fine: phases are the observe path
        pass
    if profiler.total_seconds() > 1.0:  # flagged: branch condition
        return 0
    remaining = budget - profiler.coverage()  # flagged: operand
    return remaining


class Prober:
    def __init__(self, profiler: WallProfiler):
        self._prof = profiler.phase("setup")  # fine: handle factory
        self.last = profiler.to_profile_dict()  # flagged: object state
