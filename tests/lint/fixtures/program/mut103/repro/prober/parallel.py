"""Fixture boundary: workers scribbling on the pickled spec."""


def run_shard(spec, shard, shards):  # repro-lint: program-root
    spec.targets = ()
    configure(spec.internet)
    runner = Runner()
    runner.apply(spec)
    return run(spec)


def configure(config):
    config.seed = 7


def run(job):
    job.name = "x"
    return job


class Runner:
    def apply(self, spec):
        spec.pps = 1.0


def untouched(spec):
    local = list(spec.targets)
    return local
