"""PERF102 fixture: superlinear accumulation inside the hot region.

``drain`` is a marked hot root; every quadratic pattern sits inside its
loop.  ``push`` is reachable but its ``+=`` is straight-line in a
non-root function (amortized once per drain) and must stay silent, as
must the unreachable ``cold_drain`` twin.
"""


# repro-lint: hot-loop
def drain(batches):
    log = ""
    seen = []
    recent = []
    for batch in batches:
        log += render(batch)
        if batch in seen:
            continue
        recent.insert(0, batch)
        ordered = sorted(recent)
        push(ordered, seen)
    return log


def push(ordered, seen):
    seen.extend(ordered)
    tail = ""
    tail += "flushed"
    return tail


def render(batch):
    return "<%d>" % batch


def cold_drain(batches):
    log = ""
    seen = []
    for batch in batches:
        log += render(batch)
        if batch in seen:
            continue
        seen.insert(0, batch)
    return log
