"""RNG101 fixture: seed provenance, good and bad."""

import os
import random

STREAM = 3


def good(seed):
    return random.Random(seed * 1_000_003 + STREAM)


def seed_mixed(seed, asn):
    # Opaque int mixed WITH seed material: sanctioned derivation.
    return random.Random(seed * 7_919 + asn)


def bad_entropy():
    return random.Random(os.urandom(8))


def bad_opaque(count):
    return random.Random(count)


def compute():
    return 41


def caller():
    noise = compute()
    return bad_opaque(noise)
