"""RNG101 fixture: a live RNG shipped across the worker boundary."""

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class CampaignSpec:
    seed: int


def ship(seed):
    rng = random.Random(seed)
    return CampaignSpec(rng)
