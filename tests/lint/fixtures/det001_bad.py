"""DET001 fixture: every banned nondeterminism source, with line markers
the tests assert against."""

import os
import random
import time
import uuid
from datetime import datetime
from time import time as wall_clock


def stamp():
    return time.time()  # L13: wall clock


def stamp_aliased():
    return wall_clock()  # L17: from-import alias


def when():
    return datetime.now()  # L21: datetime


def roll():
    return random.randint(0, 10)  # L25: module-level random


def unseeded():
    return random.Random()  # L29: self-seeding Random


def entropy():
    return os.urandom(8)  # L33: OS entropy


def token():
    return uuid.uuid4()  # L37: uuid4


def bucket(name):
    return hash(name) % 16  # L41: PYTHONHASHSEED-dependent


def seeded_ok(seed):
    rng = random.Random(seed)  # allowed: explicit seed
    return rng.randint(0, 10)  # allowed: instance method


def suppressed():
    return time.time()  # repro-lint: disable=DET001
