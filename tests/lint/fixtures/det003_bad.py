"""DET003 fixture: worker-boundary dataclasses with unpicklable fields."""

from dataclasses import dataclass
from typing import Callable, Optional, Tuple


class Internet:
    pass


@dataclass(frozen=True)
class CampaignSpec:  # known boundary class by name
    targets: Tuple[int, ...]
    pps: float = 1000.0
    internet: Optional[Internet] = None  # L15: live object in a spec
    on_done: Optional[Callable[[], None]] = None  # L16: callable


@dataclass
class ShardPlan:  # repro-lint: worker-boundary
    shard: int
    handle: "Internet" = None  # L22: forward-ref to unpicklable


class LoosePlan:  # repro-lint: worker-boundary
    """Not a dataclass at all."""  # L26 region: flagged as a whole


@dataclass
class CleanSpec:  # repro-lint: worker-boundary
    name: str
    shards: Tuple[int, ...] = ()
    ratio: float = 1.0
