"""LNT001 fixture: suppressions that no longer earn their keep."""

import time


def stamp():
    return time.time()  # repro-lint: disable=DET001


def idle():
    return 1  # repro-lint: disable=DET001


def typo():
    return 2  # repro-lint: disable=DET999


# repro-lint: disable-file=PKT001
