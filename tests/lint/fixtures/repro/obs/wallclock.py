"""DET001 fixture: the allowlisted wall-clock boundary.

The path under ``fixtures/repro/obs/`` derives the module name
``repro.obs.wallclock``, which DET001 exempts from wall-clock reads —
but the exemption covers exactly the time subset: entropy sources stay
banned even here.
"""

import os
import time


def now():
    return time.perf_counter()  # exempt: the one allowlisted boundary


def stamp():
    return time.time_ns()  # exempt: still a wall-clock read


def entropy():
    return os.urandom(8)  # flagged: entropy is never exempt
