"""DET001 fixture: the wall-clock profiler is an allowlisted boundary.

The path under ``fixtures/repro/obs/`` derives the module name
``repro.obs.profiler``, which DET001 exempts from wall-clock reads the
same way it exempts ``repro.obs.wallclock`` — the profiler times host
phases, so it must read host time.  The exemption covers exactly the
time subset: entropy sources stay banned even here.
"""

import time
import uuid


def now():
    return time.perf_counter()  # exempt: profiler phase timestamps


def stamp():
    return time.monotonic_ns()  # exempt: still a wall-clock read


def trace_id():
    return uuid.uuid4()  # flagged: entropy is never exempt
