"""DET001 fixture: instrumented simulation code still cannot read wall
time — the exemption is for ``repro.obs.wallclock`` alone, and this
file's path-derived module is ``repro.obs.metrics_bad``.
"""

import time


class SneakyCounter:
    """A metric that smuggles host time into a dump."""

    def __init__(self):
        self.value = 0
        self.started = 0.0

    def inc(self):
        self.value += 1
        self.started = time.time()  # flagged: not the boundary module
