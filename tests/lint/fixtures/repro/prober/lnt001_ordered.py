"""LNT001 fixture: a stale '# lint: ordered' annotation."""


def ordered_list(items):
    return [x for x in sorted(items)]  # lint: ordered
