"""DET002 fixture: set iteration in an order-sensitive package path
(this file's synthetic module path is repro.prober.det002_bad)."""

from typing import Set


class Tracker:
    def __init__(self):
        self.seen: Set[int] = set()

    @property
    def pending(self) -> Set[int]:
        return {item for item in self.seen if item > 0}

    def walk_attribute(self):
        return [item * 2 for item in self.seen]  # L16: annotated attribute

    def walk_property(self):
        for item in self.pending:  # L19: Set-returning property
            yield item

    def walk_sorted(self):
        return [item for item in sorted(self.seen)]  # ok: sorted

    def walk_annotated(self):
        total = 0
        for item in self.seen:  # lint: ordered
            total += item
        return total


def literal_walk():
    for item in {3, 1, 2}:  # L33: set literal
        print(item)


def call_walk(values):
    return list(set(values))  # L38: list(set(...))


def operator_walk(a, b):
    seen = set(a)
    extra = seen | set(b)
    for item in extra:  # L44: set-operator result via local name
        print(item)


def reducer_ok(values):
    return sum(v for v in set(values))  # ok: order-insensitive reducer


def setcomp_ok(values):
    return {v * 2 for v in set(values)}  # ok: unordered in, unordered out


def poisoned_ok(flag, values):
    items = set(values)
    if flag:
        items = sorted(items)
    for item in items:  # ok: name also bound to a list
        print(item)
