"""DET001 fixture: the supervision deadline boundary.

The path under ``fixtures/repro/prober/`` derives the module name
``repro.prober.deadline``, which DET001 exempts from wall-clock reads —
the supervisor must watch host time to catch hung workers.  Like every
allowlisted boundary, the exemption covers exactly the time subset:
entropy stays banned even here.
"""

import os
import time


def now():
    return time.perf_counter()  # exempt: supervision reads host time


def armed_at():
    return time.monotonic()  # exempt: still a wall-clock read


def jitter_entropy():
    return os.urandom(8)  # flagged: entropy is never exempt
