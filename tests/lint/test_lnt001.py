"""LNT001 — unused/unknown suppression detection, including program-rule
suppressions whose usage is recorded by the whole-program pass."""

import io
import os

from repro.lint.cli import main
from repro.lint.core import lint_file, lint_source

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_lnt001_fixture_findings():
    violations = lint_file(os.path.join(FIXTURES, "lnt001_bad.py"))
    assert [(v.rule, v.line) for v in violations] == [
        ("LNT001", 11),
        ("LNT001", 15),
        ("LNT001", 18),
    ]
    by_line = {v.line: v.message for v in violations}
    assert "found nothing to suppress" in by_line[11]
    assert "unknown rule" in by_line[15]
    assert "DET999" in by_line[15]
    assert "disable-file=PKT001" in by_line[18]


def test_lnt001_used_suppression_is_quiet():
    # stamp()'s disable=DET001 suppresses a real violation on line 7:
    # neither DET001 nor LNT001 may fire there.
    violations = lint_file(os.path.join(FIXTURES, "lnt001_bad.py"))
    assert not any(v.line == 7 for v in violations)


def test_lnt001_skips_rules_that_did_not_run():
    # With DET001 deselected we cannot know whether its suppressions are
    # earned, so only the unknown-rule finding survives.
    violations = lint_file(
        os.path.join(FIXTURES, "lnt001_bad.py"), select=["DET002", "LNT001"]
    )
    assert [(v.rule, v.line) for v in violations] == [("LNT001", 15)]


def test_lnt001_stale_ordered_annotation():
    violations = lint_file(
        os.path.join(FIXTURES, "repro", "prober", "lnt001_ordered.py")
    )
    assert [(v.rule, v.line) for v in violations] == [("LNT001", 5)]
    assert "ordered" in violations[0].message
    assert "DET002" in violations[0].message


def test_lnt001_silent_on_unparseable_files():
    violations = lint_source("def broken(:\n", path="broken.py")
    assert not any(v.rule == "LNT001" for v in violations)


def test_lnt001_counts_program_rule_suppression_as_used(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "engine.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def run_campaign(spec):\n"
        "    return time.time()  # repro-lint: disable=DET101\n"
    )
    # DET001 deselected: only the program rule can consume the comment.
    code, output = run_cli(["--select", "DET101,LNT001", str(tmp_path)])
    assert code == 0, output
    assert "LNT001" not in output


def test_lnt001_flags_unused_program_rule_suppression(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "engine.py").write_text(
        "def harmless():\n"
        "    return 1  # repro-lint: disable=DET101\n"
    )
    code, output = run_cli(["--select", "DET101,LNT001", str(tmp_path)])
    assert code == 1, output
    assert "LNT001" in output
    assert "disable=DET101" in output


PERF_HOT_SOURCE = (
    "def spin(items):  # repro-lint: hot-loop\n"
    "    out = []\n"
    "    for item in items:\n"
    "        out.append({'item': item})"
)


def test_lnt001_counts_perf_suppression_as_used(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "hot.py").write_text(
        PERF_HOT_SOURCE + "  # repro-lint: disable=PERF101\n    return out\n"
    )
    code, output = run_cli(["--select", "PERF101,LNT001", str(tmp_path)])
    assert code == 0, output
    assert "LNT001" not in output
    assert "PERF101" not in output


def test_lnt001_flags_unused_perf_suppression(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "cold.py").write_text(
        "def harmless():\n"
        "    return 1  # repro-lint: disable=PERF102\n"
    )
    code, output = run_cli(["--select", "PERF102,LNT001", str(tmp_path)])
    assert code == 1, output
    assert "LNT001" in output
    assert "disable=PERF102" in output


def test_multi_rule_disable_line_suppresses_both_perf_rules(tmp_path):
    # One comment carrying two PERF rules: the dict allocation (PERF101)
    # and the list membership test (PERF102) on the same line are both
    # suppressed, and LNT001 counts the shared comment as used.
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "hot.py").write_text(
        "def spin(items):  # repro-lint: hot-loop\n"
        "    out = []\n"
        "    seen = list((0,))\n"
        "    for item in items:\n"
        "        out.append({'ok': item in seen})"
        "  # repro-lint: disable=PERF101,PERF102\n"
        "    return out\n"
    )
    code, output = run_cli(
        ["--select", "PERF101,PERF102,LNT001", str(tmp_path)]
    )
    assert code == 0, output
    assert output.strip().endswith("0 violations found")


def test_multi_rule_disable_line_only_covers_named_perf_rules(tmp_path):
    # disable=PERF102,PERF103 does NOT cover the PERF101 allocation on
    # the same line — and the PERF103 half is unused, so LNT001 fires.
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "hot.py").write_text(
        "def spin(items):  # repro-lint: hot-loop\n"
        "    out = []\n"
        "    seen = list((0,))\n"
        "    for item in items:\n"
        "        out.append({'ok': item in seen})"
        "  # repro-lint: disable=PERF102,PERF103\n"
        "    return out\n"
    )
    code, output = run_cli(
        ["--select", "PERF101,PERF102,PERF103,LNT001", str(tmp_path)]
    )
    assert code == 1, output
    assert "PERF101" in output
    assert "LNT001" in output and "PERF103" in output
