"""Suppression comment edge cases: multi-rule disables and comments
inside multi-line statements."""

from repro.lint.core import lint_source

MODULE = "repro.prober.fixture"  # in scope for DET001 and DET002


def rules_at(violations):
    return sorted((v.rule, v.line) for v in violations)


def test_multi_rule_disable_on_one_line():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f(items):\n"
        "    for x in {1, 2}: time.time()  # repro-lint: disable=DET001,DET002\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert violations == []


def test_multi_rule_disable_counterpart_without_comment():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f(items):\n"
        "    for x in {1, 2}: time.time()\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert {v.rule for v in violations} == {"DET001", "DET002"}
    assert all(v.line == 5 for v in violations)


def test_multi_rule_disable_partially_used_suppresses_only_named_rules():
    # Only DET002 fires here; DET001's half of the comment is unearned.
    source = (
        "def f(items):\n"
        "    for x in {1, 2}:\n"
        "        pass  # fine\n"
        "    return [y for y in {3, 4}]  # repro-lint: disable=DET001,DET002\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert rules_at(violations) == [("DET002", 2), ("LNT001", 4)]
    assert "disable=DET001" in violations[-1].message


def test_suppression_inside_multiline_statement_anchors_to_violation_line():
    # The banned call sits on line 3 of a multi-line call; the comment
    # must live on that physical line to suppress it.
    source = (
        "import time\n"
        "\n"
        "value = max(\n"
        "    time.time(),  # repro-lint: disable=DET001\n"
        "    0.0,\n"
        ")\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert violations == []


def test_suppression_on_opening_line_of_multiline_statement_misses():
    source = (
        "import time\n"
        "\n"
        "value = max(  # repro-lint: disable=DET001\n"
        "    time.time(),\n"
        "    0.0,\n"
        ")\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    # The violation anchors at the call's own line (4), so the comment on
    # line 3 both fails to suppress it AND is itself flagged as unused.
    assert rules_at(violations) == [("DET001", 4), ("LNT001", 3)]
