"""Suppression comment edge cases: multi-rule disables and comments
inside multi-line statements."""

from repro.lint.core import lint_source

MODULE = "repro.prober.fixture"  # in scope for DET001 and DET002


def rules_at(violations):
    return sorted((v.rule, v.line) for v in violations)


def test_multi_rule_disable_on_one_line():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f(items):\n"
        "    for x in {1, 2}: time.time()  # repro-lint: disable=DET001,DET002\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert violations == []


def test_multi_rule_disable_counterpart_without_comment():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f(items):\n"
        "    for x in {1, 2}: time.time()\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert {v.rule for v in violations} == {"DET001", "DET002"}
    assert all(v.line == 5 for v in violations)


def test_multi_rule_disable_partially_used_suppresses_only_named_rules():
    # Only DET002 fires here; DET001's half of the comment is unearned.
    source = (
        "def f(items):\n"
        "    for x in {1, 2}:\n"
        "        pass  # fine\n"
        "    return [y for y in {3, 4}]  # repro-lint: disable=DET001,DET002\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert rules_at(violations) == [("DET002", 2), ("LNT001", 4)]
    assert "disable=DET001" in violations[-1].message


def test_suppression_inside_multiline_statement_anchors_to_violation_line():
    # The banned call sits on line 3 of a multi-line call; the comment
    # must live on that physical line to suppress it.
    source = (
        "import time\n"
        "\n"
        "value = max(\n"
        "    time.time(),  # repro-lint: disable=DET001\n"
        "    0.0,\n"
        ")\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert violations == []


def test_suppression_on_opening_line_of_multiline_statement_misses():
    source = (
        "import time\n"
        "\n"
        "value = max(  # repro-lint: disable=DET001\n"
        "    time.time(),\n"
        "    0.0,\n"
        ")\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    # The violation anchors at the call's own line (4), so the comment on
    # line 3 both fails to suppress it AND is itself flagged as unused.
    assert rules_at(violations) == [("DET001", 4), ("LNT001", 3)]


DECORATED = (
    "import time\n"
    "\n"
    "\n"
    "def sched(when):\n"
    "    def wrap(fn):\n"
    "        return fn\n"
    "    return wrap\n"
    "\n"
    "\n"
    "@sched(time.time()){deco_comment}\n"
    "def job():{def_comment}\n"
    "    pass\n"
)


def test_suppression_on_decorator_line_of_decorated_function():
    # A banned call inside a decorator anchors at the decorator's own
    # line; the comment there suppresses it.
    source = DECORATED.format(
        deco_comment="  # repro-lint: disable=DET001", def_comment=""
    )
    assert lint_source(source, path="x.py", module=MODULE) == []


def test_suppression_on_def_line_misses_decorator_violation():
    # The def line is NOT the decorator line: the comment fails to
    # suppress the decorator's violation and is flagged unused itself.
    source = DECORATED.format(
        deco_comment="", def_comment="  # repro-lint: disable=DET001"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert rules_at(violations) == [("DET001", 10), ("LNT001", 11)]


def test_suppression_on_first_line_of_multiline_with():
    # A violation anchored on the opening line of a multi-line ``with``
    # is suppressed by a comment on that same physical line, even though
    # the statement spans several more.
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f(ctx):\n"
        "    with ctx.start(time.time()), (  # repro-lint: disable=DET001\n"
        "        ctx.stop()\n"
        "    ):\n"
        "        pass\n"
    )
    assert lint_source(source, path="x.py", module=MODULE) == []


def test_multiline_with_violation_on_later_line_not_covered_by_first():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f(ctx):\n"
        "    with ctx.start(), (  # repro-lint: disable=DET001\n"
        "        ctx.stop(time.time())\n"
        "    ):\n"
        "        pass\n"
    )
    violations = lint_source(source, path="x.py", module=MODULE)
    assert rules_at(violations) == [("DET001", 6), ("LNT001", 5)]
