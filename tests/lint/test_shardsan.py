"""ShardSan — runtime shared-world write sanitizer: setattr tripwires,
construction and build exemptions, container watching, restore
semantics, the pytest plugin, and the ``probe --shardsan`` gate."""

import os
import subprocess
import sys

import pytest

from repro.lint.shardsan import (
    ShardSan,
    ShardSanUsageError,
    ShardSanViolation,
)
from repro.netsim import Internet, InternetConfig
from repro.netsim.ratelimit import TokenBucket

HERE = os.path.dirname(__file__)
SRC = os.path.normpath(os.path.join(HERE, "..", "..", "src"))

SMALL_WORLD = InternetConfig(seed=7, n_edge=12, cpe_customers_per_isp=40)


def repro_caller(body):
    """Compile ``body`` under a fake ``repro.*`` module name so its writes
    trip the scope="repro" tripwires; returns the defined ``f``."""
    namespace = {"__name__": "repro.fake_shardsan_fixture"}
    exec(compile(body, "<shardsan-fixture>", "exec"), namespace)
    return namespace["f"]


@pytest.fixture(scope="module")
def world():
    return Internet.from_config(SMALL_WORLD)


# -- setattr tripwires ------------------------------------------------------


def test_unregistered_setattr_from_repro_module_raises():
    bucket = TokenBucket(1000.0, 10.0)
    # rate is a provisioning knob, deliberately NOT in @run_state.
    fn = repro_caller("def f(bucket):\n    bucket.rate = 9.0\n")
    with ShardSan():
        with pytest.raises(ShardSanViolation) as excinfo:
            fn(bucket)
    assert "TokenBucket.rate" in str(excinfo.value)
    assert "repro.fake_shardsan_fixture" in str(excinfo.value)


def test_registered_field_write_is_allowed():
    bucket = TokenBucket(1000.0, 10.0)
    fn = repro_caller("def f(bucket):\n    bucket.allowed = 3\n")
    with ShardSan():
        fn(bucket)
    assert bucket.allowed == 3


def test_shared_field_write_is_allowed(world):
    fn = repro_caller("def f(world):\n    world._path_cache = dict(world._path_cache)\n")
    with ShardSan():
        fn(world)


def test_construction_inside_region_is_exempt():
    fn = repro_caller(
        "from repro.netsim.ratelimit import TokenBucket\n"
        "def f():\n    return TokenBucket(500.0, 5.0)\n"
    )
    with ShardSan():
        bucket = fn()
    assert bucket.rate == 500.0


def test_world_build_inside_region_is_exempt():
    # Building a world writes dozens of unregistered fields — all from
    # __init__ bodies or repro.netsim.build, both exempt by design.
    with ShardSan():
        fresh = Internet.from_config(SMALL_WORLD)
    assert fresh.truth.routers


def test_non_repro_callers_pass_through():
    bucket = TokenBucket(1000.0, 10.0)
    with ShardSan():
        bucket.rate = 2000.0  # this module is not repro.*
    assert bucket.rate == 2000.0


def test_scope_all_trips_any_caller():
    bucket = TokenBucket(1000.0, 10.0)
    with ShardSan(scope="all"):
        with pytest.raises(ShardSanViolation):
            bucket.rate = 2000.0
    assert bucket.rate == 1000.0  # raise mode blocks the write


# -- record mode ------------------------------------------------------------


def test_record_mode_collects_reports_and_writes_through():
    bucket = TokenBucket(1000.0, 10.0)
    fn = repro_caller("def f(bucket):\n    bucket.burst = 20.0\n")
    with ShardSan(mode="record") as sanitizer:
        fn(bucket)
    assert bucket.burst == 20.0  # record mode lets the write proceed
    (report,) = sanitizer.reports
    assert report.kind == "setattr"
    assert report.target == "TokenBucket.burst"
    assert report.caller == "repro.fake_shardsan_fixture"
    assert report.stack
    assert "TokenBucket.burst" in report.summary()


# -- container watching -----------------------------------------------------


def test_watched_unregistered_container_trips(world):
    fn = repro_caller("def f(world):\n    world.truth.routers[-1] = None\n")
    with ShardSan() as sanitizer:
        assert sanitizer.watch(world) > 0
        with pytest.raises(ShardSanViolation) as excinfo:
            fn(world)
    assert "GroundTruth.routers.setitem" in str(excinfo.value)
    assert -1 not in world.truth.routers  # raise mode blocks the write


def test_registered_container_mutation_is_not_watched(world):
    router = next(iter(world.truth.routers.values()))
    # atomic_frag_until is registered per-run state on Router.
    fn = repro_caller("def f(router):\n    router.atomic_frag_until[5] = 1\n")
    with ShardSan() as sanitizer:
        sanitizer.watch(world)
        fn(router)
    assert router.atomic_frag_until.pop(5) == 1


def test_shared_cache_mutation_is_not_watched(world):
    fn = repro_caller("def f(world):\n    world._path_cache.clear()\n")
    with ShardSan() as sanitizer:
        sanitizer.watch(world)
        fn(world)


def test_unwatch_restores_plain_types_and_preserves_mutations(world):
    fn = repro_caller("def f(world):\n    world._manglers[-7] = 'rewrite'\n")
    with ShardSan(mode="record") as sanitizer:
        sanitizer.watch(world)
        fn(world)
        assert type(world._manglers) is not dict
    assert type(world._manglers) is dict
    assert type(world.truth.routers) is dict
    assert world._manglers.pop(-7) == "rewrite"
    assert len(sanitizer.reports) == 1


def test_setattr_patches_are_restored_on_exit():
    original = TokenBucket.__dict__.get("__setattr__")
    with ShardSan():
        assert TokenBucket.__dict__.get("__setattr__") is not original
    assert TokenBucket.__dict__.get("__setattr__") is original


# -- end-to-end: campaigns on one watched world -----------------------------


def test_campaign_across_shard_widths_is_clean(world):
    from repro.prober import CampaignSpec, Yarrp6Config, run_parallel
    from repro.prober import parallel as parallel_mod

    targets = tuple(world.truth.all_host_addresses()[:48])
    spec = CampaignSpec(
        internet=SMALL_WORLD,
        vantage="US-EDU-1",
        targets=targets,
        pps=1000.0,
        config=Yarrp6Config(max_ttl=16, fill=False),
    )
    with ShardSan(mode="record") as sanitizer:
        shared = parallel_mod._world_for(SMALL_WORLD)
        assert sanitizer.watch(shared) > 0
        for shards in (1, 2, 4):
            run_parallel(spec, shards=shards, processes=1)
    assert sanitizer.reports == []


# -- configuration guards ---------------------------------------------------


def test_invalid_mode_and_scope_are_usage_errors():
    with pytest.raises(ShardSanUsageError):
        ShardSan(mode="bogus")
    with pytest.raises(ShardSanUsageError):
        ShardSan(scope="bogus")


# -- pytest plugin ----------------------------------------------------------

PLUGIN_TEST = """\
def test_unregistered_write_from_repro_code():
    from repro.netsim.ratelimit import TokenBucket
    bucket = TokenBucket(1000.0, 10.0)
    namespace = {"__name__": "repro.fake_plugin_fixture"}
    exec("def f(bucket):\\n    bucket.rate = 1.0", namespace)
    namespace["f"](bucket)
"""


def run_pytest(tmp_path, extra):
    test_file = tmp_path / "test_plugin_fixture.py"
    test_file.write_text(PLUGIN_TEST)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "repro.lint.shardsan_pytest",
         str(test_file)] + extra,
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )


def test_pytest_plugin_sanitizes_test_calls(tmp_path):
    tripped = run_pytest(tmp_path, ["--shardsan"])
    assert tripped.returncode == 1
    assert "ShardSanViolation" in tripped.stdout
    clean = run_pytest(tmp_path, [])
    assert clean.returncode == 0, clean.stdout


# -- probe --shardsan: the CLI gate -----------------------------------------


@pytest.fixture(scope="module")
def campaign_inputs(tmp_path_factory):
    from repro.cli.main import main

    base = tmp_path_factory.mktemp("shardsan-campaign")
    world_path = str(base / "world.json")
    seeds = str(base / "seeds.jsonl")
    targets = str(base / "targets.jsonl")
    assert main(["world", "--seed", "7", "--edge", "12", "--cpe", "40",
                 "--out", world_path]) == 0
    assert main(["seeds", "--world", world_path, "--source", "caida",
                 "--out", seeds]) == 0
    assert main(["targets", "--seeds", seeds, "--out", targets]) == 0
    return base, world_path, targets


def test_probe_shardsan_gate_is_clean(campaign_inputs, capsys):
    from repro.cli.main import main

    base, world_path, targets = campaign_inputs
    out = str(base / "gate.yrp6")
    assert main(["probe", "--world", world_path, "--targets", targets,
                 "--shardsan", "--out", out]) == 0
    output = capsys.readouterr().out
    for shards in (1, 2, 4):
        assert "shardsan: shards=%d clean" % shards in output
    assert "shardsan: clean (0 unregistered writes across shards 1/2/4)" in output
    assert os.path.getsize(out) > 0


def test_probe_shardsan_rejects_non_yarrp6(campaign_inputs):
    from repro.cli.main import main

    base, world_path, targets = campaign_inputs
    code = main(["probe", "--world", world_path, "--targets", targets,
                 "--prober", "sequential", "--shardsan",
                 "--out", str(base / "never.yrp6")])
    assert code == 2


def test_probe_shardsan_and_detsan_are_exclusive(campaign_inputs):
    from repro.cli.main import main

    base, world_path, targets = campaign_inputs
    code = main(["probe", "--world", world_path, "--targets", targets,
                 "--detsan", "--shardsan", "--out", str(base / "never.yrp6")])
    assert code == 2
