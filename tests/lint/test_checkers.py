"""Fixture-driven tests for each lint rule: rule ids, line numbers, and
suppression-comment behaviour."""

import os

import pytest

from repro.lint import lint_file, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture_path(*parts):
    return os.path.join(FIXTURES, *parts)


def lines_for(violations, rule):
    return [v.line for v in violations if v.rule == rule]


class TestDET001:
    def test_all_sources_flagged_at_their_lines(self):
        violations = lint_file(fixture_path("det001_bad.py"))
        assert {v.rule for v in violations} == {"DET001"}
        assert lines_for(violations, "DET001") == [13, 17, 21, 25, 29, 33, 37, 41]

    def test_messages_name_the_source(self):
        violations = lint_file(fixture_path("det001_bad.py"))
        by_line = {v.line: v.message for v in violations}
        assert "time.time" in by_line[13]
        assert "time.time" in by_line[17]  # resolved through the import alias
        assert "datetime.datetime.now" in by_line[21]
        assert "random.randint" in by_line[25]
        assert "without a seed" in by_line[29]
        assert "os.urandom" in by_line[33]
        assert "uuid.uuid4" in by_line[37]
        assert "PYTHONHASHSEED" in by_line[41]

    def test_seeded_random_and_suppressed_line_are_clean(self):
        violations = lint_file(fixture_path("det001_bad.py"))
        # the seeded_ok/suppressed functions sit past the last violation
        assert max(v.line for v in violations) == 41

    def test_disable_comment_suppresses_only_named_rule(self):
        source = "import time\nx = time.time()  # repro-lint: disable=DET002\n"
        assert lines_for(lint_source(source), "DET001") == [2]
        source = "import time\nx = time.time()  # repro-lint: disable=DET001\n"
        assert lint_source(source) == []

    def test_disable_file_comment(self):
        source = (
            "# repro-lint: disable-file=DET001\n"
            "import time\n"
            "x = time.time()\n"
            "y = time.time()\n"
        )
        assert lint_source(source) == []

    def test_wallclock_boundary_time_reads_exempt_entropy_not(self):
        violations = lint_file(fixture_path("repro", "obs", "wallclock.py"))
        # The two time reads pass; the os.urandom on line 22 still fires.
        assert lines_for(violations, "DET001") == [22]
        assert "os.urandom" in violations[0].message

    def test_deadline_boundary_time_reads_exempt_entropy_not(self):
        """repro.prober.deadline is the supervisor's allowlisted doorway
        to host time — same shape as the wallclock boundary."""
        violations = lint_file(fixture_path("repro", "prober", "deadline.py"))
        assert lines_for(violations, "DET001") == [23]
        assert "os.urandom" in violations[0].message

    def test_instrumented_sim_code_cannot_read_wall_time(self):
        violations = lint_file(fixture_path("repro", "obs", "metrics_bad.py"))
        assert lines_for(violations, "DET001") == [18]
        assert "time.time" in violations[0].message

    def test_exemption_is_module_scoped_not_path_substring(self):
        source = "import time\nx = time.time()\n"
        assert lint_source(source, module="repro.obs.wallclock") == []
        flagged = lint_source(source, module="repro.obs.metrics")
        assert lines_for(flagged, "DET001") == [2]

    def test_real_wallclock_module_is_clean(self):
        from repro.obs import wallclock

        assert lint_file(wallclock.__file__) == []

    def test_profiler_boundary_time_reads_exempt_entropy_not(self):
        violations = lint_file(fixture_path("repro", "obs", "profiler.py"))
        # Both time reads pass; the uuid.uuid4 on line 23 still fires.
        assert lines_for(violations, "DET001") == [23]
        assert "uuid.uuid4" in violations[0].message

    def test_profiler_exemption_does_not_leak_to_other_obs_modules(self):
        source = "import time\nx = time.perf_counter()\n"
        assert lint_source(source, module="repro.obs.profiler") == []
        flagged = lint_source(source, module="repro.obs.metrics")
        assert lines_for(flagged, "DET001") == [2]

    def test_real_profiler_module_is_clean(self):
        from repro.obs import profiler

        assert lint_file(profiler.__file__) == []


class TestDET002:
    def test_fixture_lines(self):
        violations = lint_file(
            fixture_path("repro", "prober", "det002_bad.py")
        )
        assert {v.rule for v in violations} == {"DET002"}
        assert lines_for(violations, "DET002") == [16, 19, 33, 38, 44]

    def test_scoped_to_order_sensitive_packages(self):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        in_scope = lint_source(source, module="repro.prober.thing")
        out_of_scope = lint_source(source, module="repro.addrs.thing")
        assert lines_for(in_scope, "DET002") == [1]
        assert out_of_scope == []

    def test_module_path_derived_from_file_location(self):
        # The fixture under fixtures/repro/prober/ got its module scope
        # from the path, with no explicit module= hint.
        violations = lint_file(
            fixture_path("repro", "prober", "det002_bad.py")
        )
        assert violations, "path-derived module should be order-sensitive"

    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in sorted({1, 2}):\n    print(x)\n",
            "total = sum(x for x in {1, 2})\n",
            "doubled = {x * 2 for x in {1, 2}}\n",
            "n = len({1, 2})\n",
        ],
    )
    def test_order_insensitive_consumers_allowed(self, snippet):
        assert lint_source(snippet, module="repro.netsim.thing") == []

    def test_lint_ordered_annotation_suppresses(self):
        source = "for x in {1, 2}:  # lint: ordered\n    print(x)\n"
        assert lint_source(source, module="repro.analysis.thing") == []

    def test_ordered_comment_inside_string_is_not_a_suppression(self):
        source = 'note = "# lint: ordered"\nfor x in {1, 2}:\n    print(x)\n'
        violations = lint_source(source, module="repro.analysis.thing")
        assert lines_for(violations, "DET002") == [2]


class TestDET003:
    def test_fixture_lines(self):
        violations = lint_file(fixture_path("det003_bad.py"))
        assert {v.rule for v in violations} == {"DET003"}
        assert lines_for(violations, "DET003") == [15, 16, 22, 25]

    def test_field_messages_name_offending_types(self):
        violations = lint_file(fixture_path("det003_bad.py"))
        by_line = {v.line: v.message for v in violations}
        assert "CampaignSpec.internet" in by_line[15]
        assert "Internet" in by_line[15]
        assert "Callable" in by_line[16]
        assert "ShardPlan.handle" in by_line[22]  # via string forward ref
        assert "must be a @dataclass" in by_line[25]

    def test_clean_spec_not_flagged(self):
        violations = lint_file(fixture_path("det003_bad.py"))
        assert all("CleanSpec" not in v.message for v in violations)

    def test_real_campaign_spec_is_clean(self):
        from repro.prober import parallel

        assert lint_file(parallel.__file__) == []


class TestPKT001:
    def test_fixture_lines(self):
        violations = lint_file(fixture_path("pkt001_bad.py"))
        assert {v.rule for v in violations} == {"PKT001"}
        assert lines_for(violations, "PKT001") == [8, 10, 19, 25, 30]

    def test_messages(self):
        violations = lint_file(fixture_path("pkt001_bad.py"))
        by_line = {v.line: v.message for v in violations}
        assert "MAGIC" in by_line[8]
        assert "TARGET_SUM" in by_line[10]
        assert "12 bytes but HEADER_LENGTH is 8" in by_line[19]
        assert "PAYLOAD_LENGTH" in by_line[25]
        assert "one's complement" in by_line[30]

    def test_real_packet_modules_are_clean(self):
        from repro.packet import fragment, ipv6, tcp, udp
        from repro.prober import encoding

        for module in (fragment, ipv6, tcp, udp, encoding):
            assert lint_file(module.__file__) == [], module.__name__

    def test_payload_length_drift_detected(self):
        # Mutate the real encoding contract: a 13-byte PAYLOAD_LENGTH
        # must trip the checker against the unchanged "!IBBI" head.
        from repro.prober import encoding

        with open(encoding.__file__) as handle:
            source = handle.read()
        mutated = source.replace("PAYLOAD_LENGTH = 12", "PAYLOAD_LENGTH = 13")
        assert mutated != source
        violations = lint_source(mutated, module="repro.prober.encoding")
        assert any(
            v.rule == "PKT001" and "PAYLOAD_LENGTH" in v.message
            for v in violations
        )


class TestFramework:
    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n")
        assert [v.rule for v in violations] == ["E999"]

    def test_violations_sorted_by_location(self):
        violations = lint_file(fixture_path("pkt001_bad.py"))
        locations = [(v.path, v.line, v.column) for v in violations]
        assert locations == sorted(locations)

    def test_select_filters_rules(self):
        from repro.lint.core import lint_file as lint

        only = lint(fixture_path("det003_bad.py"), select=["PKT001"])
        assert only == []

    def test_registry_rejects_duplicates(self):
        from repro.lint.core import Checker, register

        class Fresh(Checker):
            rule = "DET001"  # collides with the built-in

        with pytest.raises(ValueError):
            register(Fresh)
