"""Fixture self-tests for the whole-program rules (DET101/RNG101/OBS101,
MUT101-103, and the PERF101-103 hot-path rules), the facts cache, and
the program-root / hot-loop marker comments."""

import os
import shutil
import sys

from repro.lint.program import PROGRAM_RULES, lint_program_paths

HERE = os.path.dirname(__file__)
PROGRAM_FIXTURES = os.path.join(HERE, "fixtures", "program")


def run_fixture(name, select):
    base = os.path.join(PROGRAM_FIXTURES, name)
    violations, program = lint_program_paths([base], select=select)
    return violations, program


def located(violations):
    return sorted((os.path.basename(v.path), v.line) for v in violations)


# -- DET101: transitive impurity ------------------------------------------


def test_det101_flags_every_function_on_the_impure_chain():
    violations, _ = run_fixture("det101", select=["DET101"])
    assert all(v.rule == "DET101" for v in violations)
    assert located(violations) == [
        ("campaign.py", 8),
        ("campaign.py", 10),
        ("engine.py", 7),
        ("engine.py", 11),
        ("engine.py", 22),
    ]


def test_det101_message_shows_the_full_call_chain():
    violations, _ = run_fixture("det101", select=["DET101"])
    by_line = {(os.path.basename(v.path), v.line): v.message for v in violations}
    assert "engine.jitter_us -> time.time" in by_line[("engine.py", 7)]
    assert (
        "engine.helper -> engine.jitter_us -> time.time"
        in by_line[("engine.py", 11)]
    )
    assert (
        "engine.Engine.run -> engine.helper -> engine.jitter_us -> time.time"
        in by_line[("engine.py", 22)]
    )
    # Cross-module chain through a nested callback.
    assert (
        "campaign.run_campaign.tick -> engine.helper -> engine.jitter_us"
        in by_line[("campaign.py", 8)]
    )
    assert (
        "campaign.run_campaign -> campaign.run_campaign.tick"
        in by_line[("campaign.py", 10)]
    )


def test_det101_names_the_program_root():
    violations, _ = run_fixture("det101", select=["DET101"])
    roots = {v.message.split("program root '")[1].split("'")[0] for v in violations}
    assert "engine.Engine.run" in roots
    assert "campaign.run_campaign" in roots


def test_det101_suppressed_source_does_not_seed_impurity():
    violations, _ = run_fixture("det101", select=["DET101"])
    # stamped() calls time.time_ns() under a DET001 disable; that source
    # must not leak into any chain, and Engine.run's finding must come
    # only from the helper() path.
    assert not any("time.time_ns" in v.message for v in violations)


def test_det101_unreachable_impurity_is_not_flagged():
    violations, _ = run_fixture("det101", select=["DET101"])
    assert not any("offline_report" in v.message for v in violations)
    assert not any(v.line == 27 for v in violations)


# -- RNG101: seed provenance ----------------------------------------------


def test_rng101_flags_entropy_opaque_and_boundary_only():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    assert all(v.rule == "RNG101" for v in violations)
    assert located(violations) == [
        ("boundary.py", 14),
        ("rng.py", 19),
        ("rng.py", 23),
    ]


def test_rng101_entropy_seed_message():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    entropy = [v for v in violations if v.line == 19][0]
    assert "os.urandom" in entropy.message


def test_rng101_traces_opaque_value_to_the_call_site():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    opaque = [v for v in violations if v.line == 23][0]
    assert "parameter 'count'" in opaque.message
    assert "rng.py:32" in opaque.message
    assert "compute()" in opaque.message


def test_rng101_seed_mixed_derivation_is_clean():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    # good() (line 10) and seed_mixed() (line 15) are sanctioned: the
    # seed parameter is mixed arithmetically with constants / opaque ints.
    assert not any(v.line in (10, 15) for v in violations)


def test_rng101_boundary_crossing_names_the_spec_class():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    boundary = [v for v in violations if "boundary.py" in v.path][0]
    assert "CampaignSpec" in boundary.message
    assert "worker boundary" in boundary.message


# -- OBS101: observe-only telemetry ---------------------------------------


def test_obs101_flags_readbacks_steering_simulation_state():
    violations, _ = run_fixture("obs101", select=["OBS101"])
    assert all(v.rule == "OBS101" for v in violations)
    assert located(violations) == [
        ("loop.py", 9),
        ("loop.py", 11),
        ("loop.py", 18),
    ]


def test_obs101_messages_name_the_flow_kind():
    violations, _ = run_fixture("obs101", select=["OBS101"])
    by_line = {v.line: v.message for v in violations}
    assert "branch condition" in by_line[9]
    assert "operand" in by_line[11]
    assert "object state" in by_line[18]
    for message in by_line.values():
        assert "observe-only" in message


def test_obs101_observe_path_is_clean():
    violations, _ = run_fixture("obs101", select=["OBS101"])
    assert not any("clean.py" in v.path for v in violations)


def test_obs101_flags_profiler_readbacks_steering_the_prober():
    violations, _ = run_fixture("obs101_profiler", select=["OBS101"])
    assert all(v.rule == "OBS101" for v in violations)
    assert located(violations) == [
        ("steer.py", 9),
        ("steer.py", 11),
        ("steer.py", 18),
    ]
    by_line = {v.line: v.message for v in violations}
    assert "total_seconds()" in by_line[9]
    assert "coverage()" in by_line[11]
    assert "to_profile_dict()" in by_line[18]


def test_obs101_profiler_observe_path_is_clean():
    # Phases, aggregates, byte accounting and the outbound export are
    # all sanctioned; only readbacks flowing back in are violations.
    violations, _ = run_fixture("obs101_profiler", select=["OBS101"])
    assert not any("observe.py" in v.path for v in violations)


def test_obs101_flags_failure_report_readbacks_steering_the_prober():
    """A FailureReport is telemetry like any other obs handle: the
    supervisor may record faults and ship the block out, but retry
    policy steered by a readback would make failure accounting
    load-bearing."""
    violations, _ = run_fixture("obs101_failures", select=["OBS101"])
    assert all(v.rule == "OBS101" for v in violations)
    assert located(violations) == [
        ("steer.py", 8),
        ("steer.py", 10),
        ("steer.py", 17),
    ]
    by_line = {v.line: v.message for v in violations}
    assert "counts()" in by_line[8]
    assert "counts()" in by_line[10]
    assert "faults()" in by_line[17]


def test_obs101_failure_report_write_and_ship_paths_are_clean():
    # record_fault/record_retry mutate telemetry (sanctioned) and
    # to_dict() flowing out through a return never comes back in.
    violations, _ = run_fixture("obs101_failures", select=["OBS101"])
    assert {v.line for v in violations} == {8, 10, 17}


# -- MUT101: shared-world shard safety --------------------------------------


def test_mut101_flags_unregistered_world_writes_only():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    assert all(v.rule == "MUT101" for v in violations)
    assert located(violations) == [("world.py", 11), ("world.py", 15)]


def test_mut101_expands_aliases_to_the_underlying_field():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    aliased = [v for v in violations if v.line == 15][0]
    # `cache = self._scratch; cache.append(1)` resolves to the field.
    assert "'self._scratch'" in aliased.message


def test_mut101_witness_chain_names_the_worker_root():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    direct = [v for v in violations if v.line == 11][0]
    assert "shard worker root 'parallel.run_shard'" in direct.message
    assert "parallel.run_shard -> world.Internet.probe" in direct.message


def test_mut101_registered_shared_and_unreachable_writes_are_clean():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    # line 9 (registered), 10 (shared cache), 18 (unreachable offline),
    # and helper's name-based registered write are all sanctioned.
    assert not any(v.line in (9, 10, 18) for v in violations)
    assert not any("parallel.py" in v.path for v in violations)


# -- MUT102: rewind completeness --------------------------------------------


def test_mut102_flags_all_three_disagreement_kinds():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    assert all(v.rule == "MUT102" for v in violations)
    assert located(violations) == [
        ("internet.py", 6),
        ("internet.py", 11),
        ("internet.py", 15),
    ]


def test_mut102_registered_but_never_reset_anchors_at_registration():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    ghost = [v for v in violations if v.line == 6][0]
    assert "'internet.Internet.ghost'" in ghost.message
    assert "never resets it" in ghost.message


def test_mut102_shared_field_must_survive_the_rewind():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    cache = [v for v in violations if v.line == 11][0]
    assert "'internet.Internet._cache'" in cache.message
    assert "declared shared" in cache.message


def test_mut102_reset_but_unregistered_shows_the_chain():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    scratch = [v for v in violations if v.line == 15][0]
    assert "'internet.Internet.scratch'" in scratch.message
    assert (
        "internet.Internet.fresh_run_state -> internet.Internet.reset_helpers"
        in scratch.message
    )


def test_mut102_constructed_per_run_classes_are_exempt():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    # Engine.events is registered and never reset, but Engine instances
    # never outlive a run (constructed_per_run=True).
    assert not any("Engine" in v.message for v in violations)


# -- MUT103: pickle-boundary immutability ------------------------------------


def test_mut103_flags_every_write_through_the_spec():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    assert all(v.rule == "MUT103" for v in violations)
    assert located(violations) == [
        ("parallel.py", 5),
        ("parallel.py", 13),
        ("parallel.py", 17),
        ("parallel.py", 23),
    ]


def test_mut103_taint_follows_sub_objects_and_renames():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    by_line = {v.line: v.message for v in violations}
    # spec.internet handed to configure(config) taints 'config'.
    assert "'config.seed'" in by_line[13]
    assert "parallel.run_shard -> parallel.configure" in by_line[13]
    # spec handed to run(job) taints 'job'.
    assert "'job.name'" in by_line[17]


def test_mut103_method_calls_map_positional_args_past_self():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    method = [v for v in violations if v.line == 23][0]
    assert "'spec.pps'" in method.message
    assert "parallel.Runner.apply" in method.message


def test_mut103_reads_of_the_spec_are_clean():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    # untouched() only reads spec.targets — and is not tainted anyway.
    assert not any(v.line >= 26 for v in violations)


# -- PERF101: per-iteration allocation in hot regions -----------------------


def test_perf101_flags_allocation_sites_at_exact_lines():
    violations, _ = run_fixture("perf101", select=["PERF101"])
    assert all(v.rule == "PERF101" for v in violations)
    assert located(violations) == [
        ("hot.py", 14),  # comprehension in the hot root's body
        ("hot.py", 17),  # dict literal inside the loop
        ("hot.py", 25),  # Scratch(...) construction in the callee's loop
        ("hot.py", 26),  # struct.pack in the callee's loop
    ]


def test_perf101_messages_carry_witness_chains():
    violations, _ = run_fixture("perf101", select=["PERF101"])
    by_line = {v.line: v.message for v in violations}
    # Root-body sites chain trivially to the root itself.
    assert "rooted at 'hot.craft_block'" in by_line[14]
    assert "via hot.craft_block " in by_line[14]
    # Callee sites show the interprocedural chain from the hot root.
    assert "via hot.craft_block -> hot.encode" in by_line[25]
    assert "a new Scratch object" in by_line[25]
    assert "struct.pack" in by_line[26]


def test_perf101_cold_twin_and_empty_displays_are_silent():
    violations, _ = run_fixture("perf101", select=["PERF101"])
    # cold_block (lines 37-43) repeats the same patterns unreachably;
    # `out = []` accumulator inits and the raise path stay silent too.
    assert not any(v.line >= 33 for v in violations)


# -- PERF102: superlinear accumulation in hot regions -----------------------


def test_perf102_flags_quadratic_patterns_at_exact_lines():
    violations, _ = run_fixture("perf102", select=["PERF102"])
    assert all(v.rule == "PERF102" for v in violations)
    assert located(violations) == [
        ("accumulate.py", 16),  # log += str concatenation
        ("accumulate.py", 17),  # membership test against a list
        ("accumulate.py", 19),  # recent.insert(0, ...)
        ("accumulate.py", 20),  # sorted() inside the loop
    ]


def test_perf102_messages_name_the_accumulators():
    violations, _ = run_fixture("perf102", select=["PERF102"])
    by_line = {v.line: v.message for v in violations}
    assert "'log' grows by str += concatenation" in by_line[16]
    assert "membership test against list 'seen'" in by_line[17]
    assert "'recent.insert(0, ...)'" in by_line[19]
    assert "full re-sort per iteration" in by_line[20]
    assert all("via accumulate.drain" in v.message for v in violations)


def test_perf102_straight_line_helper_and_cold_twin_are_silent():
    violations, _ = run_fixture("perf102", select=["PERF102"])
    # push()'s += is straight-line in a non-root function; cold_drain
    # repeats the loop patterns unreachably.
    assert not any(v.line >= 25 for v in violations)


# -- PERF103: numpy <-> Python scalar churn in hot regions ------------------


def test_perf103_flags_churn_sites_at_exact_lines():
    violations, _ = run_fixture("perf103", select=["PERF103"])
    assert all(v.rule == "PERF103" for v in violations)
    assert located(violations) == [
        ("vectors.py", 17),  # values[index] by loop variable
        ("vectors.py", 18),  # for value in values
        ("vectors.py", 21),  # np.append in the while loop
        ("vectors.py", 30),  # squeezed[index] in the reachable callee
        ("vectors.py", 31),  # .item() in the reachable callee
    ]


def test_perf103_messages_carry_witness_chains():
    violations, _ = run_fixture("perf103", select=["PERF103"])
    by_line = {v.line: v.message for v in violations}
    assert "element-wise indexing of array 'values'" in by_line[17]
    assert "Python-level loop over array 'values'" in by_line[18]
    assert "'np.append' copies the whole array" in by_line[21]
    assert "via vectors.fold -> vectors.collapse" in by_line[30]
    assert "'.item()' unboxing one numpy scalar" in by_line[31]


def test_perf103_constant_indexing_and_cold_twin_are_silent():
    violations, _ = run_fixture("perf103", select=["PERF103"])
    # squeezed[0] (line 26) is a one-off read, not per-element churn;
    # cold_fold (lines 39+) repeats the loop patterns unreachably.
    assert not any(v.line in (26,) or v.line >= 35 for v in violations)


def test_hot_loop_comment_marks_custom_roots(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "custom.py").write_text(
        "def spin(items):  # repro-lint: hot-loop\n"
        "    return churn(items)\n"
        "\n"
        "\n"
        "def churn(items):\n"
        "    out = []\n"
        "    for item in items:\n"
        "        out.append({'item': item})\n"
        "    return out\n"
        "\n"
        "\n"
        "def unmarked(items):\n"
        "    out = []\n"
        "    for item in items:\n"
        "        out.append({'item': item})\n"
        "    return out\n"
    )
    violations, _ = lint_program_paths([str(tmp_path)], select=["PERF101"])
    # Only the churn() reached from the marked root fires; the identical
    # unmarked() function is outside every hot region.
    assert located(violations) == [("custom.py", 8)]
    assert "via custom.spin -> custom.churn" in violations[0].message


# -- program mechanics ------------------------------------------------------


def test_program_rules_registry_is_complete():
    assert set(PROGRAM_RULES) == {
        "DET101",
        "RNG101",
        "OBS101",
        "MUT101",
        "MUT102",
        "MUT103",
        "PERF101",
        "PERF102",
        "PERF103",
    }


def test_program_output_is_deterministic_across_runs():
    first, _ = run_fixture("det101", select=None)
    second, _ = run_fixture("det101", select=None)
    assert [v.format() for v in first] == [v.format() for v in second]


def test_program_root_comment_marks_custom_roots(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "custom.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def my_loop():  # repro-lint: program-root\n"
        "    return dirty()\n"
        "\n"
        "\n"
        "def dirty():\n"
        "    return time.time()\n"
    )
    violations, _ = lint_program_paths([str(tmp_path)], select=["DET101"])
    assert located(violations) == [("custom.py", 5), ("custom.py", 9)]
    assert any("my_loop" in v.message for v in violations)


def test_live_tree_has_no_program_violations():
    src = os.path.normpath(os.path.join(HERE, "..", "..", "src", "repro"))
    violations, program = lint_program_paths([src])
    assert violations == []
    # The graph must actually cover the tree: every default root resolved.
    assert program.graph.edge_count > 500


# -- facts cache ------------------------------------------------------------


def _copy_fixture(name, tmp_path):
    dest = tmp_path / "tree"
    shutil.copytree(os.path.join(PROGRAM_FIXTURES, name), str(dest))
    return dest


def test_cache_cold_then_warm(tmp_path):
    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    cold, program = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program.cache_misses > 0
    assert program.cache_hits == 0
    warm, program2 = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program2.cache_misses == 0
    assert program2.cache_hits == program.cache_misses
    assert [v.format() for v in cold] == [v.format() for v in warm]


def test_cache_invalidates_only_the_edited_file(tmp_path):
    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    baseline, _ = lint_program_paths([str(tree)], cache_path=cache_path)
    engine = tree / "repro" / "netsim" / "engine.py"
    engine.write_text(engine.read_text() + "\n# touched\n")
    after, program = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program.cache_misses == 1
    assert program.cache_hits > 0
    assert [v.format() for v in baseline] == [v.format() for v in after]


def test_cache_invalidated_by_checker_version_bump(tmp_path):
    # A cache written under different checker logic versions is fully
    # discarded: bumping any rule's VERSION must flush stale facts.
    import json as json_mod

    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    baseline, program = lint_program_paths([str(tree)], cache_path=cache_path)
    with open(cache_path) as handle:
        payload = json_mod.load(handle)
    assert "=" in payload["checkers"]  # e.g. "DET101=1,...,MUT103=1"
    payload["checkers"] = payload["checkers"].replace("=1", "=0", 1)
    with open(cache_path, "w") as handle:
        json_mod.dump(payload, handle)
    after, program2 = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program2.cache_hits == 0
    assert program2.cache_misses == program.cache_misses
    assert [v.format() for v in baseline] == [v.format() for v in after]


def test_cache_invalidated_by_interpreter_version_change(tmp_path):
    # Facts depend on ast.parse output, which differs across feature
    # versions — a cache written under Python 3.9 must not be trusted
    # under 3.12 even for byte-identical sources (regression: the key
    # used to cover only FACTS_VERSION + checker_token + content hash).
    import json as json_mod

    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    baseline, program = lint_program_paths([str(tree)], cache_path=cache_path)
    with open(cache_path) as handle:
        payload = json_mod.load(handle)
    assert payload["python"] == "%d.%d" % sys.version_info[:2]
    payload["python"] = "3.0"  # pretend another interpreter wrote it
    with open(cache_path, "w") as handle:
        json_mod.dump(payload, handle)
    after, program2 = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program2.cache_hits == 0
    assert program2.cache_misses == program.cache_misses
    assert [v.format() for v in baseline] == [v.format() for v in after]
    # The rewritten cache records the real interpreter again.
    with open(cache_path) as handle:
        assert json_mod.load(handle)["python"] == "%d.%d" % sys.version_info[:2]


def test_cache_file_survives_corruption(tmp_path):
    tree = _copy_fixture("rng101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    lint_program_paths([str(tree)], cache_path=cache_path)
    with open(cache_path, "w") as handle:
        handle.write("{not json")
    violations, program = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program.cache_misses > 0  # fell back to re-extraction
    assert located(violations) == [
        ("boundary.py", 14),
        ("rng.py", 19),
        ("rng.py", 23),
    ]
