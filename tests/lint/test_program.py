"""Fixture self-tests for the whole-program rules (DET101/RNG101/OBS101),
the facts cache, and the program-root marker comment."""

import os
import shutil

from repro.lint.program import PROGRAM_RULES, lint_program_paths

HERE = os.path.dirname(__file__)
PROGRAM_FIXTURES = os.path.join(HERE, "fixtures", "program")


def run_fixture(name, select):
    base = os.path.join(PROGRAM_FIXTURES, name)
    violations, program = lint_program_paths([base], select=select)
    return violations, program


def located(violations):
    return sorted((os.path.basename(v.path), v.line) for v in violations)


# -- DET101: transitive impurity ------------------------------------------


def test_det101_flags_every_function_on_the_impure_chain():
    violations, _ = run_fixture("det101", select=["DET101"])
    assert all(v.rule == "DET101" for v in violations)
    assert located(violations) == [
        ("campaign.py", 8),
        ("campaign.py", 10),
        ("engine.py", 7),
        ("engine.py", 11),
        ("engine.py", 22),
    ]


def test_det101_message_shows_the_full_call_chain():
    violations, _ = run_fixture("det101", select=["DET101"])
    by_line = {(os.path.basename(v.path), v.line): v.message for v in violations}
    assert "engine.jitter_us -> time.time" in by_line[("engine.py", 7)]
    assert (
        "engine.helper -> engine.jitter_us -> time.time"
        in by_line[("engine.py", 11)]
    )
    assert (
        "engine.Engine.run -> engine.helper -> engine.jitter_us -> time.time"
        in by_line[("engine.py", 22)]
    )
    # Cross-module chain through a nested callback.
    assert (
        "campaign.run_campaign.tick -> engine.helper -> engine.jitter_us"
        in by_line[("campaign.py", 8)]
    )
    assert (
        "campaign.run_campaign -> campaign.run_campaign.tick"
        in by_line[("campaign.py", 10)]
    )


def test_det101_names_the_program_root():
    violations, _ = run_fixture("det101", select=["DET101"])
    roots = {v.message.split("program root '")[1].split("'")[0] for v in violations}
    assert "engine.Engine.run" in roots
    assert "campaign.run_campaign" in roots


def test_det101_suppressed_source_does_not_seed_impurity():
    violations, _ = run_fixture("det101", select=["DET101"])
    # stamped() calls time.time_ns() under a DET001 disable; that source
    # must not leak into any chain, and Engine.run's finding must come
    # only from the helper() path.
    assert not any("time.time_ns" in v.message for v in violations)


def test_det101_unreachable_impurity_is_not_flagged():
    violations, _ = run_fixture("det101", select=["DET101"])
    assert not any("offline_report" in v.message for v in violations)
    assert not any(v.line == 27 for v in violations)


# -- RNG101: seed provenance ----------------------------------------------


def test_rng101_flags_entropy_opaque_and_boundary_only():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    assert all(v.rule == "RNG101" for v in violations)
    assert located(violations) == [
        ("boundary.py", 14),
        ("rng.py", 19),
        ("rng.py", 23),
    ]


def test_rng101_entropy_seed_message():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    entropy = [v for v in violations if v.line == 19][0]
    assert "os.urandom" in entropy.message


def test_rng101_traces_opaque_value_to_the_call_site():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    opaque = [v for v in violations if v.line == 23][0]
    assert "parameter 'count'" in opaque.message
    assert "rng.py:32" in opaque.message
    assert "compute()" in opaque.message


def test_rng101_seed_mixed_derivation_is_clean():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    # good() (line 10) and seed_mixed() (line 15) are sanctioned: the
    # seed parameter is mixed arithmetically with constants / opaque ints.
    assert not any(v.line in (10, 15) for v in violations)


def test_rng101_boundary_crossing_names_the_spec_class():
    violations, _ = run_fixture("rng101", select=["RNG101"])
    boundary = [v for v in violations if "boundary.py" in v.path][0]
    assert "CampaignSpec" in boundary.message
    assert "worker boundary" in boundary.message


# -- OBS101: observe-only telemetry ---------------------------------------


def test_obs101_flags_readbacks_steering_simulation_state():
    violations, _ = run_fixture("obs101", select=["OBS101"])
    assert all(v.rule == "OBS101" for v in violations)
    assert located(violations) == [
        ("loop.py", 9),
        ("loop.py", 11),
        ("loop.py", 18),
    ]


def test_obs101_messages_name_the_flow_kind():
    violations, _ = run_fixture("obs101", select=["OBS101"])
    by_line = {v.line: v.message for v in violations}
    assert "branch condition" in by_line[9]
    assert "operand" in by_line[11]
    assert "object state" in by_line[18]
    for message in by_line.values():
        assert "observe-only" in message


def test_obs101_observe_path_is_clean():
    violations, _ = run_fixture("obs101", select=["OBS101"])
    assert not any("clean.py" in v.path for v in violations)


def test_obs101_flags_profiler_readbacks_steering_the_prober():
    violations, _ = run_fixture("obs101_profiler", select=["OBS101"])
    assert all(v.rule == "OBS101" for v in violations)
    assert located(violations) == [
        ("steer.py", 9),
        ("steer.py", 11),
        ("steer.py", 18),
    ]
    by_line = {v.line: v.message for v in violations}
    assert "total_seconds()" in by_line[9]
    assert "coverage()" in by_line[11]
    assert "to_profile_dict()" in by_line[18]


def test_obs101_profiler_observe_path_is_clean():
    # Phases, aggregates, byte accounting and the outbound export are
    # all sanctioned; only readbacks flowing back in are violations.
    violations, _ = run_fixture("obs101_profiler", select=["OBS101"])
    assert not any("observe.py" in v.path for v in violations)


def test_obs101_flags_failure_report_readbacks_steering_the_prober():
    """A FailureReport is telemetry like any other obs handle: the
    supervisor may record faults and ship the block out, but retry
    policy steered by a readback would make failure accounting
    load-bearing."""
    violations, _ = run_fixture("obs101_failures", select=["OBS101"])
    assert all(v.rule == "OBS101" for v in violations)
    assert located(violations) == [
        ("steer.py", 8),
        ("steer.py", 10),
        ("steer.py", 17),
    ]
    by_line = {v.line: v.message for v in violations}
    assert "counts()" in by_line[8]
    assert "counts()" in by_line[10]
    assert "faults()" in by_line[17]


def test_obs101_failure_report_write_and_ship_paths_are_clean():
    # record_fault/record_retry mutate telemetry (sanctioned) and
    # to_dict() flowing out through a return never comes back in.
    violations, _ = run_fixture("obs101_failures", select=["OBS101"])
    assert {v.line for v in violations} == {8, 10, 17}


# -- MUT101: shared-world shard safety --------------------------------------


def test_mut101_flags_unregistered_world_writes_only():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    assert all(v.rule == "MUT101" for v in violations)
    assert located(violations) == [("world.py", 11), ("world.py", 15)]


def test_mut101_expands_aliases_to_the_underlying_field():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    aliased = [v for v in violations if v.line == 15][0]
    # `cache = self._scratch; cache.append(1)` resolves to the field.
    assert "'self._scratch'" in aliased.message


def test_mut101_witness_chain_names_the_worker_root():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    direct = [v for v in violations if v.line == 11][0]
    assert "shard worker root 'parallel.run_shard'" in direct.message
    assert "parallel.run_shard -> world.Internet.probe" in direct.message


def test_mut101_registered_shared_and_unreachable_writes_are_clean():
    violations, _ = run_fixture("mut101", select=["MUT101"])
    # line 9 (registered), 10 (shared cache), 18 (unreachable offline),
    # and helper's name-based registered write are all sanctioned.
    assert not any(v.line in (9, 10, 18) for v in violations)
    assert not any("parallel.py" in v.path for v in violations)


# -- MUT102: rewind completeness --------------------------------------------


def test_mut102_flags_all_three_disagreement_kinds():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    assert all(v.rule == "MUT102" for v in violations)
    assert located(violations) == [
        ("internet.py", 6),
        ("internet.py", 11),
        ("internet.py", 15),
    ]


def test_mut102_registered_but_never_reset_anchors_at_registration():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    ghost = [v for v in violations if v.line == 6][0]
    assert "'internet.Internet.ghost'" in ghost.message
    assert "never resets it" in ghost.message


def test_mut102_shared_field_must_survive_the_rewind():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    cache = [v for v in violations if v.line == 11][0]
    assert "'internet.Internet._cache'" in cache.message
    assert "declared shared" in cache.message


def test_mut102_reset_but_unregistered_shows_the_chain():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    scratch = [v for v in violations if v.line == 15][0]
    assert "'internet.Internet.scratch'" in scratch.message
    assert (
        "internet.Internet.fresh_run_state -> internet.Internet.reset_helpers"
        in scratch.message
    )


def test_mut102_constructed_per_run_classes_are_exempt():
    violations, _ = run_fixture("mut102", select=["MUT102"])
    # Engine.events is registered and never reset, but Engine instances
    # never outlive a run (constructed_per_run=True).
    assert not any("Engine" in v.message for v in violations)


# -- MUT103: pickle-boundary immutability ------------------------------------


def test_mut103_flags_every_write_through_the_spec():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    assert all(v.rule == "MUT103" for v in violations)
    assert located(violations) == [
        ("parallel.py", 5),
        ("parallel.py", 13),
        ("parallel.py", 17),
        ("parallel.py", 23),
    ]


def test_mut103_taint_follows_sub_objects_and_renames():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    by_line = {v.line: v.message for v in violations}
    # spec.internet handed to configure(config) taints 'config'.
    assert "'config.seed'" in by_line[13]
    assert "parallel.run_shard -> parallel.configure" in by_line[13]
    # spec handed to run(job) taints 'job'.
    assert "'job.name'" in by_line[17]


def test_mut103_method_calls_map_positional_args_past_self():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    method = [v for v in violations if v.line == 23][0]
    assert "'spec.pps'" in method.message
    assert "parallel.Runner.apply" in method.message


def test_mut103_reads_of_the_spec_are_clean():
    violations, _ = run_fixture("mut103", select=["MUT103"])
    # untouched() only reads spec.targets — and is not tainted anyway.
    assert not any(v.line >= 26 for v in violations)


# -- program mechanics ------------------------------------------------------


def test_program_rules_registry_is_complete():
    assert set(PROGRAM_RULES) == {
        "DET101",
        "RNG101",
        "OBS101",
        "MUT101",
        "MUT102",
        "MUT103",
    }


def test_program_output_is_deterministic_across_runs():
    first, _ = run_fixture("det101", select=None)
    second, _ = run_fixture("det101", select=None)
    assert [v.format() for v in first] == [v.format() for v in second]


def test_program_root_comment_marks_custom_roots(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "custom.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def my_loop():  # repro-lint: program-root\n"
        "    return dirty()\n"
        "\n"
        "\n"
        "def dirty():\n"
        "    return time.time()\n"
    )
    violations, _ = lint_program_paths([str(tmp_path)], select=["DET101"])
    assert located(violations) == [("custom.py", 5), ("custom.py", 9)]
    assert any("my_loop" in v.message for v in violations)


def test_live_tree_has_no_program_violations():
    src = os.path.normpath(os.path.join(HERE, "..", "..", "src", "repro"))
    violations, program = lint_program_paths([src])
    assert violations == []
    # The graph must actually cover the tree: every default root resolved.
    assert program.graph.edge_count > 500


# -- facts cache ------------------------------------------------------------


def _copy_fixture(name, tmp_path):
    dest = tmp_path / "tree"
    shutil.copytree(os.path.join(PROGRAM_FIXTURES, name), str(dest))
    return dest


def test_cache_cold_then_warm(tmp_path):
    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    cold, program = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program.cache_misses > 0
    assert program.cache_hits == 0
    warm, program2 = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program2.cache_misses == 0
    assert program2.cache_hits == program.cache_misses
    assert [v.format() for v in cold] == [v.format() for v in warm]


def test_cache_invalidates_only_the_edited_file(tmp_path):
    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    baseline, _ = lint_program_paths([str(tree)], cache_path=cache_path)
    engine = tree / "repro" / "netsim" / "engine.py"
    engine.write_text(engine.read_text() + "\n# touched\n")
    after, program = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program.cache_misses == 1
    assert program.cache_hits > 0
    assert [v.format() for v in baseline] == [v.format() for v in after]


def test_cache_invalidated_by_checker_version_bump(tmp_path):
    # A cache written under different checker logic versions is fully
    # discarded: bumping any rule's VERSION must flush stale facts.
    import json as json_mod

    tree = _copy_fixture("det101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    baseline, program = lint_program_paths([str(tree)], cache_path=cache_path)
    with open(cache_path) as handle:
        payload = json_mod.load(handle)
    assert "=" in payload["checkers"]  # e.g. "DET101=1,...,MUT103=1"
    payload["checkers"] = payload["checkers"].replace("=1", "=0", 1)
    with open(cache_path, "w") as handle:
        json_mod.dump(payload, handle)
    after, program2 = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program2.cache_hits == 0
    assert program2.cache_misses == program.cache_misses
    assert [v.format() for v in baseline] == [v.format() for v in after]


def test_cache_file_survives_corruption(tmp_path):
    tree = _copy_fixture("rng101", tmp_path)
    cache_path = str(tmp_path / "facts.json")
    lint_program_paths([str(tree)], cache_path=cache_path)
    with open(cache_path, "w") as handle:
        handle.write("{not json")
    violations, program = lint_program_paths([str(tree)], cache_path=cache_path)
    assert program.cache_misses > 0  # fell back to re-extraction
    assert located(violations) == [
        ("boundary.py", 14),
        ("rng.py", 19),
        ("rng.py", 23),
    ]
