"""SARIF 2.1.0 output: schema shape, rule metadata, and determinism."""

import io
import json
import os

from repro.lint.cli import main
from repro.lint.sarif import SARIF_VERSION, TOOL_NAME

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")


def run_sarif(paths):
    out = io.StringIO()
    code = main(["--format", "sarif"] + paths, out=out)
    return code, out.getvalue()


def test_sarif_document_shape():
    code, output = run_sarif([os.path.join(FIXTURES, "pkt001_bad.py")])
    assert code == 1
    doc = json.loads(output)
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == TOOL_NAME


def test_sarif_driver_lists_every_rule():
    _, output = run_sarif([os.path.join(FIXTURES, "pkt001_bad.py")])
    driver = json.loads(output)["runs"][0]["tool"]["driver"]
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == sorted(ids)
    for rule in ("DET001", "DET002", "DET003", "DET101", "LNT001",
                 "MUT101", "MUT102", "MUT103", "OBS101", "PERF101",
                 "PERF102", "PERF103", "PKT001", "RNG101"):
        assert rule in ids


def test_sarif_perf_rules_carry_help_uris():
    from repro.lint.sarif import TOOL_URI

    _, output = run_sarif([os.path.join(FIXTURES, "pkt001_bad.py")])
    rules = json.loads(output)["runs"][0]["tool"]["driver"]["rules"]
    by_id = {rule["id"]: rule for rule in rules}
    for rule_id in ("PERF101", "PERF102", "PERF103"):
        entry = by_id[rule_id]
        assert entry["helpUri"] == "%s#%s" % (TOOL_URI, rule_id.lower())
        assert "hot" in entry["shortDescription"]["text"]


def test_sarif_rules_carry_description_and_help_uri():
    from repro.lint.sarif import TOOL_URI

    _, output = run_sarif([os.path.join(FIXTURES, "pkt001_bad.py")])
    rules = json.loads(output)["runs"][0]["tool"]["driver"]["rules"]
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["helpUri"] == "%s#%s" % (TOOL_URI, rule["id"].lower())


def test_sarif_result_links_rule_and_location():
    _, output = run_sarif([os.path.join(FIXTURES, "pkt001_bad.py")])
    run = json.loads(output)["runs"][0]
    result = run["results"][0]
    assert result["ruleId"] == "PKT001"
    assert result["level"] == "error"
    rules = run["tool"]["driver"]["rules"]
    assert rules[result["ruleIndex"]]["id"] == "PKT001"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("pkt001_bad.py")
    assert "\\" not in location["artifactLocation"]["uri"]
    assert location["region"]["startLine"] == 8
    assert location["region"]["startColumn"] == 1


def test_sarif_clean_input_has_empty_results(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def double(x):\n    return 2 * x\n")
    code, output = run_sarif([str(clean)])
    doc = json.loads(output)
    assert code == 0
    assert doc["runs"][0]["results"] == []


def test_sarif_output_is_byte_identical_across_runs():
    first = run_sarif([os.path.join(FIXTURES, "det003_bad.py")])
    second = run_sarif([os.path.join(FIXTURES, "det003_bad.py")])
    assert first == second
