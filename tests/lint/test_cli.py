"""CLI behaviour: exit codes, output formats, and the acceptance gate
that the real source tree lints clean."""

import io
import json
import os

from repro.lint.cli import main

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
SRC = os.path.normpath(os.path.join(HERE, "..", "..", "src"))


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_clean_tree_exits_zero():
    code, output = run([os.path.join(SRC, "repro")])
    assert code == 0, output
    assert "0 violations found" in output


def test_violations_exit_one_with_locations():
    path = os.path.join(FIXTURES, "pkt001_bad.py")
    code, output = run([path])
    assert code == 1
    assert "PKT001" in output
    # text format is path:line:col: RULE message
    assert "%s:8:1: PKT001" % path in output


def test_json_format_is_machine_readable():
    code, output = run(["--format", "json", os.path.join(FIXTURES, "det003_bad.py")])
    assert code == 1
    payload = json.loads(output)
    assert payload["count"] == len(payload["violations"]) > 0
    first = payload["violations"][0]
    assert set(first) == {"rule", "path", "line", "column", "message"}


def test_select_runs_only_named_rules():
    code, output = run(
        ["--select", "DET001", os.path.join(FIXTURES, "pkt001_bad.py")]
    )
    assert code == 0
    assert "0 violations found" in output


def test_unknown_select_is_usage_error():
    code, output = run(["--select", "NOPE42", FIXTURES])
    assert code == 2
    assert "NOPE42" in output


def test_no_paths_is_usage_error():
    code, _ = run([])
    assert code == 2


def test_list_checkers_names_every_rule():
    code, output = run(["--list-checkers"])
    assert code == 0
    for rule in ("DET001", "DET002", "DET003", "PKT001"):
        assert rule in output


def test_missing_path_is_io_error():
    code, output = run([os.path.join(FIXTURES, "does_not_exist.py")])
    assert code == 2
    assert "error" in output


def test_exclude_skips_prefixed_paths():
    # Linting the fixture tree trips by design; excluding it yields a
    # clean run over the same argument.
    code, output = run([FIXTURES])
    assert code == 1
    code, output = run(["--exclude", FIXTURES, FIXTURES])
    assert code == 0
    assert "0 violations found" in output


def test_exclude_normalizes_dot_and_trailing_slash():
    from repro.lint.cli import excluded

    assert excluded("tests/lint/fixtures/x.py", ["./tests/lint/fixtures/"])
    assert excluded("tests/lint/fixtures", ["tests/lint/fixtures"])
    # A prefix match is per path segment, not per character.
    assert not excluded("tests/lint/fixtures_extra/x.py", ["tests/lint/fixtures"])


# -- --changed: git-diff-scoped file sets -----------------------------------


def _init_repo(tmp_path):
    import subprocess

    def git(*argv):
        subprocess.run(
            ["git", "-c", "user.email=lint@test", "-c", "user.name=lint"]
            + list(argv),
            cwd=str(tmp_path),
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    return git


def test_changed_limits_the_run_to_dirty_files(tmp_path, monkeypatch):
    git = _init_repo(tmp_path)
    clean = tmp_path / "clean.py"
    clean.write_text("import time\n\n\ndef committed():\n    return time.time()\n")
    touched = tmp_path / "touched.py"
    touched.write_text("def fine():\n    return 1\n")
    git("add", "clean.py", "touched.py")
    git("commit", "-q", "-m", "seed")
    # clean.py has a violation but is committed untouched; touched.py is
    # modified and fresh.py is untracked — only those two are linted.
    touched.write_text(
        "import time\n\n\ndef dirty():\n    return time.time()\n"
    )
    (tmp_path / "fresh.py").write_text("import random\nrandom.random()\n")
    monkeypatch.chdir(tmp_path)
    code, output = run(["--changed", str(tmp_path)])
    assert code == 1, output
    assert "touched.py" in output
    assert "fresh.py" in output
    assert "clean.py" not in output
    # Without --changed the committed violation is back in scope.
    code, output = run([str(tmp_path)])
    assert "clean.py" in output


def test_changed_falls_back_to_full_run_outside_a_repo(tmp_path, monkeypatch, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\n\ndef dirty():\n    return time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-gitdir"))
    code, output = run(["--changed", str(tmp_path)])
    assert code == 1, output
    assert "mod.py" in output
    assert "linting the full file set" in capsys.readouterr().err
