"""AllocSan — allocation accounting around hot profiler phases, budget
normalization, and the benchmark-gate report shape.

The fast machinery tests here are unmarked and always run; the real
campaign under tracemalloc is ``@pytest.mark.allocsan`` and needs
``pytest --allocsan`` (CI's budget step)."""

import json
import tracemalloc

import pytest

from repro.lint.allocsan import (
    DEFAULT_BATCH,
    DEFAULT_BUDGETS,
    AllocSanProfiler,
    build_report,
    check_budgets,
    write_report,
)


class FakeResult:
    def __init__(self, sent):
        self.sent = sent


class TestAccounting:
    def test_hot_phase_records_a_sample(self):
        with AllocSanProfiler() as prof:
            with prof.phase("campaign.run"):
                keep = [b"x" * 64 for _ in range(200)]
        assert len(keep) == 200
        (sample,) = prof.samples
        assert sample.phase == "campaign.run"
        assert sample.traced_bytes > 0
        assert sample.blocks > 0
        assert sample.peak_bytes >= sample.traced_bytes
        # Still a well-formed wall profile.
        prof.validate()
        assert prof.spans[0].name == "campaign.run"

    def test_non_hot_phases_are_not_sampled(self):
        with AllocSanProfiler() as prof:
            with prof.phase("campaign.setup"):
                keep = [b"x" * 64 for _ in range(200)]
        assert keep
        assert prof.samples == []

    def test_hot_phase_nested_under_outer_phase(self):
        with AllocSanProfiler() as prof:
            with prof.phase("probe"):
                with prof.phase("campaign.run"):
                    keep = list(range(500))
        assert keep
        (sample,) = prof.samples
        assert sample.phase == "campaign.run"

    def test_transient_churn_shows_in_peak_not_net(self):
        with AllocSanProfiler() as prof:
            with prof.phase("campaign.run"):
                temp = [bytes(1024) for _ in range(200)]
                del temp
        (sample,) = prof.samples
        assert sample.peak_bytes > 100_000
        assert sample.traced_bytes < 50_000

    def test_leaves_outer_tracemalloc_scope_alone(self):
        assert not tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            with AllocSanProfiler() as prof:
                with prof.phase("campaign.run"):
                    pass
            # The profiler did not stop tracing it does not own.
            assert tracemalloc.is_tracing()
            assert len(prof.samples) == 1
        finally:
            tracemalloc.stop()

    def test_without_tracing_phases_still_work(self):
        prof = AllocSanProfiler()  # never entered: tracemalloc off
        with prof.phase("campaign.run"):
            pass
        assert prof.samples == []
        prof.validate()

    def test_agg_count_sums_across_parents(self):
        prof = AllocSanProfiler()
        with prof.phase("first"):
            craft = prof.agg("emit.craft")
            for _ in range(3):
                with craft:
                    pass
        with prof.phase("second"):
            craft = prof.agg("emit.craft")
            with craft:
                pass
            with prof.agg("recv.deliver"):
                pass
        assert prof.agg_count("emit.craft") == 4
        assert prof.agg_count("recv.deliver") == 1
        assert prof.agg_count("missing") == 0


class TestReport:
    def _profiler_with_samples(self, crafts=4):
        with AllocSanProfiler() as prof:
            with prof.phase("campaign.run"):
                craft = prof.agg("emit.craft")
                for _ in range(crafts):
                    with craft:
                        pass
                keep = [b"x" * 64 for _ in range(200)]
        assert keep
        return prof

    def test_report_normalizes_per_probe_and_per_batch(self):
        prof = self._profiler_with_samples(crafts=4)
        report = build_report(prof, FakeResult(sent=848))
        assert report["sanitizer"] == "allocsan"
        assert report["probes"] == 848
        assert report["batches"] == 4
        traced = sum(s.traced_bytes for s in prof.samples)
        blocks = sum(s.blocks for s in prof.samples)
        tracked = report["tracked"]
        assert tracked["allocsan.bytes_per_probe"]["value"] == traced / 848
        assert tracked["allocsan.blocks_per_batch"]["value"] == blocks / 4
        for entry in tracked.values():
            assert entry["direction"] == "lower"
            assert entry["threshold"] > 0
        assert report["budgets"] == DEFAULT_BUDGETS
        assert report["hot_phases"] == ["campaign.run"]

    def test_report_falls_back_to_default_batch_scale(self):
        # Per-event path: no emit.craft aggregate, so block counts
        # normalize against DEFAULT_BATCH-sized blocks.
        with AllocSanProfiler() as prof:
            with prof.phase("campaign.run"):
                pass
        report = build_report(prof, FakeResult(sent=600))
        assert report["batches"] == -(-600 // DEFAULT_BATCH) == 3

    def test_report_with_zero_probes_is_defined(self):
        with AllocSanProfiler() as prof:
            with prof.phase("campaign.run"):
                pass
        report = build_report(prof, FakeResult(sent=0))
        assert report["tracked"]["allocsan.bytes_per_probe"]["value"] == 0.0
        assert report["batches"] == 1

    def test_check_budgets_passes_and_fails(self):
        prof = self._profiler_with_samples()
        report = build_report(prof, FakeResult(sent=848))
        generous = {name: 10.0**9 for name in DEFAULT_BUDGETS}
        assert check_budgets(report, generous) == []
        tight = {"allocsan.bytes_per_probe": 0.0}
        (failure,) = check_budgets(report, tight)
        assert "allocsan.bytes_per_probe" in failure
        assert "exceeds budget" in failure

    def test_check_budgets_flags_missing_tracked_name(self):
        failures = check_budgets({"tracked": {}}, {"allocsan.bytes_per_probe": 1.0})
        assert failures == [
            "allocsan.bytes_per_probe: budgeted but missing from report"
        ]

    def test_report_feeds_the_benchmark_baseline_gate(self):
        from benchmarks.emit import compare_tracked

        prof = self._profiler_with_samples()
        baseline = build_report(prof, FakeResult(sent=848))
        assert compare_tracked(baseline, baseline) == []
        regressed = json.loads(json.dumps(baseline))
        entry = regressed["tracked"]["allocsan.bytes_per_probe"]
        entry["value"] = entry["value"] * 10 + 1
        (failure,) = compare_tracked(regressed, baseline)
        assert "allocsan.bytes_per_probe" in failure

    def test_write_report_is_canonical(self, tmp_path):
        prof = self._profiler_with_samples()
        report = build_report(prof, FakeResult(sent=848))
        path = str(tmp_path / "allocsan.json")
        write_report(path, report)
        text = open(path).read()
        assert text.endswith("\n")
        restored = json.loads(text)
        assert restored["probes"] == 848
        keys = list(restored)
        assert keys == sorted(keys)


@pytest.mark.allocsan
class TestCampaignBudgets:
    def test_smoke_campaign_fits_the_budgets(self):
        from repro.netsim import Internet, InternetConfig, build_internet
        from repro.prober import run_yarrp6

        built = build_internet(
            InternetConfig(n_edge=30, cpe_customers_per_isp=150, seed=5)
        )
        internet = Internet(built)
        targets = []
        for subnet in built.truth.subnets.values():
            if subnet.host_iids:
                targets.append(subnet.host_addresses()[0])
            if len(targets) >= 60:
                break
        with AllocSanProfiler() as prof:
            result = run_yarrp6(
                internet, "US-EDU-1", targets, pps=1000, max_ttl=8,
                profiler=prof,
            )
        assert result.sent == len(targets) * 8
        report = build_report(prof, result)
        assert report["hot_phases"] == ["campaign.run"]
        assert report["batches"] == prof.agg_count("emit.craft") > 0
        assert check_budgets(report) == [], report["tracked"]
