"""FaultSan unit tests: plan construction, seeded determinism, the
inject gate, and the ``--faultsan`` pytest opt-in.

The chaos grid that drives these faults through real pools lives in
``tests/prober/test_faultsan.py``; here we pin the injector itself.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.lint.faultsan import (
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_SLOW,
    KINDS,
    SITE_WORKER_RESULT,
    SITE_WORKER_START,
    SITES,
    Fault,
    FaultInjected,
    FaultPlan,
    Unpicklable,
    inject,
    seeded_plan,
)

HERE = os.path.dirname(__file__)
ROOT = os.path.normpath(os.path.join(HERE, "..", ".."))
SRC = os.path.join(ROOT, "src")


class TestPlans:
    def test_single_names_one_attempt(self):
        plan = FaultPlan.single(2, KIND_CRASH)
        assert plan.at(2, 1, SITE_WORKER_START) is not None
        assert plan.at(2, 2, SITE_WORKER_START) is None  # retry runs clean
        assert plan.at(1, 1, SITE_WORKER_START) is None
        assert plan.at(2, 1, SITE_WORKER_RESULT) is None

    def test_exhaust_covers_every_attempt(self):
        plan = FaultPlan.exhaust(1, KIND_CRASH, attempts=3)
        assert [fault.attempt for fault in plan.faults] == [1, 2, 3]
        for attempt in (1, 2, 3):
            assert plan.at(1, attempt, SITE_WORKER_START) is not None
        assert plan.at(1, 4, SITE_WORKER_START) is None

    def test_plans_are_picklable_values(self):
        """The plan travels inside the worker payload, so it must cross
        the pool pipe under fork and spawn alike."""
        plan = FaultPlan.exhaust(1, KIND_CRASH, attempts=2)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_seeded_plan_is_a_pure_function_of_the_seed(self):
        first = seeded_plan(seed=2018, shards=8, faults=4, attempts=3)
        again = seeded_plan(seed=2018, shards=8, faults=4, attempts=3)
        assert first == again
        assert len(first.faults) == 4
        for fault in first.faults:
            assert 0 <= fault.shard < 8
            assert 1 <= fault.attempt <= 3
            assert fault.kind in KINDS
            assert fault.site in SITES
            # corrupt swaps the result, so it must sit on the result site
            expected = (
                SITE_WORKER_RESULT
                if fault.kind == KIND_CORRUPT
                else SITE_WORKER_START
            )
            assert fault.site == expected


class TestInject:
    def test_no_plan_and_no_match_pass_values_through(self):
        assert inject(None, 0, 1, SITE_WORKER_START, "x") == "x"
        plan = FaultPlan.single(1, KIND_CRASH)
        assert inject(plan, 0, 1, SITE_WORKER_START, "x") == "x"
        assert inject(plan, 1, 2, SITE_WORKER_START, "x") == "x"

    def test_crash_raises_naming_the_site(self):
        plan = FaultPlan.single(1, KIND_CRASH)
        with pytest.raises(FaultInjected, match="shard 1, attempt 1"):
            inject(plan, 1, 1, SITE_WORKER_START)

    def test_corrupt_swaps_the_result_for_an_unpicklable(self):
        plan = FaultPlan.single(0, KIND_CORRUPT, site=SITE_WORKER_RESULT)
        swapped = inject(plan, 0, 1, SITE_WORKER_RESULT, "real result")
        assert isinstance(swapped, Unpicklable)
        with pytest.raises(FaultInjected):
            pickle.dumps(swapped)

    def test_slow_sleeps_then_continues(self):
        plan = FaultPlan.single(0, KIND_SLOW, seconds=0.0)
        assert inject(plan, 0, 1, SITE_WORKER_START, "x") == "x"

    def test_unknown_kind_is_an_error(self):
        plan = FaultPlan.single(0, "gamma-ray")
        with pytest.raises(ValueError, match="gamma-ray"):
            inject(plan, 0, 1, SITE_WORKER_START)


class TestPytestOptIn:
    def test_marked_tests_skip_without_the_flag(self, tmp_path):
        """``@pytest.mark.faultsan`` tests collect but skip unless the
        run opts in with ``--faultsan``."""
        test_file = tmp_path / "test_gate.py"
        test_file.write_text(
            "import pytest\n"
            "@pytest.mark.faultsan\n"
            "def test_chaos():\n"
            "    raise AssertionError('must not run without --faultsan')\n"
            "def test_plain():\n"
            "    pass\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        run = subprocess.run(
            [
                sys.executable, "-m", "pytest", "-q",
                "-p", "repro.lint.faultsan_pytest",
                str(test_file),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        assert run.returncode == 0, run.stdout + run.stderr
        assert "1 passed" in run.stdout
        assert "1 skipped" in run.stdout

    def test_flag_runs_marked_tests(self, tmp_path):
        test_file = tmp_path / "test_gate.py"
        test_file.write_text(
            "import pytest\n"
            "@pytest.mark.faultsan\n"
            "def test_chaos():\n"
            "    pass\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        run = subprocess.run(
            [
                sys.executable, "-m", "pytest", "-q", "--faultsan",
                "-p", "repro.lint.faultsan_pytest",
                str(test_file),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        assert run.returncode == 0, run.stdout + run.stderr
        assert "1 passed" in run.stdout
