"""DetSan — runtime determinism sanitizer: tripwires, scoping,
exemptions, restore semantics, the pytest plugin, and the
``probe --detsan`` byte-identity gate across shard counts."""

import os
import random
import subprocess
import sys
import time
import uuid

import pytest

from repro.lint.detsan import (
    DetSan,
    DetSanUsageError,
    DetSanViolation,
    hash_seed_pinned,
)
from repro.obs.wallclock import Stopwatch

HERE = os.path.dirname(__file__)
SRC = os.path.normpath(os.path.join(HERE, "..", "..", "src"))


def repro_caller(body):
    """Compile ``body`` under a fake ``repro.*`` module name so its calls
    trip the scope="repro" tripwires; returns the defined ``f``."""
    namespace = {"__name__": "repro.fake_detsan_fixture"}
    exec(compile(body, "<detsan-fixture>", "exec"), namespace)
    return namespace["f"]


CLOCK = "import time\ndef f():\n    return time.time()\n"
MODULE_RANDOM = "import random\ndef f():\n    return random.random()\n"
SEEDED_RANDOM = "import random\ndef f():\n    return random.Random(7).random()\n"
URANDOM = "import os\ndef f():\n    return os.urandom(4)\n"
UUID4 = "import uuid\ndef f():\n    return uuid.uuid4()\n"
SECRETS = "import secrets\ndef f():\n    return secrets.token_bytes(4)\n"


# -- tripwires --------------------------------------------------------------


def test_time_read_from_repro_module_raises():
    fn = repro_caller(CLOCK)
    with DetSan():
        with pytest.raises(DetSanViolation) as excinfo:
            fn()
    assert "time.time" in str(excinfo.value)
    assert "repro.fake_detsan_fixture" in str(excinfo.value)


def test_module_random_api_from_repro_module_raises():
    fn = repro_caller(MODULE_RANDOM)
    with DetSan():
        with pytest.raises(DetSanViolation):
            fn()


def test_seeded_random_instance_is_allowed():
    fn = repro_caller(SEEDED_RANDOM)
    with DetSan():
        assert fn() == random.Random(7).random()


@pytest.mark.parametrize("body", [URANDOM, UUID4, SECRETS])
def test_entropy_sources_raise(body):
    fn = repro_caller(body)
    with DetSan():
        with pytest.raises(DetSanViolation):
            fn()


# -- scoping and exemptions -------------------------------------------------


def test_non_repro_callers_pass_through():
    # This test module is not repro.*, so direct calls are exempt.
    with DetSan():
        # Deliberate banned-source calls: the exemption under test.
        assert time.time() > 0  # repro-lint: disable=DET001
        assert 0.0 <= random.random() < 1.0  # repro-lint: disable=DET001
        assert len(os.urandom(2)) == 2  # repro-lint: disable=DET001


def test_scope_all_trips_any_caller():
    with DetSan(scope="all"):
        with pytest.raises(DetSanViolation):
            uuid.uuid4()  # repro-lint: disable=DET001  (the tripwire under test)


def test_wallclock_module_is_exempt():
    # repro.obs.wallclock is an allowlisted time boundary.
    with DetSan():
        watch = Stopwatch()
        assert watch.elapsed_seconds() >= 0.0


def test_profiler_module_is_exempt():
    # repro.obs.profiler reads host time for phase attribution; its
    # perf_counter reads pass through like the Stopwatch boundary does.
    from repro.obs.profiler import WallProfiler

    with DetSan():
        prof = WallProfiler()
        with prof.phase("root"):
            with prof.agg("work"):
                pass
        prof.validate()
        assert prof.total_seconds() >= 0.0


# -- record mode ------------------------------------------------------------


def test_record_mode_collects_reports_and_calls_through():
    fn = repro_caller(CLOCK)
    with DetSan(mode="record") as sanitizer:
        value = fn()
    assert isinstance(value, float)
    (report,) = sanitizer.reports
    assert report.kind == "time"
    assert report.target == "time.time"
    assert report.caller == "repro.fake_detsan_fixture"
    assert report.stack  # captured frames for the offender
    assert "time.time called from repro.fake_detsan_fixture" in report.summary()


# -- patch/restore semantics ------------------------------------------------


def test_patches_are_restored_on_exit():
    originals = (time.time, random.random, os.urandom, uuid.uuid4)
    with DetSan():
        assert time.time is not originals[0]
    assert (time.time, random.random, os.urandom, uuid.uuid4) == originals


def test_nested_regions_restore_lifo():
    original = time.time
    fn = repro_caller(CLOCK)
    with DetSan(mode="record") as outer:
        with DetSan(mode="record") as inner:
            fn()
        fn()
    assert time.time is original
    assert len(inner.reports) == 1
    # The outer sanitizer sees both calls: the inner tripwire records,
    # then forwards to the outer wrapper (exempt self-prefix aside).
    assert len(outer.reports) >= 1


def test_restore_after_exception():
    original = random.random
    fn = repro_caller(MODULE_RANDOM)
    with pytest.raises(DetSanViolation):
        with DetSan():
            fn()
    assert random.random is original


# -- configuration guards ---------------------------------------------------


def test_invalid_mode_and_scope_are_usage_errors():
    with pytest.raises(DetSanUsageError):
        DetSan(mode="bogus")
    with pytest.raises(DetSanUsageError):
        DetSan(scope="bogus")


def test_hash_seed_pinned_predicate(monkeypatch):
    monkeypatch.delenv("PYTHONHASHSEED", raising=False)
    assert not hash_seed_pinned()
    monkeypatch.setenv("PYTHONHASHSEED", "random")
    assert not hash_seed_pinned()
    monkeypatch.setenv("PYTHONHASHSEED", "abc")
    assert not hash_seed_pinned()
    monkeypatch.setenv("PYTHONHASHSEED", "0")
    assert hash_seed_pinned()
    monkeypatch.setenv("PYTHONHASHSEED", "12")
    assert hash_seed_pinned()


def test_require_hash_seed_blocks_unpinned_entry(monkeypatch):
    monkeypatch.delenv("PYTHONHASHSEED", raising=False)
    with pytest.raises(DetSanUsageError):
        DetSan(require_hash_seed=True).__enter__()
    monkeypatch.setenv("PYTHONHASHSEED", "0")
    before = time.time  # may itself be a tripwire if the suite runs --detsan
    with DetSan(require_hash_seed=True):
        pass
    assert time.time is before  # restored


# -- pytest plugin ----------------------------------------------------------

PLUGIN_TEST = """\
def test_clock_read_from_repro_code():
    namespace = {"__name__": "repro.fake_plugin_fixture"}
    exec("import time\\ndef f():\\n    return time.time()", namespace)
    namespace["f"]()
"""


def run_pytest(tmp_path, extra):
    test_file = tmp_path / "test_plugin_fixture.py"
    test_file.write_text(PLUGIN_TEST)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "repro.lint.detsan_pytest",
         str(test_file)] + extra,
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )


def test_pytest_plugin_sanitizes_test_calls(tmp_path):
    tripped = run_pytest(tmp_path, ["--detsan"])
    assert tripped.returncode == 1
    assert "DetSanViolation" in tripped.stdout
    clean = run_pytest(tmp_path, [])
    assert clean.returncode == 0, clean.stdout


# -- probe --detsan: byte-identity across shard counts ----------------------


@pytest.fixture(scope="module")
def campaign_inputs(tmp_path_factory):
    from repro.cli.main import main

    base = tmp_path_factory.mktemp("detsan-campaign")
    world = str(base / "world.json")
    seeds = str(base / "seeds.jsonl")
    targets = str(base / "targets.jsonl")
    assert main(["world", "--seed", "7", "--edge", "12", "--cpe", "40",
                 "--out", world]) == 0
    assert main(["seeds", "--world", world, "--source", "caida",
                 "--out", seeds]) == 0
    assert main(["targets", "--seeds", seeds, "--out", targets]) == 0
    return base, world, targets


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_probe_detsan_dump_is_byte_identical(
    campaign_inputs, monkeypatch, workers
):
    from repro.cli.main import main

    base, world, targets = campaign_inputs
    monkeypatch.setenv("PYTHONHASHSEED", "0")
    plain = str(base / ("plain-%d.yrp6" % workers))
    sanitized = str(base / ("detsan-%d.yrp6" % workers))
    argv = ["probe", "--world", world, "--targets", targets,
            "--workers", str(workers)]
    assert main(argv + ["--out", plain]) == 0
    assert main(argv + ["--detsan", "--out", sanitized]) == 0
    with open(plain, "rb") as first, open(sanitized, "rb") as second:
        assert first.read() == second.read()


def test_probe_detsan_requires_pinned_hash_seed(
    campaign_inputs, monkeypatch
):
    from repro.cli.main import main

    base, world, targets = campaign_inputs
    monkeypatch.delenv("PYTHONHASHSEED", raising=False)
    code = main(["probe", "--world", world, "--targets", targets,
                 "--detsan", "--out", str(base / "never.yrp6")])
    assert code == 2
