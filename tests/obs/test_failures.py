"""FailureReport: cause counters, attempt history, and the manifest
``failures`` block the supervised runner ships home."""

import json

from repro.obs import FAILURES_FORMAT, FailureReport
from repro.obs.failures import (
    CAUSE_CORRUPT,
    CAUSE_CRASH,
    CAUSE_TIMEOUT,
    CAUSE_WORKER_DIED,
    COUNTER_NAMES,
    MAX_DETAIL_CHARS,
)


class TestCounters:
    def test_clean_report_dumps_explicit_zeros(self):
        """A campaign that needed no supervision still dumps every
        counter at zero — an absent counter would be ambiguous."""
        report = FailureReport()
        assert report.counts() == {name: 0 for name in COUNTER_NAMES}
        block = report.to_dict()
        assert block["format"] == FAILURES_FORMAT
        assert block["attempts"] == []
        assert block["degraded"] == []
        assert sorted(block["metrics"]) == sorted(COUNTER_NAMES)

    def test_each_cause_feeds_its_own_counter(self):
        report = FailureReport()
        report.record_fault(0, 1, CAUSE_CRASH, "boom")
        report.record_fault(1, 1, CAUSE_TIMEOUT)
        report.record_fault(1, 2, CAUSE_WORKER_DIED)
        report.record_fault(2, 1, CAUSE_CORRUPT)
        report.record_fault(2, 2, CAUSE_CORRUPT)
        counts = report.counts()
        assert counts["shard.crashes"] == 1
        assert counts["shard.timeouts"] == 1
        assert counts["shard.worker_deaths"] == 1
        assert counts["shard.corrupt_results"] == 2
        assert counts["shard.retries"] == 0
        assert counts["shard.degraded"] == 0

    def test_retries_and_degradations_count(self):
        report = FailureReport()
        report.record_retry(3)
        report.record_retry(3)
        report.record_degraded(5)
        assert report.counts()["shard.retries"] == 2
        assert report.counts()["shard.degraded"] == 1
        assert report.to_dict()["degraded"] == [5]


class TestAttempts:
    def test_faults_sorted_by_shard_then_attempt(self):
        report = FailureReport()
        report.record_fault(3, 1, CAUSE_CRASH)
        report.record_fault(0, 2, CAUSE_TIMEOUT)
        report.record_fault(0, 1, CAUSE_CRASH)
        assert [(f["shard"], f["attempt"]) for f in report.faults()] == [
            (0, 1),
            (0, 2),
            (3, 1),
        ]

    def test_detail_clipped_to_the_traceback_tail(self):
        """The raising frame sits at the bottom of a traceback, so the
        clip keeps the tail and marks the cut."""
        report = FailureReport()
        detail = "x" * MAX_DETAIL_CHARS + "TAIL"
        report.record_fault(0, 1, CAUSE_CRASH, detail)
        stored = report.faults()[0]["detail"]
        assert stored.startswith("...[truncated]...\n")
        assert stored.endswith("TAIL")
        assert len(stored) <= MAX_DETAIL_CHARS + len("...[truncated]...\n")

    def test_short_detail_survives_verbatim(self):
        report = FailureReport()
        report.record_fault(0, 1, CAUSE_CRASH, "short")
        assert report.faults()[0]["detail"] == "short"


class TestBlock:
    def test_to_dict_is_json_ready(self):
        report = FailureReport()
        report.record_fault(1, 1, CAUSE_CRASH, "boom")
        report.record_retry(1)
        report.record_degraded(1)
        text = json.dumps(report.to_dict(), sort_keys=True)
        assert json.loads(text) == report.to_dict()

    def test_attempts_are_copies_not_views(self):
        report = FailureReport()
        report.record_fault(1, 1, CAUSE_CRASH, "boom")
        report.faults()[0]["cause"] = "tampered"
        assert report.faults()[0]["cause"] == CAUSE_CRASH
