"""Metrics registry semantics: instruments, dumps, scopes, merging."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    SCOPE_MERGE,
    SCOPE_RUN,
    MetricError,
    MetricsRegistry,
    dump_to_json,
    merge_dumps,
    series_cumulative,
    series_points,
)


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("sent")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        assert counter.to_dict() == {"kind": "counter", "scope": "merge", "value": 4}

    def test_gauge_tracks_extremes_and_is_run_scoped(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        for value in (5, 2, 9):
            gauge.set(value)
        payload = gauge.to_dict()
        assert payload["scope"] == SCOPE_RUN
        assert (payload["last"], payload["min"], payload["max"]) == (9, 2, 9)
        assert payload["samples"] == 3

    def test_counter_map_sorted_rendering(self):
        registry = MetricsRegistry()
        yields = registry.counter_map("ttl_yield")
        yields.inc(7)
        yields.inc(2, 5)
        yields.inc(7)
        assert yields.total() == 7
        assert yields.to_dict()["values"] == [[2, 5], [7, 2]]

    def test_series_buckets_by_virtual_time(self):
        registry = MetricsRegistry()
        series = registry.series("sent", bucket_us=1000)
        series.record(0)
        series.record(999)
        series.record(1000)
        series.record(2500, amount=4)
        assert series.to_dict()["points"] == [[0, 2], [1000, 1], [2000, 4]]
        assert series.total() == 7

    def test_series_rejects_bad_bucket(self):
        with pytest.raises(MetricError):
            MetricsRegistry().series("x", bucket_us=0)

    def test_histogram_edges_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("levels", bounds=(1.0, 5.0))
        for value in (0.0, 1.0, 1.1, 5.0, 99.0):
            hist.observe(value)
        assert hist.to_dict()["counts"] == [2, 2, 1]
        assert hist.total() == 5

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("x", bounds=())
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("x", bounds=(5.0, 1.0))
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("x", bounds=(1.0, 1.0))

    def test_unknown_scope_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("x", scope="global")


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.series("s", bucket_us=500) is registry.series(
            "s", bucket_us=500
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(MetricError):
            registry.gauge("a")

    def test_series_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.series("s", bucket_us=500)
        with pytest.raises(MetricError):
            registry.series("s", bucket_us=1000)

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_dump_is_sorted_and_byte_stable(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("zeta").inc()
            registry.series("alpha").record(0)
            registry.counter_map("mid").inc(3)
            return registry

        assert list(build().to_dict()) == ["alpha", "mid", "zeta"]
        assert dump_to_json(build().to_dict()) == dump_to_json(build().to_dict())

    def test_dump_can_exclude_run_scoped(self):
        registry = MetricsRegistry()
        registry.counter("merged")
        registry.counter("local", scope=SCOPE_RUN)
        registry.gauge("depth")
        assert set(registry.to_dict()) == {"merged", "local", "depth"}
        assert set(registry.to_dict(include_run_scoped=False)) == {"merged"}


class TestNullRegistry:
    def test_disabled_and_empty(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.to_dict() == {}

    def test_instruments_are_shared_noops(self):
        counter = NULL_REGISTRY.counter("a")
        assert counter is NULL_REGISTRY.counter("b")
        counter.inc()
        assert counter.value == 0
        series = NULL_REGISTRY.series("s")
        series.record(123)
        assert series.total() == 0
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(9)
        assert gauge.samples == 0
        hist = NULL_REGISTRY.histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        assert hist.total() == 0
        cmap = NULL_REGISTRY.counter_map("m")
        cmap.inc(1)
        assert cmap.total() == 0


def shard_dump(sent, ttl_counts, points, hist_counts):
    registry = MetricsRegistry()
    registry.counter("sent").inc(sent)
    ttls = registry.counter_map("ttl")
    for key, amount in ttl_counts:
        ttls.inc(key, amount)
    series = registry.series("rate", bucket_us=1000)
    for now, amount in points:
        series.record(now, amount)
    hist = registry.histogram("levels", bounds=(1.0, 5.0))
    hist.counts[:] = hist_counts
    registry.counter("local", scope=SCOPE_RUN).inc(99)
    registry.gauge("depth").set(7)
    return registry.to_dict()


class TestMerge:
    def test_sums_by_kind_and_drops_run_scope(self):
        merged = merge_dumps(
            [
                shard_dump(3, [(1, 2)], [(0, 1), (1500, 2)], [1, 0, 0]),
                shard_dump(4, [(1, 1), (9, 5)], [(1700, 3)], [0, 2, 1]),
            ]
        )
        assert set(merged) == {"sent", "ttl", "rate", "levels"}
        assert merged["sent"]["value"] == 7
        assert merged["ttl"]["values"] == [[1, 3], [9, 5]]
        assert merged["rate"]["points"] == [[0, 1], [1000, 5]]
        assert merged["levels"]["counts"] == [1, 2, 1]

    def test_merge_does_not_mutate_inputs(self):
        first = shard_dump(3, [(1, 2)], [(0, 1)], [1, 0, 0])
        second = shard_dump(4, [(1, 1)], [(0, 2)], [0, 1, 0])
        before = dump_to_json(first)
        merge_dumps([first, second])
        assert dump_to_json(first) == before

    def test_merge_of_one_equals_its_merge_view(self):
        dump = shard_dump(3, [(1, 2)], [(0, 1)], [1, 0, 0])
        merged = merge_dumps([dump])
        assert set(merged) == {"sent", "ttl", "rate", "levels"}
        assert merged["sent"] == dump["sent"]

    def test_kind_conflict_raises(self):
        left = {"m": {"kind": "counter", "scope": SCOPE_MERGE, "value": 1}}
        right = {
            "m": {
                "kind": "series",
                "scope": SCOPE_MERGE,
                "bucket_us": 1000,
                "points": [],
            }
        }
        with pytest.raises(MetricError):
            merge_dumps([left, right])

    def test_bucket_width_conflict_raises(self):
        def series_entry(bucket_us):
            return {
                "m": {
                    "kind": "series",
                    "scope": SCOPE_MERGE,
                    "bucket_us": bucket_us,
                    "points": [[0, 1]],
                }
            }

        with pytest.raises(MetricError):
            merge_dumps([series_entry(1000), series_entry(2000)])

    def test_bounds_conflict_raises(self):
        def hist_entry(bounds):
            return {
                "m": {
                    "kind": "histogram",
                    "scope": SCOPE_MERGE,
                    "bounds": bounds,
                    "counts": [0] * (len(bounds) + 1),
                }
            }

        with pytest.raises(MetricError):
            merge_dumps([hist_entry([1.0]), hist_entry([2.0])])

    def test_unmergeable_kind_raises(self):
        entry = {"m": {"kind": "mystery", "scope": SCOPE_MERGE}}
        with pytest.raises(MetricError):
            merge_dumps([entry, entry])


class TestSeriesViews:
    def test_points_and_cumulative(self):
        dump = shard_dump(0, [], [(0, 2), (1200, 1), (2400, 4)], [0, 0, 0])
        assert series_points(dump, "rate") == [(0, 2), (1000, 1), (2000, 4)]
        assert series_cumulative(dump, "rate") == [(0, 2), (1000, 3), (2000, 7)]

    def test_missing_or_wrong_kind_is_empty(self):
        dump = shard_dump(1, [], [], [0, 0, 0])
        assert series_points(dump, "nope") == []
        assert series_points(dump, "sent") == []
        assert series_cumulative(dump, "nope") == []
