"""Campaign-level telemetry: instrumentation changes nothing, dumps agree
with the result counters, and merged dumps are shard-count-invariant.

The load-bearing claims from docs/observability.md under test here:

* Running a campaign with a live registry and tracer produces the exact
  same records, interfaces, and duration as an uninstrumented run.
* The telemetry alone reconstructs the paper's curves: ``campaign.sent``
  and ``campaign.discovery`` give Figure 7's discovery-over-probes
  curve, ``ratelimit.denied`` gives Figure 5's loss.
* For decoupled worlds, ``run_parallel``'s merged dump is byte-identical
  for shards in {1, 2, 4} — the same contract the records obey.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    Internet,
    InternetConfig,
    build_internet,
    decoupled_dynamics,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    dump_to_json,
    series_cumulative,
    series_points,
)
from repro.prober import (
    CampaignSpec,
    run_parallel,
    run_sequential,
    run_single,
    run_yarrp6,
)

_WORLDS = {}


def small_world(seed, decoupled=True):
    """A tiny world plus its leaf-host targets, cached per (seed, mode)."""
    key = (seed, decoupled)
    if key not in _WORLDS:
        config = InternetConfig(
            seed=seed,
            n_edge=6,
            n_tier2=3,
            n_cpe_isps=1,
            cpe_customers_per_isp=12,
        )
        if decoupled:
            config = decoupled_dynamics(config)
        built = build_internet(config)
        targets = tuple(
            subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
        )
        _WORLDS[key] = (config, targets)
    return _WORLDS[key]


def record_key(record):
    return (
        record.target,
        record.ttl,
        record.hop,
        record.rtt_us,
        record.received_at,
    )


def series_total(dump, name):
    return sum(value for _, value in series_points(dump, name))


class TestInstrumentationIsInert:
    """Telemetry observes the run; it must never steer it."""

    def test_results_identical_with_and_without_registry(self):
        config, targets = small_world(3)
        plain = run_yarrp6(Internet.from_config(config), "US-EDU-1", targets, pps=900.0)
        instrumented = run_yarrp6(
            Internet.from_config(config),
            "US-EDU-1",
            targets,
            pps=900.0,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
        )
        assert plain.metrics is None
        assert instrumented.metrics is not None
        assert instrumented.sent == plain.sent
        assert [record_key(r) for r in instrumented.records] == [
            record_key(r) for r in plain.records
        ]
        assert instrumented.interfaces == plain.interfaces
        assert instrumented.curve == plain.curve
        assert instrumented.duration_us == plain.duration_us

    def test_internet_detached_after_campaign(self):
        config, targets = small_world(3)
        internet = Internet.from_config(config)
        run_yarrp6(internet, "US-EDU-1", targets, pps=900.0, metrics=MetricsRegistry())
        for router in internet.truth.routers.values():
            assert router.limiter.observer is None


class TestDumpAgreesWithResult:
    def test_counters_match_headline_numbers(self):
        config, targets = small_world(3)
        result = run_yarrp6(
            Internet.from_config(config),
            "US-EDU-1",
            targets,
            pps=900.0,
            metrics=MetricsRegistry(),
        )
        dump = result.metrics
        assert dump["prober.sent"]["value"] == result.sent
        assert series_total(dump, "campaign.sent") == result.sent
        assert dump["prober.responses"]["value"] == len(result.records)
        # Engine diagnostics ride along in a single-process dump...
        assert dump["engine.events_fired"]["value"] > 0
        assert dump["engine.queue_depth"]["kind"] == "gauge"

    def test_fig7_discovery_curve_reconstructed_from_telemetry(self):
        config, targets = small_world(3)
        result = run_yarrp6(
            Internet.from_config(config),
            "US-EDU-1",
            targets,
            pps=900.0,
            metrics=MetricsRegistry(),
        )
        curve = series_cumulative(result.metrics, "campaign.discovery")
        assert curve, "discovery series recorded"
        counts = [count for _, count in curve]
        assert counts == sorted(counts)  # cumulative by construction
        assert counts[-1] == len(result.interfaces)
        # The per-TTL yield partition covers every time-exceeded record.
        ttl_yield = dict(
            (key, value)
            for key, value in result.metrics["prober.ttl_yield"]["values"]
        )
        assert sum(ttl_yield.values()) == sum(
            1 for record in result.records if record.is_time_exceeded
        )

    def test_fig5_loss_matches_ground_truth_rate_limiting(self):
        # A *coupled* world: the routers' ICMPv6 token buckets really
        # drain, and every denial the telemetry records must be one the
        # ground-truth internet counted.
        config, targets = small_world(11, decoupled=False)
        internet = Internet.from_config(config)
        result = run_sequential(
            internet, "US-EDU-1", targets, pps=2000.0, metrics=MetricsRegistry()
        )
        denied = series_total(result.metrics, "ratelimit.denied")
        assert denied == internet.stats.rate_limited
        assert denied > 0, "2 kpps sequential should trip the limiters"
        # Every time-exceeded record passed a limiter; echo replies from
        # end hosts never consult one, so allowed can be below len(records).
        allowed = series_total(result.metrics, "ratelimit.allowed")
        assert allowed >= sum(
            1 for record in result.records if record.is_time_exceeded
        )


class TestSpans:
    def test_trace_is_strictly_nested_and_named(self):
        config, targets = small_world(3)
        tracer = Tracer()
        run_yarrp6(
            Internet.from_config(config),
            "US-EDU-1",
            targets[:8],
            pps=900.0,
            tracer=tracer,
        )
        tracer.validate()
        names = {span.name for span in tracer.spans}
        assert {"campaign", "tick", "emit", "probe"} <= names
        roots = [span for span in tracer.spans if span.parent == -1]
        assert [span.name for span in roots] == ["campaign"]
        campaign = roots[0]
        assert campaign.end_us >= max(span.end_us for span in tracer.spans)

    def test_trace_dump_is_deterministic(self):
        config, targets = small_world(3)

        def trace_once():
            tracer = Tracer()
            run_yarrp6(
                Internet.from_config(config),
                "US-EDU-1",
                targets[:8],
                pps=900.0,
                tracer=tracer,
            )
            return tracer.dumps()

        assert trace_once() == trace_once()


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_merged_dump_matches_single_shard(self, shards):
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config,
            vantage="US-EDU-1",
            targets=targets[:30],
            pps=900.0,
            metrics=True,
        )
        reference = run_parallel(spec, shards=1)
        merged = run_parallel(spec, shards=shards)
        assert merged.metrics is not None
        assert dump_to_json(merged.metrics) == dump_to_json(reference.metrics)
        # Run-scoped diagnostics never leak into the merged dump.
        assert not any(name.startswith("engine.") for name in merged.metrics)

    def test_merged_discovery_matches_single_process_curve(self):
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config,
            vantage="US-EDU-1",
            targets=targets[:30],
            pps=900.0,
            metrics=True,
        )
        single = run_single(spec)
        merged = run_parallel(spec, shards=4)
        assert series_cumulative(
            merged.metrics, "campaign.discovery"
        ) == series_cumulative(single.metrics, "campaign.discovery")
        final = series_cumulative(merged.metrics, "campaign.discovery")[-1][1]
        assert final == len(merged.interfaces)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=30))
    def test_property_dump_bytes_invariant_across_shards(self, seed):
        config, targets = small_world(seed)
        spec = CampaignSpec(
            internet=config,
            vantage="US-EDU-1",
            targets=targets[:20],
            pps=1100.0,
            metrics=True,
        )
        dumps = {
            shards: dump_to_json(run_parallel(spec, shards=shards).metrics)
            for shards in (1, 2, 4)
        }
        assert dumps[1] == dumps[2] == dumps[4]

    def test_metrics_off_by_default(self):
        config, targets = small_world(7)
        spec = CampaignSpec(
            internet=config, vantage="US-EDU-1", targets=targets[:10], pps=900.0
        )
        assert run_parallel(spec, shards=2).metrics is None
        assert run_single(spec).metrics is None
