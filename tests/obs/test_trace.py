"""Span tracer semantics: nesting, validation, deterministic export."""

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, TraceError, Tracer


class FakeClock:
    """A settable virtual clock standing in for ``engine.now``."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def make_tracer():
    clock = FakeClock()
    tracer = Tracer()
    tracer.bind_clock(clock)
    return tracer, clock


class TestRecording:
    def test_nested_spans_record_parent_indices(self):
        tracer, clock = make_tracer()
        with tracer.span("campaign"):
            clock.now = 10
            with tracer.span("tick"):
                with tracer.span("emit"):
                    pass
            clock.now = 20
        assert [(s.name, s.parent) for s in tracer.spans] == [
            ("campaign", -1),
            ("tick", 0),
            ("emit", 1),
        ]
        assert (tracer.spans[0].start_us, tracer.spans[0].end_us) == (0, 20)
        # Spans opened and closed at one virtual instant are zero-width.
        assert (tracer.spans[2].start_us, tracer.spans[2].end_us) == (10, 10)

    def test_event_is_a_closed_zero_width_span(self):
        tracer, clock = make_tracer()
        clock.now = 5
        with tracer.span("probe"):
            tracer.event("limiter.decision", allowed=True)
            tracer.event("late", when=5)
        first, second = tracer.spans[1], tracer.spans[2]
        assert (first.start_us, first.end_us, first.parent) == (5, 5, 0)
        assert (second.start_us, second.end_us) == (5, 5)
        assert first.attrs == {"allowed": True}

    def test_out_of_order_close_raises(self):
        tracer, _ = make_tracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(TraceError):
            outer.__exit__(None, None, None)


class TestValidate:
    def test_well_formed_trace_passes(self):
        tracer, clock = make_tracer()
        with tracer.span("campaign"):
            for start in (0, 10, 20):
                clock.now = start
                with tracer.span("tick"):
                    tracer.event("emit")
            clock.now = 30
        tracer.validate()

    def test_unclosed_span_fails(self):
        tracer, _ = make_tracer()
        tracer.span("campaign")
        with pytest.raises(TraceError, match="unclosed"):
            tracer.validate()

    def test_child_escaping_parent_fails(self):
        tracer, clock = make_tracer()
        with tracer.span("probe"):
            tracer.event("decision", when=99)  # beyond the parent's close
        with pytest.raises(TraceError, match="escapes"):
            tracer.validate()

    def test_sibling_overlap_fails(self):
        tracer, _ = make_tracer()
        tracer.event("a", when=10)
        tracer.event("b", when=5)  # starts before its sibling ended
        with pytest.raises(TraceError, match="overlaps"):
            tracer.validate()

    def test_backwards_clock_fails(self):
        tracer, clock = make_tracer()
        clock.now = 10
        with tracer.span("span"):
            clock.now = 5
        with pytest.raises(TraceError, match="ends before"):
            tracer.validate()


class TestExport:
    def test_dumps_is_deterministic(self):
        def build():
            tracer, clock = make_tracer()
            with tracer.span("campaign", prober="yarrp6", vantage="EU-NET"):
                clock.now = 7
                tracer.event("emit", ttl=3)
            return tracer.dumps()

        assert build() == build()

    def test_dumps_sorts_attrs(self):
        tracer, _ = make_tracer()
        tracer.event("e", zulu=1, alpha=2)
        data = json.loads(tracer.dumps())
        assert list(data["spans"][0]["attrs"]) == ["alpha", "zulu"]


class TestNullTracer:
    def test_noop_and_reusable(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("campaign"):
            NULL_TRACER.event("emit")
        NULL_TRACER.bind_clock(lambda: 99)
        assert NULL_TRACER.spans == []
        NULL_TRACER.validate()

    def test_span_handle_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
