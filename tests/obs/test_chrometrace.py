"""Chrome-trace (Perfetto) export of wall-clock profiles."""

import json

from repro.obs.chrometrace import chrome_trace, trace_events, write_chrome_trace
from repro.obs.profiler import WallProfiler


def profiled_run():
    prof = WallProfiler()
    with prof.phase("parallel", shards=2):
        with prof.phase("pickle", shard=0):
            prof.add_bytes(500)
    worker = WallProfiler()
    with worker.phase("shard.run", shard=0):
        pass
    prof.add_worker(0, worker.export(), 500)
    return prof


class TestTraceEvents:
    def test_complete_events_cover_every_span(self):
        prof = profiled_run()
        events = trace_events(prof)
        complete = [e for e in events if e["ph"] == "X"]
        # 2 parent spans + 1 worker span.
        assert len(complete) == 3
        for event in complete:
            assert event["cat"] == "wallclock"
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_timestamps_are_rebased_to_the_earliest_span(self):
        events = trace_events(profiled_run())
        complete = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0

    def test_parent_and_workers_get_distinct_pids(self):
        events = trace_events(profiled_run())
        by_pid = {}
        for event in events:
            if event["ph"] == "X":
                by_pid.setdefault(event["pid"], []).append(event["name"])
        assert sorted(by_pid) == [0, 1]  # parent pid 0, shard 0 -> pid 1
        assert "parallel" in by_pid[0]
        assert "shard.run" in by_pid[1]

    def test_process_name_metadata_present(self):
        events = trace_events(profiled_run())
        meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta[0] == "parent"
        assert "shard 0" in meta[1]

    def test_args_carry_attrs_and_bytes(self):
        events = trace_events(profiled_run())
        pickle_event = next(e for e in events if e.get("name") == "pickle")
        assert pickle_event["args"]["shard"] == 0
        assert pickle_event["args"]["bytes"] == 500
        root = next(e for e in events if e.get("name") == "parallel")
        assert root["args"]["shards"] == 2


class TestDocument:
    def test_chrome_trace_shape(self):
        document = chrome_trace(profiled_run())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        written = write_chrome_trace(path, profiled_run())
        assert written == path
        with open(path) as source:
            document = json.load(source)
        assert document["traceEvents"]
        assert open(path).read().endswith("\n")

    def test_empty_profile_exports_empty_event_list(self):
        document = chrome_trace(WallProfiler())
        assert document["traceEvents"] == []
