"""Merge edge cases: empty registries, disjoint bucket/key sets, and
shards that recorded no series points.

``merge_dumps`` is on the byte-identity path — a merged campaign's dump
must equal the single-process dump even when some shards saw nothing at
all (a shard whose permutation slice holds no responding targets is
legal).  Property tests pin the algebra: merging is insensitive to shard
order, the empty dump is its identity, and disjoint inputs concatenate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    SCOPE_RUN,
    MetricsRegistry,
    dump_to_json,
    merge_dumps,
)


def empty_dump():
    return MetricsRegistry().to_dict()


class TestEmptyRegistries:
    def test_merge_of_empty_dumps_is_empty(self):
        assert merge_dumps([empty_dump(), empty_dump()]) == {}

    def test_empty_dump_is_the_merge_identity(self):
        registry = MetricsRegistry()
        registry.counter("sent").inc(5)
        registry.series("rate", bucket_us=1000).record(0, 2)
        dump = registry.to_dict()
        with_empty = merge_dumps([dump, empty_dump(), empty_dump()])
        without = merge_dumps([dump])
        assert dump_to_json(with_empty) == dump_to_json(without)

    def test_run_scoped_only_registry_merges_to_empty(self):
        registry = MetricsRegistry()
        registry.counter("engine.events", scope=SCOPE_RUN).inc(9)
        registry.gauge("depth").set(3)  # gauges are run-scoped snapshots
        assert merge_dumps([registry.to_dict(), empty_dump()]) == {}


class TestDisjointShards:
    def test_disjoint_metric_names_union(self):
        left = MetricsRegistry()
        left.counter("only.left").inc(1)
        right = MetricsRegistry()
        right.counter("only.right").inc(2)
        merged = merge_dumps([left.to_dict(), right.to_dict()])
        assert set(merged) == {"only.left", "only.right"}
        assert merged["only.left"]["value"] == 1
        assert merged["only.right"]["value"] == 2

    def test_disjoint_series_buckets_concatenate_sorted(self):
        early = MetricsRegistry()
        early.series("rate", bucket_us=1000).record(500, 1)
        late = MetricsRegistry()
        late.series("rate", bucket_us=1000).record(5500, 3)
        merged = merge_dumps([late.to_dict(), early.to_dict()])
        assert merged["rate"]["points"] == [[0, 1], [5000, 3]]

    def test_disjoint_counter_map_keys_union_sorted(self):
        low = MetricsRegistry()
        low.counter_map("ttl").inc(2, 7)
        high = MetricsRegistry()
        high.counter_map("ttl").inc(9, 1)
        merged = merge_dumps([high.to_dict(), low.to_dict()])
        assert merged["ttl"]["values"] == [[2, 7], [9, 1]]


class TestShardWithNoSeriesPoints:
    def test_pointless_series_entry_merges_cleanly(self):
        quiet = MetricsRegistry()
        quiet.series("rate", bucket_us=1000)  # registered, never recorded
        busy = MetricsRegistry()
        busy.series("rate", bucket_us=1000).record(100, 4)
        merged = merge_dumps([quiet.to_dict(), busy.to_dict()])
        assert merged["rate"]["points"] == [[0, 4]]

    def test_all_shards_pointless_yields_empty_points(self):
        dumps = []
        for _ in range(3):
            registry = MetricsRegistry()
            registry.series("rate", bucket_us=1000)
            dumps.append(registry.to_dict())
        merged = merge_dumps(dumps)
        assert merged["rate"]["points"] == []


points_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50_000),  # virtual microseconds
        st.integers(min_value=1, max_value=10),
    ),
    max_size=12,
)


def dump_from(sent, ttls, points):
    registry = MetricsRegistry()
    if sent:
        registry.counter("sent").inc(sent)
    ttl_map = registry.counter_map("ttl")
    for key in ttls:
        ttl_map.inc(key)
    series = registry.series("rate", bucket_us=1000)
    for when, amount in points:
        series.record(when, amount)
    return registry.to_dict()


shard_strategy = st.tuples(
    st.integers(min_value=0, max_value=100),
    st.lists(st.integers(min_value=1, max_value=16), max_size=8),
    points_strategy,
)


class TestMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(shard_strategy, min_size=1, max_size=4))
    def test_merge_is_shard_order_insensitive(self, shards):
        dumps = [dump_from(*shard) for shard in shards]
        forward = merge_dumps(dumps)
        backward = merge_dumps(list(reversed(dumps)))
        assert dump_to_json(forward) == dump_to_json(backward)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(shard_strategy, min_size=1, max_size=4))
    def test_merge_totals_are_the_sums(self, shards):
        dumps = [dump_from(*shard) for shard in shards]
        merged = merge_dumps(dumps)
        expected_sent = sum(sent for sent, _, _ in shards)
        if expected_sent:
            assert merged["sent"]["value"] == expected_sent
        else:
            assert "sent" not in merged or merged["sent"]["value"] == 0
        expected_points = sum(
            amount for _, _, points in shards for _, amount in points
        )
        assert sum(v for _, v in merged["rate"]["points"]) == expected_points
        expected_ttls = sum(len(ttls) for _, ttls, _ in shards)
        assert sum(v for _, v in merged["ttl"]["values"]) == expected_ttls

    @settings(max_examples=50, deadline=None)
    @given(shard_strategy, shard_strategy)
    def test_merging_with_empty_changes_nothing(self, first, second):
        dumps = [dump_from(*first), dump_from(*second)]
        with_empty = merge_dumps(dumps + [empty_dump()])
        without = merge_dumps(dumps)
        assert dump_to_json(with_empty) == dump_to_json(without)
