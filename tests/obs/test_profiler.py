"""WallProfiler — hierarchical wall-clock phases, aggregates, byte
accounting, worker absorption, and the observe-only contract (profiling
a campaign never changes its bytes)."""

import pickle

import pytest

from repro.netsim import InternetConfig, build_internet, decoupled_dynamics
from repro.obs.profiler import (
    NULL_AGG,
    NULL_PROFILER,
    NullWallProfiler,
    WallProfileError,
    WallProfiler,
    pickled_bytes,
)
from repro.prober import CampaignSpec, run_parallel, run_single
from repro.prober.output import dumps


class TestRecording:
    def test_nested_phases_record_a_tree(self):
        prof = WallProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
            with prof.phase("inner"):
                pass
        prof.validate()
        assert [span.name for span in prof.spans] == ["outer", "inner", "inner"]
        assert [span.parent for span in prof.spans] == [-1, 0, 0]
        assert all(span.end_s >= span.start_s for span in prof.spans)
        assert prof.complete()

    def test_phase_rows_aggregate_by_path(self):
        prof = WallProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
            with prof.phase("inner"):
                pass
        rows = {row["path"]: row for row in prof.phase_rows()}
        assert set(rows) == {"outer", "outer/inner"}
        assert rows["outer/inner"]["count"] == 2
        assert rows["outer"]["count"] == 1
        # self = total minus children, never negative beyond float noise.
        assert rows["outer"]["self_seconds"] == pytest.approx(
            rows["outer"]["total_seconds"] - rows["outer/inner"]["total_seconds"]
        )

    def test_agg_accumulates_count_and_total_under_open_phase(self):
        prof = WallProfiler()
        with prof.phase("run"):
            handle = prof.agg("block")
            for _ in range(5):
                with handle:
                    pass
        rows = {row["path"]: row for row in prof.phase_rows()}
        assert rows["run/block"]["count"] == 5
        assert rows["run/block"]["total_seconds"] >= 0.0
        assert len(prof.spans) == 1  # aggregates never add spans

    def test_add_bytes_goes_to_innermost_open_phase(self):
        prof = WallProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                prof.add_bytes(100)
            prof.add_bytes(7)
        assert prof.spans[1].bytes == 100
        assert prof.spans[0].bytes == 7

    def test_misnested_close_raises(self):
        prof = WallProfiler()
        outer = prof.phase("outer")
        prof.phase("inner")
        with pytest.raises(WallProfileError):
            outer.__exit__(None, None, None)

    def test_validate_rejects_unclosed_phases(self):
        prof = WallProfiler()
        prof.phase("open")
        assert not prof.complete()
        with pytest.raises(WallProfileError):
            prof.validate()

    def test_attrs_are_kept_on_the_span(self):
        prof = WallProfiler()
        with prof.phase("shard.run", shard=2, shards=4):
            pass
        assert prof.spans[0].attrs == {"shard": 2, "shards": 4}


class TestNullProfiler:
    def test_every_operation_is_a_noop(self):
        prof = NULL_PROFILER
        assert not prof.enabled
        with prof.phase("x"):
            with prof.agg("y"):
                prof.add_bytes(10)
        prof.add_worker(0, {}, 0)
        assert prof.spans == []
        assert prof.total_seconds() == 0.0

    def test_null_handles_are_shared(self):
        prof = NullWallProfiler()
        assert prof.phase("a") is prof.agg("b") is NULL_AGG


class TestAnalysis:
    def test_total_seconds_sums_roots(self):
        prof = WallProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            pass
        assert prof.total_seconds() == pytest.approx(
            prof.spans[0].duration_s() + prof.spans[1].duration_s()
        )

    def test_coverage_counts_children_and_aggs(self):
        prof = WallProfiler()
        with prof.phase("root"):
            with prof.phase("child"):
                pass
            with prof.agg("blocks"):
                pass
        assert 0.0 < prof.coverage() <= 1.0
        assert prof.coverage("root") == prof.coverage()
        assert prof.coverage("no-such-phase") == 0.0

    def test_export_and_absorb_round_trip(self):
        worker = WallProfiler()
        with worker.phase("shard.run", shard=1):
            with worker.agg("emit"):
                pass
            worker.add_bytes(11)
        worker.validate()
        export = worker.export()
        # The export is exactly what crosses the pool pipe: picklable.
        export = pickle.loads(pickle.dumps(export))

        parent = WallProfiler()
        with parent.phase("parallel"):
            pass
        parent.add_worker(1, export, 321)
        profile = parent.to_profile_dict()
        assert profile["pickle_bytes_total"] == 321
        (worker_entry,) = profile["workers"]
        assert worker_entry["shard"] == 1
        paths = {row["path"] for row in worker_entry["phases"]}
        assert paths == {"shard.run", "shard.run/emit"}
        assert worker_entry["total_seconds"] == pytest.approx(
            worker.spans[0].duration_s()
        )

    def test_report_renders_phases_and_workers(self):
        prof = WallProfiler()
        with prof.phase("parallel"):
            with prof.phase("pickle"):
                prof.add_bytes(1234)
        worker = WallProfiler()
        with worker.phase("shard.run"):
            pass
        prof.add_worker(0, worker.export(), 1234)
        text = prof.report()
        assert "parallel" in text
        assert "pickle" in text
        assert "1234" in text
        assert "shard 0" in text
        assert "self%" in text

    def test_to_profile_dict_without_workers_has_no_worker_keys(self):
        prof = WallProfiler()
        with prof.phase("probe"):
            pass
        profile = prof.to_profile_dict()
        assert "workers" not in profile
        assert "pickle_bytes_total" not in profile
        assert profile["coverage"] <= 1.0


class TestPickledBytes:
    def test_matches_pickle_dumps_length(self):
        payload = {"records": list(range(100)), "name": "shard"}
        assert pickled_bytes(payload) == len(pickle.dumps(payload))

    def test_deterministic_for_fixed_object(self):
        payload = ("ok", 3, [1.5] * 64)
        assert pickled_bytes(payload) == pickled_bytes(payload)


def small_spec(metrics=False):
    config = decoupled_dynamics(
        InternetConfig(
            seed=11,
            n_edge=6,
            n_tier2=3,
            n_cpe_isps=1,
            cpe_customers_per_isp=12,
        )
    )
    built = build_internet(config)
    targets = tuple(
        subnet.prefix.base | 1 for subnet in built.truth.subnets.values()
    )[:30]
    return CampaignSpec(
        internet=config,
        vantage="US-EDU-1",
        targets=targets,
        pps=900.0,
        metrics=metrics,
    )


class TestPipelineContract:
    """The acceptance bar: profiling attributes >= 95% of the pipeline's
    wall time to named phases and never changes the campaign's bytes."""

    def test_profiled_parallel_run_is_byte_identical(self):
        spec = small_spec(metrics=True)
        prof = WallProfiler()
        profiled = run_parallel(spec, shards=4, processes=1, profiler=prof)
        plain = run_parallel(spec, shards=4, processes=1)
        assert dumps(profiled) == dumps(plain)
        assert dumps(profiled) == dumps(run_single(spec))

    def test_serial_shards_profile_attaches_and_covers(self):
        spec = small_spec()
        prof = WallProfiler()
        merged = run_parallel(spec, shards=4, processes=1, profiler=prof)
        prof.validate()
        assert prof.coverage("parallel") >= 0.95
        profile = merged.wall_profile
        assert profile is not None
        paths = {row["path"] for row in profile["phases"]}
        assert "parallel" in paths
        assert "parallel/shard.run" in paths
        assert "parallel/merge" in paths
        assert "parallel/shard.run/campaign.run/emit.craft" in paths

    def test_worker_pool_profile_reports_pickle_bytes_per_shard(self):
        spec = small_spec()
        prof = WallProfiler()
        merged = run_parallel(spec, shards=2, processes=2, profiler=prof)
        prof.validate()
        assert prof.coverage("parallel") >= 0.95
        profile = merged.wall_profile
        assert profile is not None
        shards = [worker["shard"] for worker in profile["workers"]]
        assert shards == [0, 1]
        assert all(
            worker["pickle_bytes"] > 0 for worker in profile["workers"]
        )
        assert profile["pickle_bytes_total"] == sum(
            worker["pickle_bytes"] for worker in profile["workers"]
        )
        paths = {row["path"] for row in profile["phases"]}
        assert {"parallel/pool.start", "parallel/shards/ipc.wait",
                "parallel/shards/pickle", "parallel/merge"} <= paths
        worker_paths = {
            row["path"]
            for worker in profile["workers"]
            for row in worker["phases"]
        }
        assert "shard.run/campaign.run" in worker_paths

    def test_unprofiled_run_attaches_no_profile(self):
        spec = small_spec()
        merged = run_parallel(spec, shards=2, processes=1)
        assert merged.wall_profile is None

    def test_run_single_accepts_a_profiler(self):
        spec = small_spec()
        prof = WallProfiler()
        with prof.phase("probe"):
            result = run_single(spec, profiler=prof)
        prof.validate()
        assert result.wall_profile is None  # caller holds the profiler
        paths = {row["path"] for row in prof.phase_rows()}
        assert "probe/campaign.run" in paths
