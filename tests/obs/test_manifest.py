"""Run manifest round-trip, determinism view, and format errors."""

import pytest

from repro.obs import (
    MANIFEST_FORMAT,
    ManifestError,
    build_manifest,
    deterministic_view,
    manifest_dumps,
    read_manifest,
    write_manifest,
)
from repro.prober.campaign import CampaignResult


def result(metrics=None):
    return CampaignResult(
        name="run",
        vantage="EU-NET",
        prober="yarrp6",
        pps=1000.0,
        targets=10,
        sent=160,
        records=[],
        interfaces={1, 2, 3},
        curve=[],
        response_labels={},
        summary={"time exceeded": 5},
        duration_us=999,
        metrics=metrics,
    )


class TestBuild:
    def test_headline_fields(self):
        manifest = build_manifest(result(), seed=2018)
        assert manifest["format"] == MANIFEST_FORMAT
        run = manifest["run"]
        assert run["vantage"] == "EU-NET"
        assert run["prober"] == "yarrp6"
        assert run["sent"] == 160
        assert run["interfaces"] == 3
        assert run["workers"] == 1
        assert manifest["seed"] == 2018
        assert manifest["summary"] == {"time exceeded": 5}
        assert manifest["metrics"] == {}
        assert "wallclock" not in manifest
        assert "world" not in manifest

    def test_optional_sections(self):
        dump = {"prober.sent": {"kind": "counter", "scope": "merge", "value": 160}}
        manifest = build_manifest(
            result(),
            seed=7,
            metrics=dump,
            world={"n_edge": 6},
            records_file="run.yrp6",
            workers=4,
            wall_seconds=1.25,
        )
        assert manifest["metrics"] == dump
        assert manifest["world"] == {"n_edge": 6}
        assert manifest["records_file"] == "run.yrp6"
        assert manifest["run"]["workers"] == 4
        assert manifest["wallclock"] == {"seconds": 1.25}


class TestFailuresBlock:
    def failures(self, retries=0):
        return {
            "format": "repro-failures/1",
            "metrics": {
                "shard.retries": {
                    "kind": "counter", "scope": "run", "value": retries,
                },
            },
            "attempts": [],
            "degraded": [],
        }

    def test_failures_block_rides_in_verbatim(self):
        block = self.failures(retries=2)
        manifest = build_manifest(result(), seed=7, failures=block)
        assert manifest["failures"] == block

    def test_absent_by_default(self):
        assert "failures" not in build_manifest(result(), seed=7)

    def test_deterministic_view_strips_failures(self):
        """How often this host lost a worker is a fact about the host,
        not the spec: a retried run and a clean run must agree."""
        clean = build_manifest(result(), seed=7, failures=self.failures(0))
        faulted = build_manifest(result(), seed=7, failures=self.failures(3))
        assert manifest_dumps(clean) != manifest_dumps(faulted)
        assert manifest_dumps(deterministic_view(clean)) == manifest_dumps(
            deterministic_view(faulted)
        )


class TestDeterministicView:
    def test_strips_host_dependent_sections_only(self):
        manifest = build_manifest(
            result(),
            seed=7,
            records_file="a.yrp6",
            wall_seconds=0.5,
            failures={"format": "repro-failures/1"},
        )
        view = deterministic_view(manifest)
        assert "wallclock" not in view
        assert "records_file" not in view
        assert "failures" not in view
        assert set(manifest) - set(view) == {
            "wallclock",
            "records_file",
            "failures",
        }

    def test_view_is_byte_stable_across_wallclock(self):
        fast = build_manifest(result(), seed=7, wall_seconds=0.1)
        slow = build_manifest(result(), seed=7, wall_seconds=99.9)
        assert manifest_dumps(fast) != manifest_dumps(slow)
        assert manifest_dumps(deterministic_view(fast)) == manifest_dumps(
            deterministic_view(slow)
        )


class TestFileIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.manifest.json")
        manifest = build_manifest(result(), seed=7, wall_seconds=0.5)
        write_manifest(path, manifest)
        assert read_manifest(path) == manifest
        text = open(path).read()
        assert text.endswith("\n")
        assert text == manifest_dumps(manifest)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("not json at all")
        with pytest.raises(ManifestError):
            read_manifest(str(path))

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else/9"}\n')
        with pytest.raises(ManifestError):
            read_manifest(str(path))
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(ManifestError):
            read_manifest(str(path))
