"""Tests for Internet checksum machinery, including the fudge algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.addrs import address
from repro.addrs.address import MAX_ADDRESS
from repro.packet.checksum import (
    address_checksum,
    checksum_fudge,
    internet_checksum,
    ones_complement_sum,
    pseudo_header,
    transport_checksum,
    verify_transport_checksum,
)

payloads = st.binary(max_size=128)
addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)


class TestOnesComplementSum:
    def test_empty(self):
        assert ones_complement_sum(b"") == 0

    def test_known_rfc1071_example(self):
        # RFC 1071 example bytes: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 (with carry folded).
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_sum(data) == 0xDDF2

    def test_odd_length_pads_right(self):
        assert ones_complement_sum(b"\xab") == 0xAB00

    def test_carry_folding(self):
        assert ones_complement_sum(b"\xff\xff\x00\x01") == 0x0000 or True
        # 0xffff + 0x0001 = 0x10000 -> folds to 0x0001.
        assert ones_complement_sum(b"\xff\xff\x00\x01") == 0x0001

    @given(payloads, payloads)
    def test_initial_is_concatenation_for_even(self, a, b):
        if len(a) % 2 == 0:
            combined = ones_complement_sum(a + b)
            chained = ones_complement_sum(b, ones_complement_sum(a))
            assert combined == chained


class TestInternetChecksum:
    def test_complement(self):
        data = b"\x12\x34"
        assert internet_checksum(data) == (~0x1234) & 0xFFFF

    @given(payloads)
    def test_self_verifying(self, data):
        # Appending the checksum makes the total checksum zero.
        if len(data) % 2:
            data += b"\x00"
        value = internet_checksum(data)
        assert internet_checksum(data + value.to_bytes(2, "big")) == 0


class TestPseudoHeader:
    def test_layout(self):
        header = pseudo_header(1, 2, 0x1234, 58)
        assert len(header) == 40
        assert header[:16] == address.to_bytes(1)
        assert header[16:32] == address.to_bytes(2)
        assert header[32:36] == (0x1234).to_bytes(4, "big")
        assert header[36:39] == b"\x00\x00\x00"
        assert header[39] == 58

    @given(addresses, addresses, payloads)
    def test_transport_checksum_round_trip(self, src, dst, payload):
        if len(payload) < 2:
            payload += b"\x00\x00"
        # Build segment with zeroed checksum at offset 0..2, then embed.
        segment = b"\x00\x00" + payload
        value = transport_checksum(src, dst, 17, segment)
        embedded = value.to_bytes(2, "big") + payload
        assert verify_transport_checksum(src, dst, 17, embedded)

    @given(addresses, addresses, payloads)
    def test_corruption_detected(self, src, dst, payload):
        segment = b"\x00\x00" + payload + b"\x01"
        value = transport_checksum(src, dst, 58, segment)
        embedded = bytearray(value.to_bytes(2, "big") + payload + b"\x01")
        embedded[-1] ^= 0x40
        # A single bit flip must break verification (barring the 0000/ffff
        # one's-complement aliasing, which a 0x40 flip cannot cause here).
        assert not verify_transport_checksum(src, dst, 58, bytes(embedded))


class TestFudge:
    @given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=0xFFFF))
    def test_fudge_hits_desired_sum(self, base_sum, desired):
        fudge = checksum_fudge(base_sum, desired)
        total = base_sum + fudge
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        # In one's-complement arithmetic 0x0000 and 0xffff are both zero;
        # accept the alias when the target is zero.
        assert total == desired or (desired == 0 and total == 0xFFFF) or (
            desired == 0xFFFF and total == 0
        )

    @given(payloads, st.integers(min_value=0, max_value=0xFFFF))
    def test_constant_checksum_across_payloads(self, variable, desired):
        """The Yarrp6 property: place a fudge so different payloads keep
        the same transport checksum."""
        src, dst = 10, 20
        fixed_head = b"\xab\xcd"
        if len(variable) % 2:
            variable += b"\x00"
        base = ones_complement_sum(
            pseudo_header(src, dst, len(fixed_head) + len(variable) + 2, 17)
        )
        base = ones_complement_sum(fixed_head + variable, base)
        fudge = checksum_fudge(base, desired)
        segment = fixed_head + variable + fudge.to_bytes(2, "big")
        value = internet_checksum(
            segment, ones_complement_sum(pseudo_header(src, dst, len(segment), 17))
        )
        expected = ~desired & 0xFFFF
        assert value == expected or (expected == 0 and value == 0xFFFF) or (
            expected == 0xFFFF and value == 0
        )


class TestAddressChecksum:
    @given(addresses)
    def test_nonzero(self, value):
        assert 1 <= address_checksum(value) <= 0xFFFF

    @given(addresses)
    def test_deterministic(self, value):
        assert address_checksum(value) == address_checksum(value)

    def test_detects_rewrite(self):
        a = address.parse("2001:db8::1")
        b = address.parse("2001:db8::2")
        assert address_checksum(a) != address_checksum(b)
