"""Tests for the IPv6 Fragment extension header."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet.fragment import (
    HEADER_LENGTH,
    PROTO_FRAGMENT,
    FragmentHeader,
    extract_identification,
    unwrap,
    wrap_atomic,
)
from repro.packet.ipv6 import PacketError


class TestFragmentHeader:
    def test_pack_length(self):
        assert len(FragmentHeader(58, 1).pack()) == HEADER_LENGTH

    def test_atomic_detection(self):
        assert FragmentHeader(58, 1).atomic
        assert not FragmentHeader(58, 1, offset=1).atomic
        assert not FragmentHeader(58, 1, more=True).atomic

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=(1 << 13) - 1),
        st.booleans(),
    )
    def test_round_trip(self, next_header, identification, offset, more):
        header = FragmentHeader(next_header, identification, offset, more)
        parsed = FragmentHeader.unpack(header.pack())
        assert parsed.next_header == next_header
        assert parsed.identification == identification
        assert parsed.offset == offset
        assert parsed.more == more

    def test_offset_range(self):
        with pytest.raises(PacketError):
            FragmentHeader(58, 1, offset=1 << 13)

    def test_short_rejected(self):
        with pytest.raises(PacketError):
            FragmentHeader.unpack(b"\x00" * 7)

    def test_identification_wraps(self):
        header = FragmentHeader(58, (1 << 32) + 5)
        assert header.identification == 5


class TestWrapUnwrap:
    def test_wrap_atomic(self):
        wrapped = wrap_atomic(58, 0xDEADBEEF, b"payload")
        header, inner = unwrap(wrapped)
        assert header.atomic
        assert header.identification == 0xDEADBEEF
        assert header.next_header == 58
        assert inner == b"payload"

    def test_extract_identification(self):
        wrapped = wrap_atomic(58, 42, b"x")
        extracted = extract_identification(PROTO_FRAGMENT, wrapped)
        assert extracted == (42, 58, b"x")

    def test_extract_wrong_proto(self):
        assert extract_identification(58, b"anything") is None

    def test_extract_garbage(self):
        assert extract_identification(PROTO_FRAGMENT, b"\x00") is None
